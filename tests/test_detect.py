"""The error-detection front end: registry, built-ins, DC files, scoping.

Covers the :mod:`repro.detect` subsystem end to end — the detector registry
and spec resolution, every built-in detector on the Table-1 hospital sample,
HoloClean-format denial-constraint ingestion, the exact-or-prune contract
(all-cells detection is byte-identical to no detection on every workload and
backend), dirty-cell-scoped cleaning, streaming re-detection invalidation,
and the service wire codec.
"""

from __future__ import annotations

import json

import pytest

from repro.constraints.dcfile import (
    load_dc_file,
    looks_like_dc_line,
    parse_dc_line,
    parse_dc_text,
)
from repro.constraints.parser import RuleParseError, parse_rule
from repro.dataset.sample import sample_hospital_rules, sample_hospital_table
from repro.dataset.table import Cell
from repro.detect import (
    AllCellsDetector,
    CleaningScope,
    DirtyCells,
    FixedDetector,
    NullDetector,
    OutlierDetector,
    PerfectDetector,
    StreamDetection,
    UnionDetector,
    ViolationDetector,
    available_detectors,
    data_path,
    detector_specs_identity,
    get_detector,
    resolve_detector,
    run_detection,
    validate_detector_specs,
)
from repro.errors.groundtruth import ErrorType, GroundTruth, InjectedError
from repro.experiments.harness import prepare_instance
from repro.service.codec import (
    decode_clean_request,
    decode_delta_request,
    decode_delta_routing,
    delta_routing_payload,
    report_signature,
)
from repro.service.errors import BadRequestError
from repro.session import CleaningSession
from repro.session.backends import CleaningRequest, get_backend
from repro.session.session import load_rules
from repro.streaming.cleaner import StreamingMLNClean
from repro.streaming.delta import DeltaBatch, Insert
from repro.workloads.registry import recommended_config


def hospital_instance(tuples=60, error_rate=0.1):
    return prepare_instance(
        "hospital-sample",
        tuples=tuples,
        error_rate=error_rate,
        replacement_ratio=0.5,
        seed=7,
        error_seed=42,
    )


# ----------------------------------------------------------------------
# registry and spec resolution
# ----------------------------------------------------------------------
def test_builtin_detectors_registered():
    names = available_detectors()
    for name in ("all-cells", "null", "violation", "fixed", "outlier", "perfect", "union"):
        assert name in names


def test_unknown_detector_lists_registered_names():
    with pytest.raises(KeyError) as excinfo:
        get_detector("nope")
    message = str(excinfo.value)
    assert "nope" in message and "violation" in message


def test_resolve_detector_spec_forms():
    assert isinstance(resolve_detector("null"), NullDetector)
    pinned = resolve_detector(
        {"name": "violation", "options": {"rules": ["CT -> ST"]}}
    )
    assert isinstance(pinned, ViolationDetector)
    instance = OutlierDetector()
    assert resolve_detector(instance) is instance
    with pytest.raises(ValueError, match="needs a 'name'"):
        resolve_detector({"options": {}})
    with pytest.raises(ValueError, match="unexpected detector spec keys"):
        resolve_detector({"name": "null", "junk": 1})
    with pytest.raises(TypeError, match="cannot resolve detector spec"):
        resolve_detector(42)


def test_validate_detector_specs_rejects_bad_shapes():
    assert validate_detector_specs(["null", {"name": "violation"}])
    with pytest.raises(ValueError, match="unknown detector"):
        validate_detector_specs(["nope"])
    with pytest.raises(ValueError, match="must be a list"):
        validate_detector_specs("null")
    with pytest.raises(ValueError, match="name or a"):
        validate_detector_specs([42])


def test_detector_specs_identity_is_json_safe():
    identity = detector_specs_identity(
        ["Null", {"name": "violation", "options": {"refine": False}}, OutlierDetector()]
    )
    assert identity[0] == {"name": "null"}
    assert identity[1] == {"name": "violation", "options": {"refine": False}}
    assert identity[2]["instance"].endswith("OutlierDetector")
    assert detector_specs_identity(None) is None
    json.dumps(identity)  # must serialize


# ----------------------------------------------------------------------
# DirtyCells
# ----------------------------------------------------------------------
def test_dirty_cells_round_trip_and_accuracy():
    cells = DirtyCells(
        cells={Cell(1, "CT"), Cell(2, "PN")},
        by_detector={"violation": {Cell(1, "CT")}, "null": {Cell(2, "PN")}},
        seconds=0.25,
    )
    clone = DirtyCells.from_json_dict(cells.to_json_dict())
    assert clone.cells == cells.cells
    assert clone.by_detector == cells.by_detector
    table = sample_hospital_table()
    accuracy = cells.accuracy({Cell(1, "CT"), Cell(3, "ST")}, table)
    assert accuracy["precision"] == 0.5
    assert accuracy["recall"] == 0.5


def test_all_cells_covers_table():
    table = sample_hospital_table()
    detected = AllCellsDetector().detect(table, [])
    assert DirtyCells(cells=detected).covers(table)
    detected.pop()
    assert not DirtyCells(cells=detected).covers(table)


# ----------------------------------------------------------------------
# built-in detectors on the Table-1 sample
# ----------------------------------------------------------------------
def test_null_detector_flags_markers():
    table = sample_hospital_table()
    rows = [dict((a, table.row(tid)[a]) for a in table.attributes) for tid in table.tids]
    rows[0]["PN"] = ""
    rows[1]["CT"] = "N/A"
    from repro.session.session import load_table

    dirty = load_table(rows)
    found = NullDetector().detect(dirty, [])
    assert found == {Cell(0, "PN"), Cell(1, "CT")}


def test_fixed_detector_ledgers(tmp_path):
    inline = FixedDetector(cells=[(0, "CT"), {"tid": 1, "attribute": "ST"}])
    table = sample_hospital_table()
    assert inline.detect(table, []) == {Cell(0, "CT"), Cell(1, "ST")}

    json_path = tmp_path / "cells.json"
    json_path.write_text(json.dumps({"cells": [[2, "PN"], [99, "PN"]]}))
    assert FixedDetector(path=json_path).detect(table, []) == {Cell(2, "PN")}

    csv_path = tmp_path / "cells.csv"
    csv_path.write_text("tid,attribute\n3,ST\n")
    assert FixedDetector(path=csv_path).detect(table, []) == {Cell(3, "ST")}

    with pytest.raises(ValueError, match="exactly one of"):
        FixedDetector()
    bad_csv = tmp_path / "bad.csv"
    bad_csv.write_text("a,b\n1,2\n")
    with pytest.raises(ValueError, match="'tid' and 'attribute'"):
        FixedDetector(path=bad_csv)


def test_perfect_detector_reads_ledger_and_requires_one():
    table = sample_hospital_table()
    ledger = GroundTruth(
        [InjectedError(Cell(2, "PN"), "2567688400", "2567638410", ErrorType.REPLACEMENT)]
    )
    assert PerfectDetector(ledger).detect(table, []) == {Cell(2, "PN")}
    with pytest.raises(ValueError, match="needs the injected-error ledger"):
        PerfectDetector().detect(table, [])


def test_outlier_detector_flags_rare_and_stretched_values():
    from repro.session.session import load_table

    rows = [{"A": "x", "B": "aaaa"} for _ in range(8)]
    rows[3] = {"A": "y", "B": "aaaa"}          # rare categorical value
    rows[5] = {"A": "x", "B": "aaaaaaaaaaaa"}  # stretched length
    table = load_table(rows)
    found = OutlierDetector().detect(table, [])
    assert Cell(3, "A") in found
    assert Cell(5, "B") in found
    assert Cell(0, "A") not in found


def test_violation_detector_refinement_beats_raw_flagging():
    instance = hospital_instance()
    refined = ViolationDetector().detect(instance.dirty, instance.rules)
    raw = ViolationDetector(refine=False).detect(instance.dirty, instance.rules)
    assert refined < raw  # strictly fewer cells flagged
    truth = instance.ground_truth.dirty_cells
    refined_result = DirtyCells(cells=refined)
    raw_result = DirtyCells(cells=raw)
    refined_precision = refined_result.accuracy(truth, instance.dirty)["precision"]
    raw_precision = raw_result.accuracy(truth, instance.dirty)["precision"]
    assert refined_precision > raw_precision


def test_union_detector_merges_members():
    table = sample_hospital_table()
    union = UnionDetector(["violation", FixedDetector(cells=[(0, "HN")])])
    found = union.detect(table, sample_hospital_rules())
    assert Cell(0, "HN") in found
    assert len(found) > 1
    with pytest.raises(ValueError, match="at least one"):
        UnionDetector([])


# ----------------------------------------------------------------------
# HoloClean-format DC files
# ----------------------------------------------------------------------
def test_dc_line_matches_native_dc_syntax():
    table = sample_hospital_table()
    hc = parse_dc_line("t1&t2&EQ(t1.PN,t2.PN)&IQ(t1.ST,t2.ST)", name="r2")
    native = parse_rule("DC: PN(t1)=PN(t2) & ST(t1)!=ST(t2)", name="r2")
    hc_cells = {cell for v in hc.violations(table) for cell in v.suspect_cells}
    native_cells = {
        cell for v in native.violations(table) for cell in v.suspect_cells
    }
    assert hc_cells == native_cells


def test_parse_rule_dispatches_holoclean_lines():
    assert looks_like_dc_line("t1&t2&EQ(t1.CT,t2.CT)&IQ(t1.ST,t2.ST)")
    rule = parse_rule("t1&t2&EQ(t1.CT,t2.CT)&IQ(t1.ST,t2.ST)")
    assert rule.violations(sample_hospital_table())


def test_dc_text_skips_comments_and_names_in_order():
    rules = parse_dc_text(
        "# header\n"
        "\n"
        "t1&t2&EQ(t1.CT,t2.CT)&IQ(t1.ST,t2.ST)\n"
        "t1&t2&EQ(t1.PN,t2.PN)&IQ(t1.ST,t2.ST)\n"
    )
    assert [rule.name for rule in rules] == ["dc1", "dc2"]


def test_dc_parse_errors_carry_line_numbers():
    with pytest.raises(RuleParseError, match=r"<string>:3: .*\[line: "):
        parse_dc_text("# ok\n\nt1&t2&BOGUS(t1.A,t2.A)&EQ(t1.B,t2.B)\n")
    with pytest.raises(RuleParseError, match="no denial constraints"):
        parse_dc_text("# only comments\n")
    with pytest.raises(RuleParseError, match="single-tuple"):
        parse_dc_line("t1&EQ(t1.A,t1.B)&IQ(t1.A,t1.C)")
    with pytest.raises(RuleParseError, match="undeclared tuple variable"):
        parse_dc_line("t1&t2&EQ(t3.A,t2.A)&IQ(t1.B,t2.B)")


def test_packaged_dc_file_drives_violation_detector():
    path = data_path("hospital_sample.dc")
    assert path.is_file()
    rules = load_dc_file(path)
    assert len(rules) == 2
    instance = hospital_instance()
    detector = ViolationDetector(dc_file="hospital_sample.dc")
    assert detector.granularity == "table"  # pinned rules: full re-detection
    found = detector.detect(instance.dirty, [])  # run rules not needed
    assert found
    truth = instance.ground_truth.dirty_cells
    assert DirtyCells(cells=found).accuracy(truth, instance.dirty)["precision"] > 0.5


def test_detect_cli_emits_dirty_cells(tmp_path, capsys):
    from repro.detect.__main__ import main

    out = tmp_path / "cells.json"
    code = main(
        [
            "--workload", "hospital-sample", "--tuples", "40",
            "--dc-file", "hospital_sample.dc", "--out", str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["count"] == len(payload["cells"])
    assert payload["accuracy"]["precision"] > 0
    assert payload["detectors"][0]["name"] == "violation"

    code = main(["--workload", "hospital-sample", "--tuples", "40", "--detectors", "null"])
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["by_detector"] == {"null": []}


# ----------------------------------------------------------------------
# run_detection and provenance
# ----------------------------------------------------------------------
def test_run_detection_unions_with_provenance():
    instance = hospital_instance()
    detected = run_detection(
        instance.dirty,
        instance.rules,
        ["violation", "violation", "null"],
        ground_truth=instance.ground_truth,
    )
    assert set(detected.by_detector) == {"violation", "violation#2", "null"}
    assert detected.cells == set().union(*detected.by_detector.values())
    with pytest.raises(ValueError, match="at least one detector"):
        run_detection(instance.dirty, instance.rules, [])


def test_cleaning_scope_selects_blocks_and_groups():
    instance = hospital_instance()
    from repro.core.index import MLNIndex

    index = MLNIndex.build(instance.dirty, instance.rules)
    detected = run_detection(
        instance.dirty, instance.rules, ["violation"], instance.ground_truth
    )
    scope = CleaningScope(detected, instance.dirty)
    selected = scope.select_blocks(index.block_list)
    assert selected and len(selected) <= len(index.block_list)
    for block in selected:
        assert scope.selects_block(block)
    assert scope.selected_block_names() == sorted(b.name for b in selected)


# ----------------------------------------------------------------------
# exact-or-prune: all-cells detection is byte-identical to none
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["hospital-sample", "car", "hai", "tpch"])
def test_all_cells_detection_is_byte_identical_batch(workload):
    instance = prepare_instance(workload, tuples=60, error_rate=0.1, seed=7)
    config = recommended_config(workload)

    def run(detectors):
        return CleaningSession(
            rules=instance.rules,
            config=config,
            table=instance.dirty,
            ground_truth=instance.ground_truth,
            detectors=detectors,
        ).run()

    assert report_signature(run(None)) == report_signature(run(["all-cells"]))


@pytest.mark.parametrize("backend_options", [
    {"backend": "distributed", "workers": 2},
    {"backend": "streaming", "batch_size": 25},
])
def test_all_cells_detection_is_byte_identical_other_backends(backend_options):
    instance = hospital_instance()

    def run(detectors):
        request = CleaningRequest(
            dirty=instance.dirty,
            rules=instance.rules,
            config=recommended_config("hospital-sample"),
            ground_truth=instance.ground_truth,
            detectors=detectors,
        )
        name = backend_options["backend"]
        options = {k: v for k, v in backend_options.items() if k != "backend"}
        return get_backend(name, **options).run(request)

    assert report_signature(run(None)) == report_signature(run(["all-cells"]))


# ----------------------------------------------------------------------
# dirty-cell-scoped cleaning
# ----------------------------------------------------------------------
def test_scoped_run_repairs_detected_cells_like_full_scope():
    instance = hospital_instance(tuples=120)
    config = recommended_config("hospital-sample")
    detected = run_detection(
        instance.dirty, instance.rules, ["violation"], instance.ground_truth
    )
    assert 0 < detected.count < len(instance.dirty) * len(instance.dirty.attributes)

    def repairs(detectors):
        report = CleaningSession(
            rules=instance.rules,
            config=config,
            table=instance.dirty,
            ground_truth=instance.ground_truth,
            detectors=detectors,
        ).run()
        return {
            cell: report.repaired.row(cell.tid)[cell.attribute]
            for cell in detected.cells
            if report.repaired.has_tid(cell.tid)
        }

    assert repairs(None) == repairs(["violation"])


def test_scoped_report_carries_detection_provenance():
    instance = hospital_instance()
    report = CleaningSession(
        rules=instance.rules,
        config=recommended_config("hospital-sample"),
        table=instance.dirty,
        ground_truth=instance.ground_truth,
        detectors=["violation"],
    ).run()
    detection = report.details.detection
    assert detection["scoped"] is True
    assert detection["count"] == len(detection["cells"])
    assert detection["scoped_blocks"]
    assert report.details.detected_cells == detection["count"]


def test_parallel_batch_rejects_detectors():
    instance = hospital_instance()
    request = CleaningRequest(
        dirty=instance.dirty,
        rules=instance.rules,
        config=recommended_config("hospital-sample"),
        detectors=["violation"],
    )
    with pytest.raises(ValueError, match="serial-only"):
        get_backend("batch", parallelism=2).run(request)


def test_distributed_rejects_scoping_but_allows_all_cells():
    instance = hospital_instance()
    request = CleaningRequest(
        dirty=instance.dirty,
        rules=instance.rules,
        config=recommended_config("hospital-sample"),
        ground_truth=instance.ground_truth,
        detectors=["violation"],
    )
    with pytest.raises(ValueError, match="full-scope"):
        get_backend("distributed", workers=2).run(request)


def test_minimal_repair_cleaner_rejects_detectors():
    instance = hospital_instance()
    session = (
        CleaningSession.builder()
        .with_rules(instance.rules)
        .with_cleaner("minimal-repair")
        .with_detectors("violation")
        .build()
    )
    with pytest.raises(ValueError, match="no detection phase"):
        session.run(table=instance.dirty)


def test_holoclean_cleaner_accepts_session_detectors():
    instance = hospital_instance(tuples=40)
    session = (
        CleaningSession.builder()
        .with_rules(instance.rules)
        .with_config(recommended_config("hospital-sample"))
        .with_cleaner("holoclean", training_epochs=1)
        .with_detectors("perfect")
        .build()
    )
    report = session.run(table=instance.dirty, ground_truth=instance.ground_truth)
    assert report.accuracy is not None


# ----------------------------------------------------------------------
# session integration
# ----------------------------------------------------------------------
def test_with_detectors_validates_eagerly():
    builder = CleaningSession.builder().with_rules(["CT -> ST"])
    with pytest.raises(KeyError, match="nope"):
        builder.with_detectors("nope")


def test_fingerprint_covers_detector_stack():
    base = CleaningSession.builder().with_rules(["CT -> ST"]).build()
    detecting = (
        CleaningSession.builder()
        .with_rules(["CT -> ST"])
        .with_detectors("violation")
        .build()
    )
    assert base.fingerprint() != detecting.fingerprint()


# ----------------------------------------------------------------------
# streaming re-detection
# ----------------------------------------------------------------------
def test_stream_detection_recomputes_only_dirtied_rules():
    instance = hospital_instance()
    detection = StreamDetection(["violation"], instance.rules)
    detection.update(
        instance.dirty,
        dirtied_rules=[rule.name for rule in instance.rules],
        touched_tids=list(instance.dirty.tids),
        removed_tids=[],
    )
    first = dict(detection.last_recomputed)
    assert set(first["violation"]) == {rule.name for rule in instance.rules}
    # second tick dirties only r1: the cache answers for the other rules
    detection.update(
        instance.dirty,
        dirtied_rules=[instance.rules[0].name],
        touched_tids=[],
        removed_tids=[],
    )
    assert detection.last_recomputed["violation"] == [instance.rules[0].name]


def test_stream_detection_tuple_granularity_counts_touched():
    instance = hospital_instance()
    detection = StreamDetection(["null", "outlier"], instance.rules)
    detection.update(
        instance.dirty, dirtied_rules=[], touched_tids=[], removed_tids=[]
    )
    assert detection.last_recomputed["null"] == len(instance.dirty)
    assert detection.last_recomputed["outlier"] == "full"
    detection.update(
        instance.dirty, dirtied_rules=[], touched_tids=[0, 1], removed_tids=[]
    )
    assert detection.last_recomputed["null"] == 2


def test_stream_detection_drops_removed_tuples():
    instance = hospital_instance()
    ledger = instance.ground_truth
    detection = StreamDetection(["perfect"], instance.rules)
    full = detection.update(
        instance.dirty,
        dirtied_rules=[],
        touched_tids=list(instance.dirty.tids),
        removed_tids=[],
        ground_truth=ledger,
    )
    victim = next(iter(full.cells)).tid
    shrunk = instance.dirty.subset(
        [tid for tid in instance.dirty.tids if tid != victim]
    )
    after = detection.update(
        shrunk,
        dirtied_rules=[],
        touched_tids=[],
        removed_tids=[victim],
        ground_truth=ledger,
    )
    assert all(cell.tid != victim for cell in after.cells)


def test_streaming_engine_detects_and_scopes_per_tick():
    instance = hospital_instance(tuples=80)
    engine = StreamingMLNClean(
        instance.rules,
        schema=list(instance.dirty.attributes),
        config=recommended_config("hospital-sample"),
        detectors=["violation"],
    )
    tids = sorted(instance.dirty.tids)
    for start in range(0, len(tids), 40):
        chunk = tids[start : start + 40]
        deltas = DeltaBatch(
            [
                Insert(
                    values={
                        a: instance.dirty.row(tid)[a]
                        for a in instance.dirty.attributes
                    },
                    tid=tid,
                )
                for tid in chunk
            ]
        )
        # the ledger is one snapshot, not per-batch: hand it over once
        engine.apply_batch(
            deltas,
            ground_truth=instance.ground_truth if start == 0 else None,
        )
    assert engine.detection is not None
    assert engine.detected_cells == engine.detection.count
    assert engine.detected_cells > 0


# ----------------------------------------------------------------------
# rule-file parse errors (session loader)
# ----------------------------------------------------------------------
def test_rule_file_errors_carry_line_number_and_text(tmp_path):
    path = tmp_path / "bad.rules"
    path.write_text("# comment\n\nCT -> ST\ngarbage without arrow\n")
    with pytest.raises(RuleParseError, match=r"bad\.rules:4: .*garbage without arrow"):
        load_rules(path)


def test_rule_file_skips_blanks_and_comments(tmp_path):
    path = tmp_path / "ok.rules"
    path.write_text("# comment\n\nr1: CT -> ST\n\n# more\nPN -> ST\n")
    rules = load_rules(path)
    assert [rule.name for rule in rules] == ["r1", "r2"]


def test_rule_file_duplicate_names_error_has_position(tmp_path):
    path = tmp_path / "dup.rules"
    path.write_text("r1: CT -> ST\nr1: PN -> ST\n")
    with pytest.raises(ValueError, match=r"dup\.rules:2: duplicate rule name 'r1'"):
        load_rules(path)


# ----------------------------------------------------------------------
# service wire codec
# ----------------------------------------------------------------------
def test_clean_request_decodes_and_rejects_detectors():
    spec = decode_clean_request(
        {"workload": "hospital-sample", "detectors": ["null", {"name": "violation"}]}
    )
    assert spec.detectors == ["null", {"name": "violation"}]
    with pytest.raises(BadRequestError, match="unknown detector"):
        decode_clean_request({"workload": "hospital-sample", "detectors": ["nope"]})
    with pytest.raises(BadRequestError, match="must be a list"):
        decode_clean_request({"workload": "hospital-sample", "detectors": "null"})


def test_delta_routing_round_trips_detectors():
    spec = decode_delta_request(
        {
            "workload": "hospital-sample",
            "tuples": 40,
            "detectors": [{"name": "violation", "options": {"refine": True}}],
            "deltas": [{"op": "insert", "values": {"HN": "H", "CT": "C", "ST": "S", "PN": "1"}}],
        }
    )
    payload = delta_routing_payload(spec)
    assert payload["detectors"] == spec.detectors
    rebuilt = decode_delta_routing(payload)
    assert rebuilt.detectors == spec.detectors


def test_delta_routing_rejects_detector_instances():
    spec = decode_delta_request(
        {
            "workload": "hospital-sample",
            "deltas": [{"op": "insert", "values": {"HN": "H", "CT": "C", "ST": "S", "PN": "1"}}],
        }
    )
    spec.detectors = [OutlierDetector()]
    with pytest.raises(ValueError, match="not wire-expressible"):
        delta_routing_payload(spec)


# ----------------------------------------------------------------------
# experiments integration
# ----------------------------------------------------------------------
def test_experiment_spec_detector_stacks_round_trip():
    from repro.experiments.spec import ExperimentSpec

    spec = ExperimentSpec(
        name="t",
        workloads=["hospital-sample"],
        detector_stacks=[None, ["all-cells"], [{"name": "violation"}]],
    )
    clone = ExperimentSpec.from_json_dict(spec.to_json_dict())
    assert clone.detector_stacks == spec.detector_stacks
    # absent key parses to the no-detection default
    legacy = dict(spec.to_json_dict())
    legacy.pop("detector_stacks")
    assert ExperimentSpec.from_json_dict(legacy).detector_stacks == [None]


def test_detector_ablation_spec_runs_with_detection_metrics():
    from repro.experiments import ExperimentRunner, load_spec
    from repro.experiments.spec import ExperimentSpec

    assert load_spec("detector_ablation").detector_stacks[0] is None
    spec = ExperimentSpec(
        name="mini",
        workloads=["hospital-sample"],
        detector_stacks=[None, ["perfect"]],
        tuples=40,
        error_rates=[0.1],
        store_reports=False,
    )
    artifact = ExperimentRunner(spec).run()
    plain, perfect = artifact.cells
    assert plain.coords["detectors"] is None
    assert perfect.coords["detectors"] == [{"name": "perfect"}]
    assert perfect.metrics["detect_precision"] == 1.0
    assert perfect.metrics["detect_recall"] == 1.0
    assert "detect_precision" not in plain.metrics
    assert perfect.metrics["f1"] == plain.metrics["f1"]


# ----------------------------------------------------------------------
# back-compat shim
# ----------------------------------------------------------------------
def test_baselines_detectors_shim_reexports():
    from repro.baselines.detectors import (
        ErrorDetector,
        PerfectDetector as ShimPerfect,
        UnionDetector as ShimUnion,
        ViolationDetector as ShimViolation,
    )
    from repro.detect.base import Detector

    assert ErrorDetector is Detector
    assert ShimPerfect is PerfectDetector
    assert ShimUnion is UnionDetector
    assert ShimViolation is ViolationDetector
