"""The declarative experiment API: specs, runner, artifacts, round-trips."""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.report import (
    CleaningReport,
    table_from_json_dict,
    table_to_json_dict,
)
from repro.dataset.sample import sample_hospital_rules, sample_hospital_table
from repro.experiments import (
    EXPERIMENTS,
    RENDERERS,
    CleanerSpec,
    ConfigCell,
    ExperimentRunner,
    ExperimentSpec,
    RunArtifact,
    available_specs,
    load_spec,
    render_fig06,
)
from repro.experiments.harness import prepare_instance, run_holoclean, run_mlnclean
from repro.session.backends import CleaningRequest
from repro.session.cleaners import get_cleaner

SMALL = 200

SPECS_DIR = Path(__file__).resolve().parent.parent / "src" / "repro" / "experiments" / "specs"


def tiny_fig06_spec() -> ExperimentSpec:
    """The checked-in fig06 spec, scaled down for the test suite."""
    return replace(
        load_spec("fig06"),
        workloads=["car"],
        error_rates=[0.05, 0.15],
        tuples=SMALL,
    )


# ----------------------------------------------------------------------
# specs: checked-in files, JSON round-trip, errors
# ----------------------------------------------------------------------
def test_checked_in_specs_cover_the_figures():
    expected = {
        "fig06",
        "fig07",
        "fig15",
        "table05",
        "table06",
        "threshold_sweep",
        "error_rate_sweep",
        "ablation_fscr",
        "ablation_rscore",
        "ablation_partition",
        "streaming_replay",
        "smoke",
    }
    assert expected <= set(available_specs())


def test_spec_json_round_trip_is_bit_identical():
    for name in available_specs():
        text = (SPECS_DIR / f"{name}.json").read_text()
        spec = ExperimentSpec.from_json(text)
        assert spec.to_json() == text, name


def test_load_spec_accepts_paths_and_spec_objects(tmp_path):
    spec = load_spec("smoke")
    assert load_spec(spec) is spec
    path = tmp_path / "copy.json"
    path.write_text(spec.to_json())
    assert load_spec(path).name == "smoke"
    assert load_spec(str(path)).name == "smoke"


def test_unknown_spec_error_lists_available_names():
    with pytest.raises(KeyError, match="unknown experiment spec") as excinfo:
        load_spec("fig99")
    assert "'fig06'" in str(excinfo.value)


def test_config_cell_shorthand_and_labels():
    cell = ConfigCell.from_json_dict({"abnormal_threshold": 3})
    assert cell.overrides == {"abnormal_threshold": 3}
    assert cell.display == "abnormal_threshold=3"
    assert ConfigCell().display == "default"
    assert ConfigCell(label="tau=3").display == "tau=3"
    assert CleanerSpec.from_json_dict("holoclean").cleaner == "holoclean"


def test_grid_for_is_case_insensitive_like_the_workload_registry():
    spec = ExperimentSpec(
        name="case-test",
        workloads=["CAR"],
        config_grid={"CAR": [ConfigCell(overrides={"abnormal_threshold": 2})]},
    )
    assert spec.grid_for("car")[0].overrides == {"abnormal_threshold": 2}
    assert spec.grid_for("CAR")[0].overrides == {"abnormal_threshold": 2}
    lowered = ExperimentSpec(
        name="case-test-2",
        workloads=["CAR"],
        config_grid={"car": [ConfigCell(overrides={"abnormal_threshold": 3})]},
    )
    assert lowered.grid_for("CAR")[0].overrides == {"abnormal_threshold": 3}


def test_streaming_replay_checks_each_grid_point_against_its_own_batch_run():
    from repro.experiments import streaming_replay

    result = streaming_replay(datasets=("hospital-sample",), tuples=48)
    by_system = {row["system"]: row for row in result.rows}
    # the batch reference row carries no self-comparison column
    assert "matches_batch" not in by_system["MLNClean"]
    assert by_system["MLNClean[streaming]"]["matches_batch"] is True


def test_experiments_registry_covers_all_figures_and_renderers():
    expected = {f"fig{i:02d}" for i in range(6, 16)} | {"table05", "table06"}
    assert expected <= set(EXPERIMENTS)
    assert set(RENDERERS) <= set(available_specs())


# ----------------------------------------------------------------------
# runner: grid expansion, equivalence with direct session runs
# ----------------------------------------------------------------------
def test_runner_expands_the_full_grid():
    spec = ExperimentSpec(
        name="grid-test",
        workloads=["car"],
        cleaners=[CleanerSpec(), CleanerSpec(cleaner="minimal-repair")],
        error_rates=[0.05, 0.10],
        config_grid=[ConfigCell(), ConfigCell(overrides={"abnormal_threshold": 2})],
        tuples=SMALL,
        store_reports=False,
    )
    artifact = ExperimentRunner(spec).run()
    assert len(artifact.cells) == 2 * 2 * 2  # rates x configs x cleaners
    # expansion order: error rate -> config -> cleaner
    first = artifact.cells[0].coords
    assert first["error_rate"] == 0.05
    assert first["config"]["overrides"] == {}
    assert first["system"] == "MLNClean"
    assert artifact.cells[1].coords["system"] == "MinimalRepair"
    assert artifact.cells[2].coords["config"]["overrides"] == {
        "abnormal_threshold": 2
    }
    assert all(cell.report is None for cell in artifact.cells)
    assert all(cell.perf["distance_calls"] >= 0 for cell in artifact.cells)


def test_fig06_runner_matches_legacy_harness_runs():
    """The spec path reproduces run_mlnclean/run_holoclean bit for bit."""
    artifact = ExperimentRunner(tiny_fig06_spec()).run()
    instance = prepare_instance("car", tuples=SMALL, error_rate=0.05)
    legacy = {
        "MLNClean": run_mlnclean(instance).as_row(),
        "HoloClean": run_holoclean(instance).as_row(),
    }
    for cell in artifact.cells[:2]:
        expected = legacy[cell.metrics["system"]]
        for key, value in cell.metrics.items():
            if key in ("runtime_s",):  # wall-clock, not comparable
                continue
            if key == "system":
                assert value == expected["system"]
            else:
                assert value == pytest.approx(expected[key]), (key, value)


def test_rerunning_a_spec_reproduces_the_numbers():
    spec = tiny_fig06_spec()
    first = ExperimentRunner(spec).run()
    second = ExperimentRunner(spec).run()
    for a, b in zip(first.cells, second.cells):
        assert a.coords == b.coords
        for key in a.metrics:
            if key == "runtime_s":
                continue
            assert a.metrics[key] == b.metrics[key], key


# ----------------------------------------------------------------------
# artifacts: lossless JSON, bit-identical re-rendering
# ----------------------------------------------------------------------
def test_artifact_json_round_trip_is_bit_identical(tmp_path):
    artifact = ExperimentRunner(tiny_fig06_spec()).run()
    text = artifact.to_json()
    reloaded = RunArtifact.from_json(text)
    assert reloaded.to_json() == text
    # and through the filesystem helpers
    path = artifact.save(tmp_path / "artifact.json")
    assert RunArtifact.load(path).to_json() == text


def test_deserialized_artifact_rerenders_the_identical_figure():
    artifact = ExperimentRunner(tiny_fig06_spec()).run()
    rendered = render_fig06(artifact).render()
    reloaded = RunArtifact.from_json(artifact.to_json())
    assert render_fig06(reloaded).render() == rendered
    # the round-tripped reports still carry the cleaned tables
    for original, copy in zip(artifact.cells, reloaded.cells):
        assert copy.report.cleaned.equals(original.report.cleaned)
        assert copy.report.f1 == pytest.approx(original.report.f1)


def test_fig07_checked_in_spec_round_trips_and_rerenders():
    from repro.experiments import render_fig07

    spec = replace(
        load_spec("fig07"),
        workloads=["car"],
        replacement_ratios=[0.0, 1.0],
        tuples=SMALL,
    )
    artifact = ExperimentRunner(spec).run()
    assert {cell.coords["replacement_ratio"] for cell in artifact.cells} == {0.0, 1.0}
    reloaded = RunArtifact.from_json(artifact.to_json())
    assert reloaded.to_json() == artifact.to_json()
    assert render_fig07(reloaded).render() == render_fig07(artifact).render()
    # re-running the same checked-in spec reproduces the numbers bit for bit
    again = ExperimentRunner(spec).run()
    for a, b in zip(artifact.cells, again.cells):
        for key in a.metrics:
            if key != "runtime_s":
                assert a.metrics[key] == b.metrics[key], key


def test_artifact_metric_keys_are_the_schema_surface():
    artifact = ExperimentRunner(tiny_fig06_spec()).run()
    keys = artifact.metric_keys()
    assert keys == sorted(keys)
    assert {"system", "f1", "precision", "recall", "runtime_s"} <= set(keys)


def test_smoke_spec_runs_all_builtin_cleaners():
    spec = replace(load_spec("smoke"), tuples=40)
    artifact = ExperimentRunner(spec).run()
    systems = [cell.metrics["system"] for cell in artifact.cells]
    assert systems == ["MLNClean", "HoloClean", "MinimalRepair", "FactorGraph"]
    schema_path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "schemas"
        / "experiments_smoke_metrics.json"
    )
    # the checked-in CI schema matches what the smoke spec produces
    assert artifact.metric_keys() == json.loads(schema_path.read_text())


# ----------------------------------------------------------------------
# CleaningReport JSON round-trip
# ----------------------------------------------------------------------
def test_table_json_round_trip_preserves_tids_and_values():
    table = sample_hospital_table()
    table.remove(2)  # make the tid sequence non-contiguous
    clone = table_from_json_dict(table_to_json_dict(table))
    assert clone.equals(table)
    assert clone.name == table.name


def test_cleaning_report_round_trip_for_every_cleaner(sample_ground_truth):
    for name in ("mlnclean", "holoclean", "minimal-repair", "factor-graph"):
        request = CleaningRequest(
            dirty=sample_hospital_table(),
            rules=sample_hospital_rules(),
            ground_truth=sample_ground_truth,
        )
        report = get_cleaner(name).run(request)
        data = report.to_json_dict()
        clone = CleaningReport.from_json_dict(data)
        # serialization is idempotent: re-serializing reproduces the JSON
        assert clone.to_json_dict() == data, name
        assert clone.cleaned.equals(report.cleaned), name
        assert clone.backend == report.backend, name
        assert clone.f1 == pytest.approx(report.f1), name
        assert clone.runtime == pytest.approx(report.runtime), name
        # component accuracy survives via the stage counts
        assert (
            clone.component_accuracy.as_dict()
            == report.component_accuracy.as_dict()
        ), name
        if report.dedup is not None:
            assert clone.dedup.removed_tids == report.dedup.removed_tids


def test_report_describe_works_after_round_trip(sample_ground_truth):
    request = CleaningRequest(
        dirty=sample_hospital_table(),
        rules=sample_hospital_rules(),
        ground_truth=sample_ground_truth,
    )
    report = get_cleaner("mlnclean").run(request)
    clone = CleaningReport.from_json_dict(report.to_json_dict())
    assert "tuples:" in clone.describe()
    assert clone.summary().keys() == report.summary().keys()
