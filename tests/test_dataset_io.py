"""Unit tests for CSV I/O and the paper's Table-1 sample fixture."""

import pytest

from repro.constraints.violations import detect_violations, is_consistent
from repro.dataset.io import read_csv, write_csv
from repro.dataset.sample import (
    SAMPLE_ATTRIBUTES,
    sample_hospital_clean_table,
    sample_hospital_rules,
    sample_hospital_table,
)
from repro.dataset.table import Table


def test_csv_round_trip(tmp_path):
    table = Table.from_records(
        [{"A": "1", "B": "hello, world"}, {"A": "2", "B": ""}], attributes=["A", "B"]
    )
    path = tmp_path / "t.csv"
    write_csv(table, path)
    loaded = read_csv(path)
    assert loaded.records() == table.records()
    assert loaded.name == "t"


def test_read_csv_column_selection(tmp_path):
    table = Table.from_records([{"A": "1", "B": "2", "C": "3"}])
    path = tmp_path / "t.csv"
    write_csv(table, path)
    loaded = read_csv(path, attributes=["C", "A"])
    assert loaded.schema.attributes == ["C", "A"]


def test_read_csv_missing_column(tmp_path):
    table = Table.from_records([{"A": "1"}])
    path = tmp_path / "t.csv"
    write_csv(table, path)
    with pytest.raises(KeyError):
        read_csv(path, attributes=["Z"])


def test_sample_table_matches_paper():
    table = sample_hospital_table()
    assert len(table) == 6
    assert table.schema.attributes == SAMPLE_ATTRIBUTES
    assert table.value(1, "CT") == "DOTH"
    assert table.value(3, "ST") == "AK"


def test_sample_rules_kinds():
    rules = sample_hospital_rules()
    assert [rule.kind for rule in rules] == ["FD", "DC", "CFD"]
    assert [rule.name for rule in rules] == ["r1", "r2", "r3"]


def test_sample_dirty_table_violates_rules():
    table = sample_hospital_table()
    rules = sample_hospital_rules()
    assert not is_consistent(table, rules)
    violations = detect_violations(table, rules)
    assert any(v.rule.name == "r1" for v in violations)


def test_sample_clean_table_is_consistent():
    clean = sample_hospital_clean_table()
    rules = sample_hospital_rules()
    assert is_consistent(clean, rules)
