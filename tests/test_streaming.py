"""Tests for the streaming subsystem: deltas, incremental index, engine, windows.

The headline property is *replay equivalence*: feeding a table through
``StreamingMLNClean`` as micro-batches of deltas produces exactly the
cleaned table that batch ``MLNClean`` produces on the same data, rules and
configuration — for pure inserts, and after updates and deletes as well.
"""

from __future__ import annotations

import pytest

from repro.core.config import MLNCleanConfig
from repro.core.index import MLNIndex
from repro.core.pipeline import MLNClean
from repro.errors.injector import ErrorSpec
from repro.streaming import (
    Delete,
    DeltaBatch,
    IncrementalMLNIndex,
    Insert,
    SampleHospitalWorkloadGenerator,
    SlidingWindow,
    StreamingMLNClean,
    TableStreamSource,
    TumblingWindow,
    Update,
    WorkloadStreamSource,
)
from repro.workloads.registry import (
    available_workloads,
    get_workload_generator,
    register_workload,
)


# ----------------------------------------------------------------------
# deltas
# ----------------------------------------------------------------------
def test_delta_batch_from_table_preserves_tids(sample_table):
    batch = DeltaBatch.from_table(sample_table)
    assert batch.counts() == {"inserts": 6, "updates": 0, "deletes": 0}
    assert [delta.tid for delta in batch.inserts] == sample_table.tids
    assert batch.inserts[1].values == sample_table.row(1).as_dict()


def test_delta_batch_from_records_assigns_consecutive_tids():
    batch = DeltaBatch.from_records([{"A": "x"}, {"A": "y"}], start_tid=10)
    assert [delta.tid for delta in batch.inserts] == [10, 11]
    assert len(batch) == 2 and bool(batch)
    assert not DeltaBatch()


# ----------------------------------------------------------------------
# incremental index maintenance
# ----------------------------------------------------------------------
def test_incremental_add_maintains_support_counts(sample_table, sample_rules):
    index = IncrementalMLNIndex.from_table(sample_table, sample_rules)
    assert index.statistics() == MLNIndex.build(sample_table, sample_rules).statistics()
    # t1/t2 share the DOTHAN γ of r1 (reason CT, result ST)
    block = index.block("r1")
    piece = block.piece_of_tid(0)
    assert piece.support == 2 and sorted(piece.tids) == [0, 2]


def test_incremental_remove_drops_empty_pieces_and_groups(sample_table, sample_rules):
    index = IncrementalMLNIndex.from_table(sample_table, sample_rules)
    block = index.block("r1")
    groups_before = len(block.groups)
    # tid 1 is the only member of the spurious DOTH group
    dirtied = index.remove_tuple(1, sample_table.row(1).as_dict())
    assert ("DOTH",) in dirtied["r1"]
    assert len(block.groups) == groups_before - 1
    assert block.group_of_tid(1) is None
    # removing one of two supporters only decrements the count
    index.remove_tuple(0, sample_table.row(0).as_dict())
    remaining = block.piece_of_tid(2)
    assert remaining.support == 1 and remaining.tids == [2]


def test_incremental_update_rehomes_only_touched_blocks(sample_table, sample_rules):
    index = IncrementalMLNIndex.from_table(sample_table, sample_rules)
    old_values = sample_table.row(1).as_dict()
    new_values = dict(old_values, CT="DOTHAN")
    dirtied = index.update_tuple(1, old_values, new_values)
    # r1 (CT -> ST) vacates DOTH and enters DOTHAN; r2 (PN -> ST) ignores CT
    assert set(dirtied["r1"]) == {("DOTH",), ("DOTHAN",)}
    assert "r2" not in dirtied
    assert index.block("r1").piece_of_tid(1).reason_values == ("DOTHAN",)
    # identity-preserving change: no block is dirtied
    assert index.update_tuple(1, new_values, dict(new_values)) == {}


def test_canonical_block_matches_batch_build_after_any_history(sample_table, sample_rules):
    # Build the same final table along a convoluted delta history...
    index = IncrementalMLNIndex(sample_rules)
    rows = {tid: sample_table.row(tid).as_dict() for tid in sample_table.tids}
    for tid in [3, 0, 5, 1, 4, 2]:
        index.add_tuple(tid, rows[tid])
    index.remove_tuple(4, rows[4])
    index.add_tuple(4, dict(rows[4], CT="XXXX"))
    index.update_tuple(4, dict(rows[4], CT="XXXX"), rows[4])
    # ...and compare each canonical clone against a fresh batch build.
    reference = MLNIndex.build(sample_table, sample_rules)
    for rule in sample_rules:
        clone = index.canonical_block(rule.name)
        ref_block = reference.block(rule.name)
        assert list(clone.groups.keys()) == list(ref_block.groups.keys())
        for key, group in clone.groups.items():
            ref_group = ref_block.groups[key]
            assert list(group.pieces.keys()) == list(ref_group.pieces.keys())
            for piece_key, piece in group.pieces.items():
                assert piece.tids == sorted(ref_group.pieces[piece_key].tids)


# ----------------------------------------------------------------------
# replay equivalence with batch MLNClean
# ----------------------------------------------------------------------
def test_replay_equivalence_on_hospital_sample(sample_table, sample_rules):
    config = MLNCleanConfig(abnormal_threshold=1)
    batch_report = MLNClean(config).clean(sample_table.copy(), sample_rules)
    engine = StreamingMLNClean(sample_rules, sample_table.attributes, config=config)
    engine.consume(TableStreamSource(sample_table, batch_size=2))
    assert engine.repaired.equals(batch_report.repaired)
    assert engine.cleaned.equals(batch_report.cleaned)


def test_replay_equivalence_on_injected_workload():
    source = WorkloadStreamSource(
        "hai", tuples=120, batch_size=40, error_spec=ErrorSpec(error_rate=0.06)
    )
    config = MLNCleanConfig.for_dataset("hai")
    batch_report = MLNClean(config).clean(
        source.dirty.copy(), source.rules, source.ground_truth
    )
    engine = StreamingMLNClean(source.rules, source.schema, config=config)
    reports = engine.consume(source)
    assert len(reports) == 3
    assert engine.repaired.equals(batch_report.repaired)
    assert engine.cleaned.equals(batch_report.cleaned)
    # the streamed ground truth accumulates to the full ledger's accuracy
    assert reports[-1].accuracy is not None
    assert reports[-1].accuracy.f1 == pytest.approx(batch_report.accuracy.f1)


def test_updates_and_deletes_stay_equivalent():
    source = WorkloadStreamSource(
        "hai", tuples=100, batch_size=100, error_spec=ErrorSpec(error_rate=0.05)
    )
    config = MLNCleanConfig.for_dataset("hai")
    engine = StreamingMLNClean(source.rules, source.schema, config=config)
    engine.consume(source)
    victim, gone = engine.dirty.tids[3], engine.dirty.tids[7]
    report = engine.apply_batch(
        DeltaBatch([Update(victim, {"City": "NOWHERE"}), Delete(gone)])
    )
    assert not engine.dirty.has_tid(gone)
    assert engine.dirty.value(victim, "City") == "NOWHERE"
    assert report.delta_counts["deletes"] == 1
    reference = MLNClean(config).clean(engine.dirty.copy(), source.rules)
    assert engine.repaired.equals(reference.repaired)
    assert engine.cleaned.equals(reference.cleaned)


def test_localized_update_recleans_only_dirtied_blocks():
    # τ = 1 keeps AGP merges local, so a one-tuple edit cannot cascade into
    # a block-wide winner flip (τ = 10 on a table this small collapses the
    # whole block into one group and legitimately re-fuses everything).
    source = WorkloadStreamSource("hai", tuples=100, batch_size=100)
    config = MLNCleanConfig(abnormal_threshold=1)
    engine = StreamingMLNClean(source.rules, source.schema, config=config)
    engine.consume(source)
    # MeasureName appears in exactly one of HAI's seven rules
    report = engine.apply_batch(
        DeltaBatch([Update(engine.dirty.tids[0], {"MeasureName": "ODDBALL"})])
    )
    assert report.affected_blocks == ["hai_r4"]
    assert len(report.resolved_tids) < len(engine.dirty) // 2


def test_empty_batch_is_a_cheap_noop(sample_table, sample_rules):
    engine = StreamingMLNClean(sample_rules, sample_table.attributes)
    engine.apply_batch(DeltaBatch.from_table(sample_table))
    before = engine.cleaned.copy()
    report = engine.apply_batch(DeltaBatch())
    assert report.affected_blocks == [] and report.resolved_tids == []
    assert engine.cleaned.equals(before)


def test_empty_tick_on_an_empty_stream(sample_rules, sample_table):
    # the service coalescer can tick a shard that has never seen data; the
    # engine must treat that as a sound no-op, not a degenerate state
    engine = StreamingMLNClean(sample_rules, sample_table.attributes)
    report = engine.apply_batch(DeltaBatch())
    assert report.sequence == 0 and report.tuples_total == 0
    assert report.delta_counts == {"inserts": 0, "updates": 0, "deletes": 0}
    assert len(engine.cleaned) == 0
    assert engine.batches_applied == 1


def test_delete_of_unknown_key_is_rejected_before_mutation(sample_table, sample_rules):
    engine = StreamingMLNClean(sample_rules, sample_table.attributes)
    # on a virgin stream…
    with pytest.raises(KeyError, match="42"):
        engine.apply_batch(DeltaBatch([Delete(42)]))
    assert engine.batches_applied == 0 and len(engine.dirty) == 0
    # …and after data arrived, mixed into an otherwise valid batch
    engine.apply_batch(DeltaBatch.from_table(sample_table))
    snapshot = engine.dirty.copy()
    row = sample_table.row(0).as_dict()
    with pytest.raises(KeyError, match="42"):
        engine.apply_batch(DeltaBatch([Insert(row), Delete(42)]))
    assert engine.dirty.equals(snapshot)


# ----------------------------------------------------------------------
# batch validation
# ----------------------------------------------------------------------
def test_malformed_batches_are_rejected_before_mutation(sample_table, sample_rules):
    engine = StreamingMLNClean(sample_rules, sample_table.attributes)
    engine.apply_batch(DeltaBatch.from_table(sample_table))
    snapshot = engine.dirty.copy()
    with pytest.raises(KeyError):
        engine.apply_batch(DeltaBatch([Update(999, {"CT": "X"})]))
    with pytest.raises(KeyError):
        engine.apply_batch(DeltaBatch([Update(0, {"NOPE": "X"})]))
    with pytest.raises(ValueError):
        engine.apply_batch(DeltaBatch([Insert(sample_table.row(0).as_dict(), tid=0)]))
    with pytest.raises(KeyError):
        engine.apply_batch(DeltaBatch([Delete(0), Delete(0)]))
    # an auto-assigned tid colliding with a later explicit one is caught
    # up front too, before any state is mutated
    row = sample_table.row(0).as_dict()
    with pytest.raises(ValueError):
        engine.apply_batch(
            DeltaBatch([Insert(row), Insert(row, tid=engine.dirty.next_tid)])
        )
    assert engine.dirty.equals(snapshot)


def test_insert_delete_same_batch_never_enters_window(sample_table, sample_rules):
    engine = StreamingMLNClean(
        sample_rules, sample_table.attributes, window=SlidingWindow(size=2)
    )
    row = sample_table.row(0).as_dict()
    engine.apply_batch(DeltaBatch([Insert(row, tid=0), Delete(0)]))
    assert engine.window.retained == []
    # overflowing the window later must not trip over the dead tid
    engine.apply_batch(DeltaBatch.from_table(sample_table, tids=[1, 2, 3]))
    assert engine.window.retained == [2, 3]
    assert sorted(engine.dirty.tids) == [2, 3]


# ----------------------------------------------------------------------
# window policies
# ----------------------------------------------------------------------
def test_tumbling_window_expires_whole_spans():
    window = TumblingWindow(size=3)
    assert window.observe([0, 1, 2]) == []
    assert window.retained == [0, 1, 2]
    # the 4th arrival opens a new span: the previous span expires wholesale
    assert window.observe([3, 4]) == [0, 1, 2]
    assert window.retained == [3, 4]
    window.forget([4])
    assert window.retained == [3]


def test_sliding_window_expires_oldest_first():
    window = SlidingWindow(size=3)
    assert window.observe([0, 1, 2, 3, 4]) == [0, 1]
    assert window.retained == [2, 3, 4]
    window.forget([3])
    assert window.observe([5, 6]) == [2]
    assert window.retained == [4, 5, 6]


def test_window_validation():
    with pytest.raises(ValueError):
        TumblingWindow(0)
    with pytest.raises(ValueError):
        SlidingWindow(-1)


def test_window_that_evicts_everything_mid_stream(sample_table, sample_rules):
    """A shard whose window expires every retained tuple keeps working."""
    config = MLNCleanConfig(abnormal_threshold=1)
    engine = StreamingMLNClean(
        sample_rules,
        sample_table.attributes,
        config=config,
        window=TumblingWindow(size=3),
    )
    first = engine.apply_batch(DeltaBatch.from_table(sample_table, tids=[0, 1, 2]))
    assert first.evicted_tids == []
    # the next span opens: the whole previous span leaves the window
    second = engine.apply_batch(DeltaBatch.from_table(sample_table, tids=[3, 4, 5]))
    assert sorted(second.evicted_tids) == [0, 1, 2]
    # user deletes now empty the stream entirely, mid-stream
    emptied = engine.apply_batch(DeltaBatch([Delete(3), Delete(4), Delete(5)]))
    assert emptied.tuples_total == 0
    assert len(engine.dirty) == 0 and len(engine.cleaned) == 0
    # an empty tick on the emptied stream is still a sound no-op
    engine.apply_batch(DeltaBatch())
    # and the stream recovers: new arrivals clean exactly like a batch run
    engine.apply_batch(DeltaBatch.from_table(sample_table, tids=[0, 1]))
    reference = MLNClean(config).clean(engine.dirty.copy(), sample_rules)
    assert engine.cleaned.equals(reference.cleaned)


def test_delta_json_codec_round_trip(sample_table):
    from repro.streaming import delta_from_json_dict, delta_to_json_dict

    batch = DeltaBatch(
        [
            Insert(values=sample_table.row(0).as_dict()),
            Insert(values=sample_table.row(1).as_dict(), tid=9),
            Update(3, {"CT": "DOTHAN"}),
            Delete(5),
        ]
    )
    encoded = batch.to_json_list()
    assert [e["op"] for e in encoded] == ["insert", "insert", "update", "delete"]
    assert "tid" not in encoded[0] and encoded[1]["tid"] == 9
    decoded = DeltaBatch.from_json_list(encoded)
    assert decoded.to_json_list() == encoded
    assert decoded.counts() == batch.counts()
    for bad in (
        {"op": "teleport"},
        {"op": "insert"},
        {"op": "update", "tid": 1},
        {"op": "delete"},
        "not-an-object",
    ):
        with pytest.raises(ValueError):
            delta_from_json_dict(bad)
    with pytest.raises(TypeError):
        delta_to_json_dict("nope")  # type: ignore[arg-type]


def test_engine_evicts_expired_tuples_through_delta_path():
    source = WorkloadStreamSource("hai", tuples=90, batch_size=30)
    config = MLNCleanConfig.for_dataset("hai")
    engine = StreamingMLNClean(
        source.rules, source.schema, config=config, window=SlidingWindow(size=45)
    )
    reports = engine.consume(source)
    assert len(engine.dirty) == 45
    assert sum(len(r.evicted_tids) for r in reports) == 45
    # evicted tuples left the index too: per-block tuple counts match the table
    stats = engine.index.statistics()
    assert all(entry["tuples"] <= 45 for entry in stats.values())
    # the retained suffix cleans exactly like a batch run over it
    reference = MLNClean(config).clean(engine.dirty.copy(), source.rules)
    assert engine.cleaned.equals(reference.cleaned)


# ----------------------------------------------------------------------
# sources and the workload registry hook
# ----------------------------------------------------------------------
def test_table_stream_source_partitions_ground_truth():
    source = WorkloadStreamSource(
        "car", tuples=80, batch_size=32, error_spec=ErrorSpec(error_rate=0.08)
    )
    batches = list(source)
    assert len(batches) == len(source) == 3
    sliced = sum(len(batch.ground_truth) for batch in batches)
    assert sliced == len(source.ground_truth) > 0
    streamed_tids = [
        delta.tid for batch in batches for delta in batch.deltas.inserts
    ]
    assert streamed_tids == sorted(source.dirty.tids)


def test_hospital_sample_workload_is_registered():
    assert "hospital-sample" in available_workloads()
    generator = get_workload_generator("hospital-sample", tuples=12)
    assert isinstance(generator, SampleHospitalWorkloadGenerator)
    workload = generator.build()
    assert len(workload.clean) == 12
    assert [rule.name for rule in workload.rules] == ["r1", "r2", "r3"]


def test_register_workload_guards():
    register_workload("hospital-sample", SampleHospitalWorkloadGenerator)  # no-op
    with pytest.raises(ValueError):
        register_workload("hospital-sample", type(get_workload_generator("hai")))
    with pytest.raises(TypeError):
        register_workload("bogus", dict)  # type: ignore[arg-type]


def test_streaming_cumulative_report():
    source = WorkloadStreamSource(
        "hospital-sample", tuples=24, batch_size=8, error_spec=ErrorSpec(error_rate=0.1)
    )
    engine = StreamingMLNClean(source.rules, source.schema)
    engine.consume(source)
    report = engine.report()
    assert report.dirty is engine.dirty
    assert report.cleaned.equals(engine.cleaned)
    assert report.accuracy is not None
    assert report.runtime > 0.0
    assert engine.batches_applied == 3
