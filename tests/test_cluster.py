"""Tests for the cluster fabric: ring, WAL, snapshots, recovery, router.

The headline property (this PR's acceptance criterion): a worker killed
with ``SIGKILL`` mid-stream and restarted over the same data directory
continues the stream and ends with a masked ``report_signature`` — and a
cleaned table — byte-identical to an engine that never died, on all four
registered workloads.  The WAL/snapshot edge cases (torn tail, mid-log
corruption, snapshot newer than the WAL, cold start, replay gap) are
exercised in-process against the same durability layer the subprocess
worker uses.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import signal
import socket
import struct
import subprocess
import sys
import time
import zlib
from pathlib import Path

import pytest

from repro.cluster import (
    DeltaLog,
    HashRing,
    RecoveryError,
    RouterConfig,
    RouterService,
    SnapshotError,
    WalCorruptionError,
    WalRecord,
    WorkerConfig,
    WorkerService,
    load_snapshot,
    write_snapshot,
)
from repro.cluster.launch import (
    spawn_router,
    spawn_worker,
    wait_for_workers,
    wait_until_healthy,
)
from repro.cluster.router import merge_worker_metrics
from repro.experiments.harness import prepare_instance
from repro.service import ServiceClient, ServiceError, report_signature
from repro.service.codec import canonical_json, decode_delta_request
from repro.service.service import ServiceConfig
from repro.streaming import DeltaBatch, Insert, StreamingMLNClean
from repro.streaming.window import SlidingWindow, window_from_state
from repro.workloads.registry import get_workload_generator, recommended_config

#: the four registered workloads and the window (if any) their stream runs
WORKLOADS = {
    "hospital-sample": {"kind": "sliding", "size": 24},
    "hai": None,
    "car": None,
    "tpch": None,
}
TUPLES = 32
BATCH = 8


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def workload_batches(workload: str, tuples: int = TUPLES):
    """(schema, rules, config, list-of-delta-lists) for one workload stream."""
    instance = prepare_instance(workload, tuples=tuples)
    generator = get_workload_generator(workload, tuples=tuples, seed=7)
    schema = instance.dirty.attributes
    rows = list(instance.dirty.rows)
    batches = [
        [Insert(values={a: r[a] for a in schema}, tid=r.tid) for r in rows[i:i + BATCH]]
        for i in range(0, len(rows), BATCH)
    ]
    return schema, generator.rules(), recommended_config(workload), batches


def reference_engine(workload: str, upto: int = None):
    """An uninterrupted in-process run of the workload's stream."""
    schema, rules, config, batches = workload_batches(workload)
    window_spec = WORKLOADS[workload]
    window = SlidingWindow(window_spec["size"]) if window_spec else None
    engine = StreamingMLNClean(rules, schema=schema, config=config, window=window)
    for deltas in batches[:upto]:
        engine.apply_batch(DeltaBatch(list(deltas)))
    return engine


def wire_deltas(deltas) -> list:
    return [{"op": "insert", "values": dict(d.values), "tid": d.tid} for d in deltas]


def delta_payload(workload: str, deltas) -> dict:
    payload = {"workload": workload, "seed": 7, "deltas": wire_deltas(deltas),
               "include_table": False}
    if WORKLOADS[workload]:
        payload["window"] = dict(WORKLOADS[workload])
    return payload


def engine_fingerprint_state(engine) -> tuple:
    """What recovery must reproduce bit for bit."""
    from repro.core.report import table_to_json_dict

    return (
        report_signature(engine.report()),
        canonical_json(table_to_json_dict(engine.cleaned)),
    )


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_empty_ring_assigns_nothing(self):
        assert HashRing().assign("anything") is None

    def test_single_node_takes_all(self):
        ring = HashRing(["w1"])
        assert all(ring.assign(f"k{i}") == "w1" for i in range(50))

    def test_assignment_is_deterministic(self):
        a = HashRing(["w1", "w2", "w3"])
        b = HashRing(["w3", "w1", "w2"])  # insertion order must not matter
        keys = [f"shard-{i}" for i in range(200)]
        assert a.assignments(keys) == b.assignments(keys)

    def test_add_node_moves_only_a_fraction(self):
        keys = [f"shard-{i}" for i in range(400)]
        before = HashRing(["w1", "w2", "w3"]).assignments(keys)
        after = HashRing(["w1", "w2", "w3", "w4"]).assignments(keys)
        moved = [k for k in keys if before[k] != after[k]]
        # consistent hashing: only keys landing on the new node move
        assert all(after[k] == "w4" for k in moved)
        assert 0 < len(moved) < len(keys) / 2

    def test_remove_node_reassigns_its_keys_only(self):
        keys = [f"shard-{i}" for i in range(400)]
        ring = HashRing(["w1", "w2", "w3"])
        before = ring.assignments(keys)
        ring.remove("w2")
        after = ring.assignments(keys)
        for key in keys:
            if before[key] != "w2":
                assert after[key] == before[key]
            else:
                assert after[key] in ("w1", "w3")

    def test_membership_helpers(self):
        ring = HashRing(["w1"])
        ring.add("w2")
        assert "w2" in ring and len(ring) == 2
        assert ring.nodes == ["w1", "w2"]


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
class TestDeltaLog:
    def records(self, n, start=0):
        return [
            WalRecord(seq=start + i, deltas=[{"op": "delete", "tid": i}])
            for i in range(n)
        ]

    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaLog(path) as wal:
            for record in self.records(3):
                wal.append(record)
        replayed = DeltaLog(path).replay()
        assert [r.seq for r in replayed] == [0, 1, 2]
        assert replayed[0].deltas == [{"op": "delete", "tid": 0}]

    def test_empty_file_cold_start(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")  # crash before the header hit the disk
        wal = DeltaLog(path)
        assert wal.replay() == [] and len(wal) == 0
        wal.append(self.records(1)[0])
        assert [r.seq for r in DeltaLog(path).replay()] == [0]

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaLog(path) as wal:
            for record in self.records(2):
                wal.append(record)
        with open(path, "ab") as f:
            f.write(struct.pack(">II", 999, 0) + b"torn")  # incomplete frame
        wal = DeltaLog(path)  # reopening repairs the tail
        assert [r.seq for r in wal.replay()] == [0, 1]
        wal.append(self.records(1, start=2)[0])
        assert [r.seq for r in DeltaLog(path).replay()] == [0, 1, 2]

    def test_midlog_corruption_refuses(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaLog(path) as wal:
            for record in self.records(3):
                wal.append(record)
        raw = bytearray(path.read_bytes())
        # flip one payload byte of the FIRST record: later frames intact
        raw[len(b"RWAL1\n") + struct.calcsize(">II") + 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(WalCorruptionError):
            DeltaLog(path)

    def test_checksummed_garbage_refuses(self, tmp_path):
        path = tmp_path / "wal.log"
        DeltaLog(path).close()
        payload = b"not json"
        with open(path, "ab") as f:
            f.write(struct.pack(">II", len(payload), zlib.crc32(payload)) + payload)
        with pytest.raises(WalCorruptionError):
            DeltaLog(path)

    def test_reset_clears_history(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = DeltaLog(path)
        wal.append(self.records(1)[0])
        wal.reset()
        assert wal.replay() == []
        wal.append(self.records(1, start=7)[0])
        assert [r.seq for r in DeltaLog(path).replay()] == [7]


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_roundtrip_and_missing(self, tmp_path):
        path = tmp_path / "snapshot.json"
        assert load_snapshot(path) is None
        envelope = {"fingerprint": "abc", "state": {"batches": 2}}
        write_snapshot(path, "shard1", envelope)
        assert load_snapshot(path, "shard1") == envelope

    def test_shard_mismatch_refuses(self, tmp_path):
        path = tmp_path / "snapshot.json"
        write_snapshot(path, "shard1", {"fingerprint": "abc", "state": {}})
        with pytest.raises(SnapshotError):
            load_snapshot(path, "other-shard")

    def test_bad_json_refuses(self, tmp_path):
        path = tmp_path / "snapshot.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "snapshot.json"
        write_snapshot(path, "s", {"fingerprint": "a", "state": {"n": 1}})
        write_snapshot(path, "s", {"fingerprint": "a", "state": {"n": 2}})
        assert load_snapshot(path, "s")["state"]["n"] == 2
        assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# engine state_dict / restore_state (the snapshot payload)
# ----------------------------------------------------------------------
class TestEngineStateRoundtrip:
    @pytest.mark.parametrize("workload", ["hospital-sample", "hai"])
    def test_snapshot_resume_is_byte_identical(self, workload):
        schema, rules, config, batches = workload_batches(workload)
        window_spec = WORKLOADS[workload]

        full = reference_engine(workload)

        partial = reference_engine(workload, upto=3)
        state = json.loads(json.dumps(partial.state_dict()))  # wire roundtrip
        resumed = StreamingMLNClean(
            rules,
            schema=schema,
            config=config,
            window=SlidingWindow(window_spec["size"]) if window_spec else None,
        )
        resumed.restore_state(state)
        for deltas in batches[3:]:
            resumed.apply_batch(DeltaBatch(list(deltas)))
        assert engine_fingerprint_state(resumed) == engine_fingerprint_state(full)
        if window_spec:
            assert resumed.window.state_dict() == full.window.state_dict()

    def test_restore_refuses_used_engine(self):
        schema, rules, config, batches = workload_batches("hai")
        engine = StreamingMLNClean(rules, schema=schema, config=config)
        engine.apply_batch(DeltaBatch(list(batches[0])))
        with pytest.raises(ValueError):
            engine.restore_state(reference_engine("hai", upto=1).state_dict())

    def test_window_state_roundtrip(self):
        window = SlidingWindow(4)
        window.observe([1, 2, 3])
        restored = window_from_state(json.loads(json.dumps(window.state_dict())))
        assert restored.state_dict() == window.state_dict()


# ----------------------------------------------------------------------
# in-process recovery through the durability layer
# ----------------------------------------------------------------------
def run_worker_ticks(data_dir, workload, batch_range, snapshot_every=100):
    """Boot a WorkerService, stream some batches, stop WITHOUT draining.

    ``stop()`` never checkpoints, so the WAL tail survives exactly as a
    crash would leave it (modulo torn frames, which other tests inject).
    Returns (shard_fingerprint, signature-state) observed before the stop.
    """
    _schema, _rules, _config, batches = workload_batches(workload)

    async def main():
        service = WorkerService(
            WorkerConfig(
                worker_id="t", data_dir=data_dir, snapshot_every=snapshot_every
            ),
            ServiceConfig(executor_workers=2),
        )
        await service.start()
        try:
            for deltas in batches[batch_range.start:batch_range.stop]:
                spec = decode_delta_request(delta_payload(workload, deltas))
                job = await service.submit(spec)
                await service.wait(job.id)
                assert job.status.value == "done", job.error
            shard = service.pool.shards()[0]
            return shard.key.fingerprint, engine_fingerprint_state(shard.stream)
        finally:
            await service.stop()

    return asyncio.run(main())


def boot_and_recover(data_dir, expect_shards=1):
    """Boot a WorkerService cold and return (service-state-per-shard)."""

    async def main():
        service = WorkerService(
            WorkerConfig(worker_id="t", data_dir=data_dir),
            ServiceConfig(executor_workers=2),
        )
        await service.start()
        try:
            shards = service.pool.shards()
            assert len(shards) == expect_shards
            return {
                s.key.fingerprint: engine_fingerprint_state(s.stream)
                for s in shards
                if s.stream is not None
            }
        finally:
            await service.stop()

    return asyncio.run(main())


class TestInProcessRecovery:
    def test_wal_only_recovery(self, tmp_path):
        fp, before = run_worker_ticks(tmp_path, "hai", range(0, 3))
        recovered = boot_and_recover(tmp_path)
        assert recovered[fp] == before
        assert recovered[fp] == engine_fingerprint_state(
            reference_engine("hai", upto=3)
        )

    def test_snapshot_plus_wal_recovery(self, tmp_path):
        # snapshot after tick 2, WAL carries tick 3
        fp, before = run_worker_ticks(
            tmp_path, "hospital-sample", range(0, 4), snapshot_every=3
        )
        assert (tmp_path / "shards" / fp / "snapshot.json").exists()
        recovered = boot_and_recover(tmp_path)
        assert recovered[fp] == before

    def test_truncated_wal_tail_recovers_prefix(self, tmp_path):
        fp, _ = run_worker_ticks(tmp_path, "hai", range(0, 3))
        wal_path = tmp_path / "shards" / fp / "wal.log"
        with open(wal_path, "ab") as f:
            f.write(struct.pack(">II", 123, 0) + b"half a frame")
        recovered = boot_and_recover(tmp_path)
        # the torn frame never carried acknowledged work; ticks 0-2 survive
        assert recovered[fp] == engine_fingerprint_state(
            reference_engine("hai", upto=3)
        )

    def test_midlog_corruption_fails_loudly(self, tmp_path):
        fp, _ = run_worker_ticks(tmp_path, "hai", range(0, 3))
        wal_path = tmp_path / "shards" / fp / "wal.log"
        raw = bytearray(wal_path.read_bytes())
        raw[len(b"RWAL1\n") + struct.calcsize(">II") + 4] ^= 0xFF
        wal_path.write_bytes(bytes(raw))
        with pytest.raises(WalCorruptionError):
            boot_and_recover(tmp_path)

    def test_snapshot_newer_than_wal_skips_stale_records(self, tmp_path):
        # run A: WAL holds ticks 0-2, no snapshot
        run_worker_ticks(tmp_path / "a", "hai", range(0, 3))
        # run B over the same stream: snapshot taken at tick 2, WAL reset
        fp, _ = run_worker_ticks(tmp_path / "b", "hai", range(0, 3), snapshot_every=3)
        # crash window between snapshot write and WAL reset: compose run B's
        # snapshot with run A's (byte-identical, now stale) full WAL
        shutil.copy(
            tmp_path / "a" / "shards" / fp / "wal.log",
            tmp_path / "b" / "shards" / fp / "wal.log",
        )
        recovered = boot_and_recover(tmp_path / "b")
        assert recovered[fp] == engine_fingerprint_state(
            reference_engine("hai", upto=3)
        )

    def test_wal_gap_fails_loudly(self, tmp_path):
        fp, _ = run_worker_ticks(tmp_path, "hai", range(0, 3))
        shard_dir = tmp_path / "shards" / fp
        records = DeltaLog(shard_dir / "wal.log").replay()
        (shard_dir / "wal.log").unlink()
        rebuilt = DeltaLog(shard_dir / "wal.log")
        for record in records[1:]:  # drop tick 0: acknowledged history gone
            rebuilt.append(record)
        rebuilt.close()
        with pytest.raises(RecoveryError):
            boot_and_recover(tmp_path)

    def test_empty_data_dir_cold_start(self, tmp_path):
        assert boot_and_recover(tmp_path, expect_shards=0) == {}

    def test_spec_only_shard_recovers_cold_then_streams(self, tmp_path):
        fp, _ = run_worker_ticks(tmp_path, "hai", range(0, 1))
        shard_dir = tmp_path / "shards" / fp
        (shard_dir / "wal.log").unlink()  # cold shard: identity, no history
        recovered = boot_and_recover(tmp_path)
        assert recovered[fp] == engine_fingerprint_state(
            reference_engine("hai", upto=0)
        )

    def test_handoff_checkpoint_makes_wal_redundant(self, tmp_path):
        _schema, _rules, _config, batches = workload_batches("hai")

        async def main():
            service = WorkerService(
                WorkerConfig(worker_id="t", data_dir=tmp_path),
                ServiceConfig(executor_workers=2),
            )
            await service.start()
            try:
                for deltas in batches[:2]:
                    spec = decode_delta_request(delta_payload("hai", deltas))
                    job = await service.submit(spec)
                    await service.wait(job.id)
                shard = service.pool.shards()[0]
                fp = shard.key.fingerprint
                assert await service.release_shard(fp) is True
                assert service.pool.shards() == []
                return fp
            finally:
                await service.stop()

        fp = asyncio.run(main())
        assert len(DeltaLog(tmp_path / "shards" / fp / "wal.log")) == 0
        recovered = boot_and_recover(tmp_path)
        assert recovered[fp] == engine_fingerprint_state(
            reference_engine("hai", upto=2)
        )


# ----------------------------------------------------------------------
# the acceptance matrix: kill -9 a real worker process, all four workloads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_kill_dash_nine_recovery_is_byte_identical(workload, tmp_path):
    reference = engine_fingerprint_state(reference_engine(workload))
    port = free_port()
    proc = spawn_worker(port, "w1", tmp_path, snapshot_every=2)
    try:
        wait_until_healthy(port)
        client = ServiceClient(port=port)
        _schema, _rules, _config, batches = workload_batches(workload)
        for deltas in batches[:3]:
            job = client.request("POST", "/deltas", delta_payload(workload, deltas))
            assert job["job"]["status"] == "done"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        proc = spawn_worker(port, "w1", tmp_path, snapshot_every=2)
        wait_until_healthy(port)
        info = client.request("GET", "/cluster/info")
        assert len(info["shards"]) == 1  # recovered eagerly at boot
        for deltas in batches[3:]:
            job = client.request("POST", "/deltas", delta_payload(workload, deltas))
            assert job["job"]["status"] == "done"
        state = client.request("GET", f"/cluster/streams/{info['shards'][0]}")
        assert state["signature"] == reference[0]
        assert canonical_json(state["cleaned"]) == reference[1]
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# graceful shutdown (SIGTERM → drain → final snapshot → exit 0)
# ----------------------------------------------------------------------
def test_sigterm_drains_checkpoints_and_exits_zero(tmp_path):
    port = free_port()
    proc = spawn_worker(port, "w1", tmp_path, snapshot_every=100)
    try:
        wait_until_healthy(port)
        client = ServiceClient(port=port)
        _schema, _rules, _config, batches = workload_batches("hai")
        for deltas in batches[:2]:
            job = client.request("POST", "/deltas", delta_payload("hai", deltas))
            assert job["job"]["status"] == "done"
        fp = client.request("GET", "/cluster/info")["shards"][0]
        proc.terminate()  # SIGTERM
        assert proc.wait(timeout=30) == 0
        # the drain checkpointed: snapshot present, WAL empty
        shard_dir = tmp_path / "shards" / fp
        assert (shard_dir / "snapshot.json").exists()
        assert len(DeltaLog(shard_dir / "wal.log")) == 0
        recovered = boot_and_recover(tmp_path)
        assert recovered[fp] == engine_fingerprint_state(
            reference_engine("hai", upto=2)
        )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_service_serve_exits_zero_on_sigterm():
    port = free_port()
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else src
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--port", str(port)],
        env=env,
    )
    try:
        wait_until_healthy(port)
        proc.terminate()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# router: topology, fan-in, failover
# ----------------------------------------------------------------------
def test_router_topology_failover_and_fanin(tmp_path):
    reference = engine_fingerprint_state(reference_engine("hai"))
    router_port, p1, p2 = free_port(), free_port(), free_port()
    router = spawn_router(router_port, rebalance_interval=0.3, dead_after=1.5)
    workers = {
        "w1": spawn_worker(
            p1, "w1", tmp_path, router=f"127.0.0.1:{router_port}", snapshot_every=2
        ),
        "w2": spawn_worker(
            p2, "w2", tmp_path, router=f"127.0.0.1:{router_port}", snapshot_every=2
        ),
    }
    ports = {"w1": p1, "w2": p2}
    procs = [router, *workers.values()]
    try:
        wait_for_workers(router_port, 2)
        client = ServiceClient(
            port=router_port, retries=10, backoff=0.2, max_backoff=2.0
        )

        # clean requests flow through with worker-namespaced job ids
        job = client.clean(workload="hospital-sample", tuples=24, include_report=False)
        assert job["status"] == "done" and ":" in job["id"]
        assert client.job(job["id"])["status"] == "done"

        _schema, _rules, _config, batches = workload_batches("hai")
        for deltas in batches[:2]:
            job = client.request(
                "POST", "/deltas", delta_payload("hai", deltas)
            )["job"]
            assert job["status"] == "done"
            assert job["request_id"]  # the router's cross-process id came back

        # locate the stream's owner via each worker's control routes
        owner, stream_fp = None, None
        for worker_id, port in ports.items():
            info = ServiceClient(port=port).request("GET", "/cluster/info")
            for fingerprint in info["shards"]:
                try:
                    ServiceClient(port=port).request(
                        "GET", f"/cluster/streams/{fingerprint}"
                    )
                except ServiceError:
                    continue
                owner, stream_fp = worker_id, fingerprint
        assert owner is not None

        # merged /metrics: ownership gauge + per-worker relabelled series
        metrics = _raw_get(router_port, "/metrics")
        assert "repro_cluster_shards_owned" in metrics
        assert f'worker="{owner}"' in metrics
        assert "repro_router_requests_total" in metrics

        stats = client.stats()
        assert set(stats["workers_stats"]) == {"w1", "w2"}
        assert stats["shard_owners"]

        # kill -9 the owner; the retrying client rides out the failover
        victim = workers[owner]
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        for deltas in batches[2:]:
            job = client.request(
                "POST", "/deltas", delta_payload("hai", deltas)
            )["job"]
            assert job["status"] == "done"

        survivor = "w2" if owner == "w1" else "w1"
        state = ServiceClient(port=ports[survivor]).request(
            "GET", f"/cluster/streams/{stream_fp}"
        )
        assert state["signature"] == reference[0]
        assert canonical_json(state["cleaned"]) == reference[1]

        # membership converges: the dead worker leaves /healthz live set
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            health = client.healthz()
            if not health["workers"].get(owner, {}).get("live", False):
                break
            time.sleep(0.2)
        assert not client.healthz()["workers"].get(owner, {}).get("live", False)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        for proc in procs:
            if proc.poll() is None:
                proc.wait()


def _raw_get(port: int, path: str) -> str:
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        return conn.getresponse().read().decode("utf-8")
    finally:
        conn.close()


# ----------------------------------------------------------------------
# router unit logic (no subprocesses)
# ----------------------------------------------------------------------
class TestRouterService:
    def heartbeat(self, router, worker_id, shards=(), port=1234):
        return router.heartbeat(
            {"worker_id": worker_id, "port": port, "shards": list(shards)}
        )

    def test_membership_and_liveness(self):
        router = RouterService(RouterConfig(dead_after=0.05))
        self.heartbeat(router, "w1")
        assert "w1" in router.live_workers()
        time.sleep(0.1)
        assert "w1" not in router.live_workers()
        assert router.owner_of("any") is None  # dead owner answers None

    def test_rebalance_asks_misplaced_holder_to_drain(self, monkeypatch):
        router = RouterService(RouterConfig())
        self.heartbeat(router, "w1")
        self.heartbeat(router, "w2")
        # a fingerprint the ring assigns to w2, currently reported by w1
        fingerprint = next(
            f"shard-{i}" for i in range(1000)
            if router.ring.assign(f"shard-{i}") == "w2"
        )
        self.heartbeat(router, "w1", shards=[fingerprint])
        drains = []

        async def fake_http_json(host, port, method, path, payload=None, **kw):
            drains.append((port, path, payload))
            return 200, {"released": True}

        monkeypatch.setattr("repro.cluster.router.http_json", fake_http_json)
        drained = asyncio.run(router.rebalance_once())
        assert drained == 1
        assert drains == [(1234, "/cluster/drain", {"fingerprint": fingerprint})]

    def test_well_placed_shards_are_left_alone(self):
        router = RouterService(RouterConfig())
        self.heartbeat(router, "w1")
        fingerprint = next(
            f"shard-{i}" for i in range(1000)
            if router.ring.assign(f"shard-{i}") == "w1"
        )
        self.heartbeat(router, "w1", shards=[fingerprint])
        assert asyncio.run(router.rebalance_once()) == 0

    def test_merge_worker_metrics_relabels_and_dedups(self):
        merged = merge_worker_metrics(
            [
                ("w1", "# HELP m jobs\n# TYPE m counter\nm 1\nm2{k=\"v\"} 3\n"),
                ("w2", "# HELP m jobs\n# TYPE m counter\nm 2\n"),
            ]
        )
        assert merged.count("# HELP m jobs") == 1
        assert 'm{worker="w1"} 1' in merged
        assert 'm{worker="w2"} 2' in merged
        assert 'm2{k="v",worker="w1"} 3' in merged


# ----------------------------------------------------------------------
# client retries (fake clock)
# ----------------------------------------------------------------------
class TestClientRetries:
    class _FlakyTransport:
        def __init__(self, failures):
            self.failures = list(failures)
            self.calls = 0

        def __call__(self, method, path, payload=None):
            self.calls += 1
            if self.failures:
                raise self.failures.pop(0)
            return {"ok": True}

    class _FixedRng:
        def random(self):
            return 1.0  # jitter multiplies by exactly (1 + jitter)

    def make_client(self, failures, **kwargs):
        slept = []
        client = ServiceClient(
            retries=kwargs.pop("retries", 3),
            backoff=kwargs.pop("backoff", 1.0),
            max_backoff=kwargs.pop("max_backoff", 8.0),
            jitter=kwargs.pop("jitter", 0.0),
            sleep=slept.append,
            **kwargs,
        )
        transport = self._FlakyTransport(failures)
        client._request_once = transport
        return client, transport, slept

    def test_retries_503_with_exponential_backoff(self):
        client, transport, slept = self.make_client(
            [ServiceError(503, {}), ServiceError(503, {})]
        )
        assert client.request("POST", "/deltas") == {"ok": True}
        assert transport.calls == 3
        assert slept == [1.0, 2.0]  # backoff * 2**attempt, no jitter

    def test_retry_after_floors_the_delay(self):
        client, _transport, slept = self.make_client(
            [ServiceError(503, {}, retry_after=5.0)]
        )
        client.request("GET", "/healthz")
        assert slept == [5.0]  # the server's hint beats backoff * 2**0

    def test_backoff_is_capped(self):
        client, _transport, slept = self.make_client(
            [ServiceError(503, {})] * 5, retries=5, backoff=4.0, max_backoff=6.0
        )
        client.request("GET", "/stats")
        assert slept == [4.0, 6.0, 6.0, 6.0, 6.0]

    def test_jitter_stretches_the_delay(self):
        client, _transport, slept = self.make_client(
            [ServiceError(503, {})], jitter=0.5, rng=self._FixedRng()
        )
        client.request("GET", "/healthz")
        assert slept == [1.5]  # 1.0 * (1 + 1.0 * 0.5)

    def test_connection_errors_are_retried(self):
        client, transport, slept = self.make_client(
            [ConnectionRefusedError("boom")]
        )
        assert client.request("GET", "/healthz") == {"ok": True}
        assert transport.calls == 2 and slept == [1.0]

    def test_non_503_is_never_retried(self):
        client, transport, _slept = self.make_client(
            [ServiceError(400, {"error": {"message": "bad"}})]
        )
        with pytest.raises(ServiceError):
            client.request("POST", "/clean")
        assert transport.calls == 1

    def test_exhausted_retries_raise_the_last_error(self):
        client, transport, slept = self.make_client(
            [ServiceError(503, {})] * 3, retries=2
        )
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/deltas")
        assert excinfo.value.status == 503
        assert transport.calls == 3 and len(slept) == 2

    def test_default_client_does_not_retry(self):
        client = ServiceClient()
        client._request_once = self._FlakyTransport([ServiceError(503, {})])
        with pytest.raises(ServiceError):
            client.request("GET", "/healthz")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient(retries=-1)
