"""The batch candidate-set distance API: nearest / pairwise / topk.

The load-bearing properties of the sub-quadratic distance core:

* every batch query is *bit-identical* to the brute-force scalar loop it
  replaces, for every registered metric (the q-gram count filter only
  orders and lower-bounds candidates, it never approximates),
* the vectorized numpy kernel and the pure-python fallback return the same
  results — on property-level queries and on whole cleaning runs over every
  registered workload and every execution backend,
* the approximation knobs (``pruning_topk``, ``max_candidates``) default to
  exact semantics and validate their domains,
* the per-block q-gram indexes are maintained incrementally by the delta
  hooks, and the pipeline records the ``stage:qgram-index`` span,
* the scalar entry points (``bounded_distance``, ``values_distance`` with a
  cutoff) warn exactly once per engine with ``DeprecationWarning``.
"""

from __future__ import annotations

import math
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MLNCleanConfig
from repro.core.index import MLNIndex
from repro.core.pipeline import MLNClean
from repro.distance import get_metric
from repro.errors.injector import ErrorSpec
from repro.experiments.harness import session_for_instance
from repro.perf import DistanceEngine, HAVE_NUMPY, QGramIndex, build_profile
from repro.perf.qgram import lower_bound
from repro.workloads.registry import available_workloads, get_workload_generator

METRICS = ("levenshtein", "damerau", "cosine", "jaccard")

short_text = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122), max_size=10
)
value_tuples = st.lists(short_text, min_size=1, max_size=3).map(tuple)


def brute_values_distance(metric, left, right):
    return sum(
        metric.distance(a, b) if a != b else 0.0 for a, b in zip(left, right)
    )


def brute_nearest(metric, query, candidates, cutoff=math.inf):
    best_index, best = None, math.inf
    for position, candidate in enumerate(candidates):
        value = brute_values_distance(metric, query, candidate)
        if value <= cutoff and value < best:
            best, best_index = value, position
    return best_index, best


def small_instance(name, tuples=80, error_rate=0.08, seed=13):
    workload = get_workload_generator(name, tuples=tuples, seed=7).build()
    return workload.make_instance(ErrorSpec(error_rate=error_rate, seed=seed))


def tables_equal(left, right):
    if sorted(left.tids) != sorted(right.tids):
        return False
    return all(
        left.row(tid).as_dict() == right.row(tid).as_dict() for tid in left.tids
    )


# ----------------------------------------------------------------------
# batch API ≡ brute force, for every metric
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metric_name", METRICS)
@given(query=value_tuples, data=st.data())
@settings(max_examples=40, deadline=None)
def test_nearest_equals_brute_force(metric_name, query, data):
    metric = get_metric(metric_name)
    width = len(query)
    candidates = data.draw(
        st.lists(
            st.lists(short_text, min_size=width, max_size=width).map(tuple),
            max_size=8,
        )
    )
    cutoff = data.draw(st.sampled_from([math.inf, 0.0, 1.0, 2.0, 5.0]))
    engine = DistanceEngine(metric)
    position, distance = engine.nearest(query, candidates, cutoff)
    expected_position, expected = brute_nearest(metric, query, candidates, cutoff)
    assert position == expected_position
    assert distance == expected


@pytest.mark.parametrize("metric_name", METRICS)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_pairwise_equals_brute_force(metric_name, data):
    metric = get_metric(metric_name)
    width = data.draw(st.integers(min_value=1, max_value=3))
    items = data.draw(
        st.lists(
            st.lists(short_text, min_size=width, max_size=width).map(tuple),
            max_size=7,
        )
    )
    engine = DistanceEngine(metric)
    results = engine.pairwise(items)
    assert len(results) == len(items)
    for i, (position, distance) in enumerate(results):
        others = [item for j, item in enumerate(items) if j != i]
        expected_position, expected = brute_nearest(metric, items[i], others)
        if expected_position is not None and expected_position >= i:
            expected_position += 1  # re-map into the full list
        assert distance == expected
        if expected_position is None:
            assert position is None
        else:
            # same minimum; the engine breaks ties toward smaller positions
            assert brute_values_distance(metric, items[i], items[position]) == expected
            assert position <= expected_position


@pytest.mark.parametrize("metric_name", METRICS)
@given(query=value_tuples, data=st.data())
@settings(max_examples=40, deadline=None)
def test_topk_equals_brute_force(metric_name, query, data):
    metric = get_metric(metric_name)
    width = len(query)
    candidates = data.draw(
        st.lists(
            st.lists(short_text, min_size=width, max_size=width).map(tuple),
            max_size=8,
        )
    )
    k = data.draw(st.integers(min_value=1, max_value=4))
    engine = DistanceEngine(metric)
    got = engine.topk(query, candidates, k)
    ranked = sorted(
        (brute_values_distance(metric, query, candidate), position)
        for position, candidate in enumerate(candidates)
    )[:k]
    assert got == [(position, value) for value, position in ranked]


@given(query=value_tuples, data=st.data())
@settings(max_examples=40, deadline=None)
def test_nearest_honours_a_block_qgram_index(query, data):
    """An explicit (possibly stale-superset) index never changes the result."""
    metric = get_metric("levenshtein")
    width = len(query)
    candidates = data.draw(
        st.lists(
            st.lists(short_text, min_size=width, max_size=width).map(tuple),
            max_size=8,
        )
    )
    extras = data.draw(
        st.lists(
            st.lists(short_text, min_size=width, max_size=width).map(tuple),
            max_size=3,
        )
    )
    index = QGramIndex(q=1)
    for candidate in candidates + extras:  # extras: stale superset is safe
        index.add(candidate)
    engine = DistanceEngine(metric)
    assert engine.nearest(query, candidates, index=index) == engine.nearest(
        query, candidates
    )


# ----------------------------------------------------------------------
# q-gram lower bound soundness
# ----------------------------------------------------------------------
@given(left=short_text, right=short_text, q=st.integers(min_value=1, max_value=3))
@settings(max_examples=150, deadline=None)
def test_qgram_lower_bound_never_exceeds_levenshtein(left, right, q):
    metric = get_metric("levenshtein")
    bound = lower_bound(
        build_profile((left,), q), build_profile((right,), q), q, metric.qgram_edit_ops
    )
    assert bound <= metric.distance(left, right)


# ----------------------------------------------------------------------
# kernel ≡ python
# ----------------------------------------------------------------------
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@needs_numpy
@given(query=value_tuples, data=st.data())
@settings(max_examples=40, deadline=None)
def test_kernel_and_python_scans_are_bit_identical(query, data):
    width = len(query)
    candidates = data.draw(
        st.lists(
            st.lists(short_text, min_size=width, max_size=width).map(tuple),
            min_size=2,
            max_size=12,
        )
    )
    cutoff = data.draw(st.sampled_from([math.inf, 1.0, 3.0]))
    metric = get_metric("levenshtein")
    scalar = DistanceEngine(metric, kernel="python")
    vector = DistanceEngine(metric, kernel="numpy")
    assert vector._kernel is not None
    assert scalar.nearest(query, candidates, cutoff) == vector.nearest(
        query, candidates, cutoff
    )
    assert scalar.pairwise(candidates) == vector.pairwise(candidates)
    assert scalar.topk(query, candidates, 3) == vector.topk(query, candidates, 3)


@needs_numpy
@pytest.mark.parametrize("workload_name", available_workloads())
@pytest.mark.parametrize("backend", ["batch", "distributed", "streaming"])
def test_kernel_run_equals_python_run_on_every_workload(workload_name, backend):
    """Whole cleaning runs are byte-identical across distance backends."""
    from dataclasses import replace

    from repro.workloads.registry import recommended_config

    instance = small_instance(workload_name, tuples=60)
    base = recommended_config(instance.name)
    reports = {}
    for kernel in ("python", "numpy"):
        config = replace(base, distance_kernel=kernel)
        if backend == "streaming":
            from repro.streaming import DeltaBatch, StreamingMLNClean

            cleaner = StreamingMLNClean(
                instance.rules, schema=instance.dirty.attributes, config=config
            )
            cleaner.apply_batch(DeltaBatch.from_table(instance.dirty))
            reports[kernel] = cleaner.cleaned
        else:
            options = {"workers": 2} if backend == "distributed" else {}
            session = session_for_instance(
                instance, config=config, backend=backend, **options
            )
            reports[kernel] = session.run().cleaned
    assert tables_equal(reports["python"], reports["numpy"])


def test_kernel_mode_numpy_requires_numpy(monkeypatch):
    import repro.perf.engine as engine_module

    monkeypatch.setattr(engine_module, "HAVE_NUMPY", False)
    with pytest.raises(RuntimeError, match=r"repro\[fast\]"):
        DistanceEngine(get_metric("levenshtein"), kernel="numpy")
    # "auto" degrades to the scalar path instead of raising
    engine = DistanceEngine(get_metric("levenshtein"), kernel="auto")
    assert engine._kernel is None


def test_kernel_counters_split_raw_from_kernel_evaluations():
    if not HAVE_NUMPY:
        pytest.skip("numpy not installed")
    values = [(f"value{i:02d}",) for i in range(20)]
    engine = DistanceEngine(get_metric("levenshtein"), kernel="numpy")
    engine.nearest(("value99",), values)
    assert engine.stats.batch_queries == 1
    assert engine.stats.qgram_candidates == len(values)
    assert engine.stats.kernel_batches > 0
    assert engine.stats.kernel_evaluations > 0
    assert engine.stats.exact_evaluations >= engine.stats.kernel_evaluations


# ----------------------------------------------------------------------
# approximation knobs
# ----------------------------------------------------------------------
def test_default_knobs_are_exact():
    config = MLNCleanConfig()
    assert config.pruning_topk is None
    assert config.max_candidates is None
    engine = config.engine()
    assert engine.pruning_topk is None
    assert engine.max_candidates is None


def test_max_candidates_caps_in_input_order():
    engine = DistanceEngine(get_metric("levenshtein"), max_candidates=2)
    # the exact match sits beyond the cap, so it must not be considered
    position, distance = engine.nearest(("xx",), [("ab",), ("cd",), ("xx",)])
    assert position in (0, 1)
    assert distance > 0
    assert engine.stats.qgram_filtered >= 1


def test_pruning_topk_keeps_the_most_promising_bounds():
    engine = DistanceEngine(get_metric("levenshtein"), pruning_topk=1)
    # candidate 1 shares every unigram with the query → smallest lower bound
    position, distance = engine.nearest(("abc",), [("xyzw",), ("abcd",)])
    assert (position, distance) == (1, 1.0)
    assert engine.stats.qgram_filtered >= 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"qgram_size": 0},
        {"pruning_topk": 0},
        {"max_candidates": 0},
        {"distance_kernel": "simd"},
    ],
)
def test_config_validates_pruning_knobs(kwargs):
    with pytest.raises(ValueError):
        MLNCleanConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"qgram_size": 0},
        {"pruning_topk": 0},
        {"max_candidates": 0},
        {"kernel": "simd"},
    ],
)
def test_engine_validates_pruning_knobs(kwargs):
    with pytest.raises(ValueError):
        DistanceEngine(get_metric("levenshtein"), **kwargs)


def test_pruning_knobs_are_fingerprint_covered():
    base = MLNCleanConfig()
    assert "qgram_size" in base.identity_dict()
    assert base.identity_dict() != MLNCleanConfig(pruning_topk=3).identity_dict()
    assert base.identity_dict() != MLNCleanConfig(max_candidates=9).identity_dict()


# ----------------------------------------------------------------------
# incremental q-gram index maintenance
# ----------------------------------------------------------------------
def test_block_qgram_index_tracks_adds_and_removes(sample_table, sample_rules):
    index = MLNIndex.build(sample_table, sample_rules)
    index.enable_qgram(1)
    block = index.block_list[0]
    qgram = block.qgram_index
    assert qgram is not None and len(qgram) > 0
    row = {attr: "zzzz" for attr in sample_table.attributes}
    before = len(qgram)
    piece = block.add_tuple(987654, row)
    assert piece is not None
    assert len(qgram) == before + 1
    assert qgram.profile(piece.values) is not None
    block.remove_tuple(987654, row)
    assert len(qgram) == before
    assert qgram.profile(piece.values) is None


def test_qgram_index_refcounts_duplicate_values():
    index = QGramIndex(q=2)
    index.add(("abcd",))
    index.add(("abcd",))
    index.discard(("abcd",))
    assert index.profile(("abcd",)) is not None  # still one live holder
    index.discard(("abcd",))
    assert index.profile(("abcd",)) is None


def test_pipeline_records_the_qgram_index_stage(sample_table, sample_rules):
    report = MLNClean(config=MLNCleanConfig()).clean(sample_table, sample_rules)
    assert "qgram-index" in report.timings.as_dict()


# ----------------------------------------------------------------------
# scalar deprecation shims
# ----------------------------------------------------------------------
def test_bounded_distance_warns_once_per_engine():
    engine = DistanceEngine(get_metric("levenshtein"))
    with pytest.warns(DeprecationWarning, match="batch candidate-set API"):
        value = engine.bounded_distance("kitten", "sitting", 5.0)
    assert value == 3.0
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert engine.bounded_distance("kitten", "sitting", 5.0) == 3.0


def test_values_distance_warns_only_with_a_finite_cutoff():
    engine = DistanceEngine(get_metric("levenshtein"))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        # no cutoff: still the supported exact entry point
        assert engine.values_distance(("ab", "cd"), ("ab", "ce")) == 1.0
        assert engine.distance("ab", "ba") == 2.0
    with pytest.warns(DeprecationWarning, match="batch candidate-set API"):
        engine.values_distance(("ab", "cd"), ("ab", "ce"), cutoff=4.0)


def test_pipeline_runs_free_of_deprecation_warnings(sample_table, sample_rules):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        MLNClean(config=MLNCleanConfig()).clean(sample_table, sample_rules)
