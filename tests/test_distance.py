"""Unit and property tests for the distance metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.distance import (
    CosineDistance,
    DamerauLevenshteinDistance,
    JaccardDistance,
    LevenshteinDistance,
    available_metrics,
    get_metric,
)

ALL_METRICS = [
    LevenshteinDistance(),
    DamerauLevenshteinDistance(),
    CosineDistance(),
    JaccardDistance(),
]

short_text = st.text(alphabet=st.characters(min_codepoint=48, max_codepoint=122), max_size=12)


# ----------------------------------------------------------------------
# Levenshtein
# ----------------------------------------------------------------------
def test_levenshtein_known_values():
    metric = LevenshteinDistance()
    assert metric.distance("DOTHAN", "DOTH") == 2
    assert metric.distance("AL", "AK") == 1
    assert metric.distance("", "ABC") == 3
    assert metric.distance("kitten", "sitting") == 3


def test_levenshtein_normalized_bounds():
    metric = LevenshteinDistance()
    assert metric.normalized("ABC", "ABC") == 0.0
    assert metric.normalized("ABC", "XYZ") == 1.0
    assert 0.0 < metric.normalized("ABC", "ABD") < 1.0


def test_damerau_counts_transposition_as_one():
    assert DamerauLevenshteinDistance().distance("AB", "BA") == 1
    assert LevenshteinDistance().distance("AB", "BA") == 2


# ----------------------------------------------------------------------
# cosine / jaccard
# ----------------------------------------------------------------------
def test_cosine_identical_and_disjoint():
    metric = CosineDistance()
    assert metric.distance("BOAZ", "BOAZ") == 0.0
    assert metric.distance("AAAA", "ZZZZ") == pytest.approx(1.0)


def test_cosine_prefix_typo_large_distance():
    # The paper's observation: an error in the leading characters inflates the
    # cosine distance much more than the Levenshtein distance.
    cosine = CosineDistance()
    levenshtein = LevenshteinDistance()
    assert cosine.normalized("XOAZ", "BOAZ") > levenshtein.normalized("XOAZ", "BOAZ")


def test_jaccard_known_value():
    metric = JaccardDistance(ngram_size=2)
    # "ABC" -> {AB, BC}; "ABD" -> {AB, BD}: intersection 1, union 3.
    assert metric.distance("ABC", "ABD") == pytest.approx(1 - 1 / 3)


def test_ngram_size_validation():
    with pytest.raises(ValueError):
        CosineDistance(ngram_size=0)
    with pytest.raises(ValueError):
        JaccardDistance(ngram_size=0)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_contains_all_metrics():
    assert {"levenshtein", "cosine", "damerau", "jaccard"} <= set(available_metrics())


def test_get_metric_case_insensitive():
    assert isinstance(get_metric("Levenshtein"), LevenshteinDistance)


def test_get_metric_unknown():
    with pytest.raises(KeyError):
        get_metric("no-such-metric")


# ----------------------------------------------------------------------
# value-tuple helpers
# ----------------------------------------------------------------------
def test_values_distance_sums_positions():
    metric = LevenshteinDistance()
    assert metric.values_distance(("AL", "BOAZ"), ("AK", "BOAZ")) == 1
    assert metric.values_distance(("AL", "BOAZ"), ("AK", "BOA")) == 2


def test_values_distance_length_mismatch():
    with pytest.raises(ValueError):
        LevenshteinDistance().values_distance(("A",), ("A", "B"))


def test_values_normalized_in_unit_interval():
    metric = LevenshteinDistance()
    assert metric.values_normalized(("AL", "BOAZ"), ("AL", "BOAZ")) == 0.0
    assert 0.0 < metric.values_normalized(("AL", "BOAZ"), ("AK", "XXXX")) <= 1.0


# ----------------------------------------------------------------------
# metric axioms (property-based)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
@given(value=short_text)
def test_identity_axiom(metric, value):
    assert metric.distance(value, value) == 0.0


@pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
@given(left=short_text, right=short_text)
def test_symmetry_axiom(metric, left, right):
    assert metric.distance(left, right) == pytest.approx(metric.distance(right, left))


@pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
@given(left=short_text, right=short_text)
def test_non_negativity_and_normalized_bounds(metric, left, right):
    assert metric.distance(left, right) >= 0.0
    assert 0.0 <= metric.normalized(left, right) <= 1.0


@given(left=short_text, right=short_text, third=short_text)
def test_levenshtein_triangle_inequality(left, right, third):
    metric = LevenshteinDistance()
    assert metric.distance(left, third) <= (
        metric.distance(left, right) + metric.distance(right, third)
    )
