"""Unit tests for the AGP, RSC, FSCR and deduplication stages.

The worked examples of the paper (Sections 4-5) serve as the reference: the
abnormal group G12 merges into G11, the γ {CT: BOAZ, ST: AL} wins group G13,
tuple t3 fuses to {ELIZA, BOAZ, AL, 2567688400}, and the duplicates collapse.
"""

import pytest

from repro.core.agp import AbnormalGroupProcessor
from repro.core.config import MLNCleanConfig
from repro.core.dedup import remove_duplicates
from repro.core.fscr import FusionScoreResolver
from repro.core.index import MLNIndex
from repro.core.rsc import ReliabilityScoreCleaner
from repro.dataset.sample import sample_hospital_clean_table
from repro.dataset.table import Table


@pytest.fixture
def clean_lookup(sample_clean_table):
    return lambda tid: sample_clean_table.row(tid).as_dict()


def build_index(sample_table, sample_rules):
    return MLNIndex.build(sample_table, sample_rules)


# ----------------------------------------------------------------------
# AGP
# ----------------------------------------------------------------------
def test_agp_merges_doth_group_into_dothan(sample_table, sample_rules, sample_config):
    index = build_index(sample_table, sample_rules)
    agp = AbnormalGroupProcessor(sample_config)
    outcome = agp.process_block(index.block("r1"))
    merge_targets = {m.abnormal_key: m.target_key for m in outcome.merges}
    assert merge_targets[("DOTH",)] == ("DOTHAN",)
    assert ("DOTH",) not in index.block("r1").groups


def test_agp_detects_expected_abnormal_groups(sample_table, sample_rules, sample_config):
    """With τ = 1 the sample has abnormal groups G12, G22 and G31."""
    index = build_index(sample_table, sample_rules)
    agp = AbnormalGroupProcessor(sample_config)
    outcome = agp.process_index(index.block_list)
    abnormal_keys = {merge.abnormal_key for merge in outcome.merges}
    assert ("DOTH",) in abnormal_keys  # G12
    assert ("2567638410",) in abnormal_keys  # G22
    assert ("ELIZA", "DOTHAN") in abnormal_keys  # G31
    assert outcome.detected_abnormal_groups == 3


def test_agp_threshold_zero_detects_nothing(sample_table, sample_rules):
    index = build_index(sample_table, sample_rules)
    agp = AbnormalGroupProcessor(MLNCleanConfig(abnormal_threshold=0))
    outcome = agp.process_index(index.block_list)
    assert outcome.detected_abnormal_groups == 0
    assert outcome.merges == []


def test_agp_large_threshold_leaves_groups_without_target(sample_table, sample_rules):
    """When every group is abnormal there is no normal group to merge into."""
    index = build_index(sample_table, sample_rules)
    agp = AbnormalGroupProcessor(MLNCleanConfig(abnormal_threshold=10))
    outcome = agp.process_index(index.block_list)
    assert outcome.skipped_without_target == outcome.detected_abnormal_groups
    assert outcome.merges == []


def test_agp_instrumentation_counts(sample_table, sample_rules, sample_config, clean_lookup):
    index = build_index(sample_table, sample_rules)
    agp = AbnormalGroupProcessor(sample_config)
    outcome = agp.process_index(index.block_list, clean_lookup)
    assert outcome.counts.detected_abnormal_groups == 3
    assert outcome.counts.correctly_merged_groups >= 2
    assert outcome.counts.real_abnormal_groups >= 2


def test_agp_is_idempotent(sample_table, sample_rules, sample_config):
    index = build_index(sample_table, sample_rules)
    agp = AbnormalGroupProcessor(sample_config)
    agp.process_index(index.block_list)
    second = agp.process_index(index.block_list)
    assert second.merges == []


# ----------------------------------------------------------------------
# RSC
# ----------------------------------------------------------------------
def test_rsc_example2_winner(sample_table, sample_rules, sample_config):
    """In group G13 the γ {BOAZ, AL} (support 2) beats {BOAZ, AK}."""
    index = build_index(sample_table, sample_rules)
    block = index.block("r1")
    rsc = ReliabilityScoreCleaner(sample_config)
    rsc.learn_block_weights(block)
    group = block.groups[("BOAZ",)]
    scores = rsc.reliability_scores(group)
    winner = max(group.gammas, key=lambda piece: scores[piece])
    assert winner.result_values == ("AL",)


def test_rsc_leaves_single_gamma_per_group(sample_table, sample_rules, sample_config):
    index = build_index(sample_table, sample_rules)
    AbnormalGroupProcessor(sample_config).process_index(index.block_list)
    ReliabilityScoreCleaner(sample_config).clean_index(index.block_list)
    for block in index.block_list:
        for group in block.group_list:
            assert group.is_resolved()
            assert group.size == 1


def test_rsc_preserves_tuple_coverage(sample_table, sample_rules, sample_config):
    index = build_index(sample_table, sample_rules)
    AbnormalGroupProcessor(sample_config).process_index(index.block_list)
    ReliabilityScoreCleaner(sample_config).clean_index(index.block_list)
    block = index.block("r1")
    covered = sorted(tid for group in block.group_list for tid in group.tids)
    assert covered == sample_table.tids


def test_rsc_skips_resolved_groups(sample_table, sample_rules, sample_config):
    index = build_index(sample_table, sample_rules)
    AbnormalGroupProcessor(sample_config).process_index(index.block_list)
    outcome = ReliabilityScoreCleaner(sample_config).clean_index(index.block_list)
    assert outcome.skipped_groups >= 1
    assert outcome.cleaned_groups >= 1


def test_rsc_instrumentation(sample_table, sample_rules, sample_config, clean_lookup):
    index = build_index(sample_table, sample_rules)
    AbnormalGroupProcessor(sample_config).process_index(index.block_list, clean_lookup)
    outcome = ReliabilityScoreCleaner(sample_config).clean_index(
        index.block_list, clean_lookup
    )
    assert outcome.counts.repaired_gammas > 0
    assert outcome.counts.correctly_repaired_gammas > 0
    assert (
        outcome.counts.correctly_repaired_gammas <= outcome.counts.repaired_gammas
    )


def test_rsc_relearn_flag(sample_table, sample_rules, sample_config):
    index = build_index(sample_table, sample_rules)
    block = index.block("r1")
    for piece in block.pieces:
        piece.weight = 5.0
    ReliabilityScoreCleaner(sample_config).clean_block(block, relearn_weights=False)
    # weights were not overwritten by the learner
    assert all(piece.weight == 5.0 for piece in block.pieces)


# ----------------------------------------------------------------------
# FSCR + dedup
# ----------------------------------------------------------------------
def stage_one(sample_table, sample_rules, sample_config):
    index = MLNIndex.build(sample_table, sample_rules)
    AbnormalGroupProcessor(sample_config).process_index(index.block_list)
    ReliabilityScoreCleaner(sample_config).clean_index(index.block_list)
    return index


def test_fscr_example3_tuple_t3(sample_table, sample_rules, sample_config):
    index = stage_one(sample_table, sample_rules, sample_config)
    outcome = FusionScoreResolver(sample_config).resolve(sample_table, index.block_list)
    repaired_t3 = outcome.repaired.row(2).as_dict()
    assert repaired_t3 == {
        "HN": "ELIZA",
        "CT": "BOAZ",
        "ST": "AL",
        "PN": "2567688400",
    }


def test_fscr_output_has_no_violations(sample_table, sample_rules, sample_config):
    from repro.constraints.violations import is_consistent

    index = stage_one(sample_table, sample_rules, sample_config)
    outcome = FusionScoreResolver(sample_config).resolve(sample_table, index.block_list)
    assert is_consistent(outcome.repaired, sample_rules)


def test_fscr_matches_paper_clean_table(sample_table, sample_rules, sample_config):
    index = stage_one(sample_table, sample_rules, sample_config)
    outcome = FusionScoreResolver(sample_config).resolve(sample_table, index.block_list)
    assert outcome.repaired.equals(sample_hospital_clean_table())


def test_fscr_keeps_all_tuples(sample_table, sample_rules, sample_config):
    index = stage_one(sample_table, sample_rules, sample_config)
    outcome = FusionScoreResolver(sample_config).resolve(sample_table, index.block_list)
    assert sorted(outcome.repaired.tids) == sample_table.tids


def test_fscr_fusions_have_positive_scores(sample_table, sample_rules, sample_config):
    index = stage_one(sample_table, sample_rules, sample_config)
    outcome = FusionScoreResolver(sample_config).resolve(sample_table, index.block_list)
    assert outcome.fusions
    assert all(fusion.f_score > 0 for fusion in outcome.fusions.values())


def test_dedup_removes_exact_duplicates():
    table = Table.from_records(
        [{"A": "x", "B": "1"}, {"A": "x", "B": "1"}, {"A": "y", "B": "2"}]
    )
    result = remove_duplicates(table)
    assert result.removed_tids == [1]
    assert len(result.deduplicated) == 2
    assert result.duplicate_classes == [[0, 1]]


def test_dedup_keeps_lowest_tid(sample_table, sample_rules, sample_config):
    index = stage_one(sample_table, sample_rules, sample_config)
    outcome = FusionScoreResolver(sample_config).resolve(sample_table, index.block_list)
    result = remove_duplicates(outcome.repaired)
    assert sorted(result.deduplicated.tids) == [0, 2]
    assert result.removed_count == 4


def test_dedup_no_duplicates_noop():
    table = Table.from_records([{"A": "x"}, {"A": "y"}])
    result = remove_duplicates(table)
    assert result.removed_count == 0
    assert result.deduplicated.equals(table)
