"""Smoke tests: every example script runs end to end on a small workload."""

import runpy
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, argv: list[str]):
    monkeypatch.setattr(sys, "argv", [script, *argv])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "quickstart.py", [])
    assert "CleaningSession(cleaner=mlnclean, backend=batch" in output
    assert "Dirty input" in output
    assert "Final clean table" in output
    # the typo DOTH disappears and the duplicates collapse
    assert "DOTH " not in output.split("Final clean table")[1]


def test_hospital_cleaning_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "hospital_cleaning.py", ["400"])
    assert "Running MLNClean" in output
    assert "HoloClean" in output
    assert "Higher F1 on this run" in output


def test_car_error_types_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "car_error_types.py", ["300"])
    assert "fig07" in output
    assert "All-typo setting" in output


def test_cleaners_tour_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "cleaners_tour.py", ["48"])
    assert "registered cleaners" in output
    assert "holoclean" in output and "factor-graph" in output
    assert "artifact JSON round-trip bit-identical: True" in output


def test_distributed_tpch_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "distributed_tpch.py", ["400"])
    assert "partition sizes" in output
    assert "workers" in output


def test_streaming_clean_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "streaming_clean.py", ["200", "50"])
    assert "Streaming 200 HAI tuples" in output
    assert "batches applied: 4" in output
    assert "late correction" in output
    assert "matches batch MLNClean: True" in output


def test_backends_tour_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "backends_tour.py", ["48"])
    assert "batch" in output and "distributed" in output and "streaming" in output
    assert "batch == streaming: True" in output
    assert "batch == distributed: True" in output


def test_service_quickstart_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "service_quickstart.py", ["36", "6"])
    assert "service listening on" in output
    assert "byte-identical to the batch report: 6/6" in output
    assert "late correction applied" in output
    assert "distance cache hit rate" in output


def test_cluster_quickstart_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "cluster_quickstart.py", ["32", "8"])
    assert "cluster up: router + 2 workers" in output
    assert "kill -9 the stream's owner" in output
    assert "recovered signature matches the never-killed engine: True" in output
    assert "live workers = " in output


def test_tracing_tour_example(monkeypatch, capsys, tmp_path):
    trace_out = tmp_path / "trace.json"
    output = run_example(
        monkeypatch, capsys, "tracing_tour.py", ["48", str(trace_out)]
    )
    assert "span tree of the batch run" in output
    assert "pipeline.clean" in output and "stage:agp" in output
    assert "connected trees: 1" in output
    assert "masked report signature identical with tracing off: True" in output
    assert "repro_stage_seconds_total" in output
    assert trace_out.is_file()


def test_detectors_tour_example(monkeypatch, capsys):
    output = run_example(monkeypatch, capsys, "detectors_tour.py", ["120"])
    assert "registered detectors" in output
    assert "violation" in output and "perfect" in output
    assert "hospital_sample.dc: 2 denial constraints" in output
    assert "all-cells detection byte-identical to no detection: True" in output
    assert "raw distance evaluations: full=" in output


def test_examples_directory_contains_expected_scripts():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "detectors_tour.py",
        "hospital_cleaning.py",
        "car_error_types.py",
        "distributed_tpch.py",
        "streaming_clean.py",
        "backends_tour.py",
        "service_quickstart.py",
        "cluster_quickstart.py",
        "tracing_tour.py",
    } <= names
