"""Integration tests for the end-to-end MLNClean pipeline."""

import pytest

from repro import MLNClean, MLNCleanConfig
from repro.constraints.violations import is_consistent
from repro.dataset.sample import sample_hospital_clean_table


def test_pipeline_reproduces_paper_example(
    sample_table, sample_rules, sample_ground_truth, sample_config
):
    report = MLNClean(sample_config).clean(sample_table, sample_rules, sample_ground_truth)
    # Every repaired tuple matches the paper's intended clean values.
    assert report.repaired.equals(sample_hospital_clean_table())
    # t1/t2 and t3..t6 collapse to one representative each.
    assert sorted(report.cleaned.tids) == [0, 2]
    assert report.accuracy is not None
    assert report.accuracy.f1 == pytest.approx(1.0)


def test_pipeline_output_consistent_with_rules(sample_table, sample_rules, sample_config):
    report = MLNClean(sample_config).clean(sample_table, sample_rules)
    assert is_consistent(report.repaired, sample_rules)
    assert is_consistent(report.cleaned, sample_rules)


def test_pipeline_requires_rules(sample_table):
    with pytest.raises(ValueError):
        MLNClean().clean(sample_table, [])


def test_pipeline_without_ground_truth_has_no_accuracy(sample_table, sample_rules):
    report = MLNClean().clean(sample_table, sample_rules)
    assert report.accuracy is None
    assert report.f1 == 0.0


def test_pipeline_does_not_mutate_input(sample_table, sample_rules, sample_config):
    snapshot = sample_table.copy()
    MLNClean(sample_config).clean(sample_table, sample_rules)
    assert sample_table.equals(snapshot)


def test_pipeline_timings_cover_all_phases(sample_table, sample_rules, sample_config):
    report = MLNClean(sample_config).clean(sample_table, sample_rules)
    assert {"index", "agp", "rsc", "fscr", "dedup"} <= set(report.timings.phases)
    assert report.runtime > 0


def test_pipeline_dedup_can_be_disabled(sample_table, sample_rules):
    config = MLNCleanConfig(abnormal_threshold=1, remove_duplicates=False)
    report = MLNClean(config).clean(sample_table, sample_rules)
    assert len(report.cleaned) == len(sample_table)
    assert report.dedup is None


def test_pipeline_summary_and_describe(
    sample_table, sample_rules, sample_ground_truth, sample_config
):
    report = MLNClean(sample_config).clean(sample_table, sample_rules, sample_ground_truth)
    summary = report.summary()
    assert summary["f1"] == pytest.approx(1.0)
    assert summary["tuples_in"] == 6.0
    text = report.describe()
    assert "accuracy" in text
    assert "duplicates removed" in text


def test_pipeline_clean_table_convenience(sample_table, sample_rules):
    cleaned = MLNClean(MLNCleanConfig(abnormal_threshold=1)).clean_table(
        sample_table, sample_rules
    )
    assert len(cleaned) <= len(sample_table)


def test_pipeline_on_hai_workload(hai_instance):
    """MLNClean fixes a substantial share of the injected errors on HAI."""
    from repro.constraints.violations import detect_violations

    config = MLNCleanConfig.for_dataset("hai")
    report = MLNClean(config).clean(
        hai_instance.dirty, hai_instance.rules, hai_instance.ground_truth
    )
    assert report.accuracy is not None
    assert report.accuracy.f1 > 0.6
    # schema-level violations drop sharply compared to the dirty input
    before = len(detect_violations(hai_instance.dirty, hai_instance.rules))
    after = len(detect_violations(report.repaired, hai_instance.rules))
    assert after < before * 0.2


def test_pipeline_on_car_workload(car_instance):
    config = MLNCleanConfig.for_dataset("car")
    report = MLNClean(config).clean(
        car_instance.dirty, car_instance.rules, car_instance.ground_truth
    )
    assert report.accuracy is not None
    assert report.accuracy.f1 > 0.3
    assert report.accuracy.recall > 0.3


def test_pipeline_clean_input_stays_clean(hai_workload):
    """Cleaning an already-clean table must not corrupt it."""
    config = MLNCleanConfig.for_dataset("hai")
    clean = hai_workload.clean
    report = MLNClean(config).clean(clean, hai_workload.rules)
    changed = clean.diff_cells(report.repaired)
    assert len(changed) == 0
