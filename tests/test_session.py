"""The unified session API: builder, loaders, registries, backends, shims."""

import pytest

import repro
from repro import CleaningSession, MLNClean, MLNCleanConfig, StreamingMLNClean, Table
from repro.constraints.rules import FunctionalDependency
from repro.core.pipeline import MLNClean as CoreMLNClean
from repro.core.report import CleaningReport
from repro.core.stages import DEFAULT_STAGES, available_stages, register_stage
from repro.dataset.sample import sample_hospital_rules, sample_hospital_table
from repro.distributed.driver import DistributedReport
from repro.errors.injector import ErrorSpec
from repro.session import (
    BatchBackend,
    CleaningRequest,
    StreamingBackend,
    available_backends,
    get_backend,
    load_rules,
    load_table,
    register_backend,
)
from repro.session.session import Session, SessionBuilder
from repro.streaming.cleaner import StreamingMLNClean as CoreStreamingMLNClean
from repro.workloads import get_workload_generator, recommended_config


def sample_session(backend="batch", **options):
    session = (
        CleaningSession.builder()
        .with_rules(sample_hospital_rules())
        .with_config(abnormal_threshold=1)
        .with_backend(backend, **options)
        .build()
    )
    session.load_table(sample_hospital_table())
    return session


def hospital_sample_instance(tuples=48, seed=42):
    workload = get_workload_generator("hospital-sample", tuples=tuples).build()
    return workload.make_instance(ErrorSpec(error_rate=0.05, seed=seed))


# ----------------------------------------------------------------------
# builder and loaders
# ----------------------------------------------------------------------
def test_builder_constructs_configured_session():
    session = (
        CleaningSession.builder()
        .with_rules("CT -> ST", "HN, PN -> CT")
        .with_config(abnormal_threshold=3, distance_metric="cosine")
        .with_backend("streaming", batch_size=7)
        .build()
    )
    assert [rule.name for rule in session.rules] == ["r1", "r2"]
    assert session.config.abnormal_threshold == 3
    assert session.config.distance_metric == "cosine"
    assert session.backend.name == "streaming"
    assert session.backend.batch_size == 7
    assert "backend=streaming" in session.describe()


def test_builder_session_alias_and_staticmethod():
    assert Session is CleaningSession
    assert isinstance(Session.builder(), SessionBuilder)


def test_builder_config_instance_with_overrides():
    base = MLNCleanConfig(abnormal_threshold=10)
    session = (
        CleaningSession.builder()
        .with_config(base, distance_metric="cosine")
        .build()
    )
    assert session.config.abnormal_threshold == 10
    assert session.config.distance_metric == "cosine"


def test_builder_for_workload_uses_registry_config():
    session = CleaningSession.builder().for_workload("hai").build()
    assert session.config.abnormal_threshold == 10


def test_load_rules_from_strings_rules_and_mixed():
    fd = FunctionalDependency(["A"], ["B"], name="custom")
    assert load_rules(fd) == [fd]
    parsed = load_rules("A -> B")
    assert parsed[0].name == "r1" and parsed[0].kind == "FD"
    mixed = load_rules([fd, "A -> C"])
    assert mixed[0].name == "custom"
    assert mixed[1].name == "r2"


def test_load_rules_from_file(tmp_path):
    path = tmp_path / "hospital.rules"
    path.write_text("# Table-4 constraints\nCT -> ST\n\nHN, PN -> CT\n")
    rules = load_rules(path)
    assert [rule.name for rule in rules] == ["r1", "r2"]
    assert rules[1].reason_attributes == ["HN", "PN"]
    with pytest.raises(FileNotFoundError):
        load_rules(tmp_path / "missing.rules")


def test_rule_names_never_collide_silently():
    # auto-assigned names skip over explicitly named rules (the MLN index
    # keys blocks by rule name, so a collision would drop a constraint)
    named = FunctionalDependency(["A"], ["B"], name="r2")
    session = CleaningSession(rules=[named])
    session.load_rules("A -> C")
    assert [rule.name for rule in session.rules] == ["r2", "r3"]

    builder = CleaningSession.builder().with_rules(named, "A -> C")
    assert [rule.name for rule in builder.build().rules] == ["r2", "r3"]

    # explicitly named duplicates are rejected loudly
    with pytest.raises(ValueError, match="duplicate rule name"):
        session.load_rules(FunctionalDependency(["A"], ["D"], name="r2"))

    # the guard also covers module-level load_rules (and therefore the
    # run(rules=...) path, which routes through it)
    guarded = load_rules([named, "A -> C"])
    assert [rule.name for rule in guarded] == ["r2", "r3"]
    with pytest.raises(ValueError, match="duplicate rule name"):
        load_rules([named, FunctionalDependency(["A"], ["D"], name="r2")])


def test_load_rules_file_honours_explicit_names(tmp_path):
    path = tmp_path / "named.rules"
    path.write_text(
        "# named rules round-trip\n"
        "city_state: CT -> ST\n"
        "HN, PN -> CT\n"
        "phones: DC: PN(t1)=PN(t2) & ST(t1)!=ST(t2)\n"
        "DC: CT(t1)=CT(t2) & HN(t1)!=HN(t2)\n"
    )
    rules = load_rules(path)
    assert [rule.name for rule in rules] == ["city_state", "r2", "phones", "r4"]
    assert rules[2].kind == "DC"
    assert rules[3].kind == "DC"  # a bare "DC:" line is not a name prefix


def test_load_rules_file_rejects_duplicate_names(tmp_path):
    path = tmp_path / "dup.rules"
    path.write_text("r1: CT -> ST\nr1: HN, PN -> CT\n")
    with pytest.raises(ValueError, match="duplicate rule name 'r1'") as excinfo:
        load_rules(path)
    # the error names the offending file and explains the constraint
    assert "dup.rules" in str(excinfo.value)
    assert "distinct name" in str(excinfo.value)


def test_unknown_name_errors_list_registered_names():
    """One shared unknown_name() helper backs every registry lookup error."""
    from repro.core.stages import get_stage
    from repro.session.cleaners import get_cleaner
    from repro.workloads.registry import get_workload_generator

    cases = (
        (lambda: get_backend("nope"), "backend", "'batch'"),
        (lambda: get_stage("nope", MLNCleanConfig()), "stage", "'agp'"),
        (lambda: get_cleaner("nope"), "cleaner", "'mlnclean'"),
        (lambda: get_workload_generator("nope"), "workload", "'hai'"),
    )
    for lookup, kind, expected_name in cases:
        with pytest.raises(KeyError) as excinfo:
            lookup()
        message = str(excinfo.value)
        assert f"unknown {kind} 'nope'" in message.replace('"', "'"), kind
        assert f"registered {kind}s:" in message, kind
        assert expected_name in message, kind


def test_session_load_rules_accumulates_and_replaces():
    session = CleaningSession()
    session.load_rules("A -> B")
    session.load_rules("A -> C")
    assert [rule.name for rule in session.rules] == ["r1", "r2"]
    session.load_rules("B -> C", replace=True)
    assert [rule.name for rule in session.rules] == ["r1"]


def test_load_table_passthrough_records_and_csv(tmp_path):
    table = sample_hospital_table()
    assert load_table(table) is table
    with pytest.raises(ValueError):
        load_table(table, name="renamed")

    records = [{"A": "1", "B": "x"}, {"A": "2", "B": "y"}]
    from_records = load_table(records, name="tiny")
    assert from_records.name == "tiny"
    assert len(from_records) == 2

    csv_path = tmp_path / "tiny.csv"
    csv_path.write_text("A,B\n1,x\n2,y\n")
    from_csv = load_table(csv_path)
    assert from_csv.attributes == ["A", "B"]
    assert len(from_csv) == 2


def test_run_requires_table_and_rules():
    with pytest.raises(ValueError, match="no table"):
        CleaningSession(rules=sample_hospital_rules()).run()
    session = CleaningSession()
    session.load_table(sample_hospital_table())
    with pytest.raises(ValueError, match="no integrity constraints"):
        session.run()


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
def test_available_backends_lists_builtins():
    assert {"batch", "distributed", "streaming"} <= set(available_backends())


def test_unknown_backend_raises():
    with pytest.raises(KeyError, match="unknown backend"):
        get_backend("spark")


def test_batch_backend_matches_direct_mlnclean():
    session = sample_session()
    via_session = session.run()
    direct = MLNClean(MLNCleanConfig(abnormal_threshold=1)).clean(
        sample_hospital_table(), sample_hospital_rules()
    )
    assert via_session.cleaned.equals(direct.cleaned)
    assert via_session.repaired.equals(direct.repaired)
    assert via_session.backend == "batch"


def test_session_clean_alias_and_last_report():
    session = sample_session()
    report = session.clean()
    assert isinstance(report, CleaningReport)
    assert session.last_report is report


def test_distributed_backend_returns_unified_report():
    session = sample_session("distributed", workers=2)
    report = session.run()
    assert report.backend == "distributed"
    assert isinstance(report.details, DistributedReport)
    assert report.details.workers == 2
    assert "workers" in report.timings.phases
    assert len(report.cleaned) >= 1


def test_streaming_backend_exposes_engine():
    session = sample_session("streaming", batch_size=2)
    report = session.run()
    assert report.backend == "streaming"
    engine = session.backend.engine
    assert isinstance(engine, CoreStreamingMLNClean)
    assert engine.batches_applied == 3
    assert engine.cleaned.equals(report.cleaned)


def test_custom_backend_registration():
    class EchoBackend:
        name = "echo"

        def run(self, request):
            return BatchBackend().run(request)

    register_backend("echo", EchoBackend)
    register_backend("echo", EchoBackend)  # same factory: no-op
    session = sample_session("echo")
    assert session.run().cleaned.equals(sample_session().run().cleaned)
    with pytest.raises(ValueError, match="already registered"):
        register_backend("echo", BatchBackend)


def test_backends_reject_custom_stage_orders():
    for backend in ("distributed", "streaming"):
        session = sample_session(backend)
        session.stages = ["fscr"]
        with pytest.raises(ValueError, match="batch-only"):
            session.run()


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
def test_default_stages_registered():
    assert list(DEFAULT_STAGES) == ["agp", "rsc", "fscr", "dedup"]
    assert set(DEFAULT_STAGES) <= set(available_stages())


def test_disabling_dedup_stage_keeps_duplicates():
    session = sample_session()
    session.stages = ["agp", "rsc", "fscr"]
    report = session.run()
    assert report.dedup is None
    assert report.cleaned.equals(report.repaired)
    full = sample_session().run()
    assert len(report.cleaned) > len(full.cleaned)
    # the repair itself is unchanged — only duplicate elimination is skipped
    assert report.repaired.equals(full.repaired)


def test_disabling_agp_stage_still_cleans():
    session = sample_session()
    session.stages = ["rsc", "fscr", "dedup"]
    report = session.run()
    assert report.agp is None
    assert report.rsc is not None
    assert len(report.cleaned) >= 1


def test_custom_stage_registration_and_execution():
    calls = []

    class ProbeStage:
        name = "probe"

        def __init__(self, config):
            self.config = config

        def run(self, context):
            calls.append(len(context.blocks))
            context.outcomes["probe"] = "ran"

    register_stage("probe", ProbeStage)
    session = sample_session()
    session.stages = ["agp", "probe", "rsc", "fscr", "dedup"]
    report = session.run()
    assert calls == [len(sample_hospital_rules())]
    assert "probe" in report.timings.phases
    with pytest.raises(ValueError, match="already registered"):
        register_stage("probe", BatchBackend)


def test_dedup_before_fscr_is_rejected():
    # running dedup before fusion would silently emit a stale dedup of the
    # dirty table as the final result; the stage refuses instead
    session = sample_session()
    session.stages = ["agp", "rsc", "dedup", "fscr"]
    with pytest.raises(ValueError, match="repaired table"):
        session.run()


def test_unknown_stage_raises():
    session = sample_session()
    session.stages = ["agp", "nope"]
    with pytest.raises(KeyError, match="unknown stage"):
        session.run()


# ----------------------------------------------------------------------
# cross-backend equivalence (the acceptance test of the redesign)
# ----------------------------------------------------------------------
def test_cross_backend_equivalence_on_hospital_sample():
    """Batch, distributed (p=2) and streaming full replay agree exactly."""
    instance = hospital_sample_instance()
    reports = {}
    for backend, options in (
        ("batch", {}),
        ("distributed", {"workers": 2}),
        ("streaming", {"batch_size": 10}),
    ):
        session = (
            CleaningSession.builder()
            .with_rules(instance.rules)
            .for_workload("hospital-sample")
            .with_backend(backend, **options)
            .with_table(instance.dirty.copy())
            .with_ground_truth(instance.ground_truth)
            .build()
        )
        reports[backend] = session.run()

    batch = reports["batch"]
    assert batch.accuracy is not None and batch.f1 > 0.0
    for backend in ("distributed", "streaming"):
        report = reports[backend]
        assert report.cleaned.equals(batch.cleaned), backend
        assert report.f1 == pytest.approx(batch.f1), backend
        assert report.backend == backend


# ----------------------------------------------------------------------
# legacy shims
# ----------------------------------------------------------------------
def test_legacy_imports_still_work():
    assert repro.MLNClean is CoreMLNClean
    assert repro.StreamingMLNClean is CoreStreamingMLNClean
    from repro import DistributedMLNClean  # noqa: F401 - import is the test

    report = MLNClean(MLNCleanConfig(abnormal_threshold=1)).clean(
        sample_hospital_table(), sample_hospital_rules()
    )
    assert isinstance(report, CleaningReport)


def test_shims_construct_same_objects_as_session_path():
    # the batch backend drives the very class the legacy import exposes ...
    request = CleaningRequest(
        dirty=sample_hospital_table(), rules=sample_hospital_rules()
    )
    backend_report = BatchBackend().run(request)
    legacy_report = MLNClean().clean(sample_hospital_table(), sample_hospital_rules())
    assert type(backend_report) is type(legacy_report) is CleaningReport
    assert backend_report.cleaned.equals(legacy_report.cleaned)

    # ... and the streaming backend builds the legacy StreamingMLNClean
    engine = StreamingBackend(batch_size=3).build_engine(request)
    assert isinstance(engine, StreamingMLNClean)


# ----------------------------------------------------------------------
# workload registry recommended configs
# ----------------------------------------------------------------------
def test_recommended_config_comes_from_registry():
    assert recommended_config("hai").abnormal_threshold == 10
    assert recommended_config("car").abnormal_threshold == 1
    assert recommended_config("tpch").abnormal_threshold == 2
    assert recommended_config("hospital-sample").abnormal_threshold == 1
    override = recommended_config("hai", distance_metric="cosine")
    assert override.distance_metric == "cosine"


def test_recommended_config_warns_on_unknown_workload():
    with pytest.warns(UserWarning, match="no workload registered"):
        config = recommended_config("definitely-not-registered")
    assert config == MLNCleanConfig()


def test_registered_workload_declares_its_config():
    from repro.workloads.base import WorkloadGenerator
    from repro.workloads.registry import register_workload

    class TinyGenerator(WorkloadGenerator):
        name = "tiny-tau-test"
        recommended_threshold = 33

        def rules(self):
            return sample_hospital_rules()

        def generate_clean(self) -> Table:
            return sample_hospital_table()

    register_workload("tiny-tau-test", TinyGenerator)
    assert recommended_config("tiny-tau-test").abnormal_threshold == 33
    assert MLNCleanConfig.for_dataset("tiny-tau-test").abnormal_threshold == 33
