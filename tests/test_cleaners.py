"""The Cleaner protocol: registry, baseline adapters, session integration."""

import pytest

from repro import CleaningSession, available_cleaners, get_cleaner, register_cleaner
from repro.baselines.factor_graph import FactorGraphReport
from repro.baselines.holoclean import HoloCleanBaseline, HoloCleanReport
from repro.baselines.minimal_repair import MinimalityRepairer, MinimalRepairReport
from repro.core.report import CleaningReport
from repro.dataset.sample import sample_hospital_rules, sample_hospital_table
from repro.session.backends import CleaningRequest
from repro.session.cleaners import MLNCleanCleaner, display_name


BASELINE_CLEANERS = ("holoclean", "minimal-repair", "factor-graph")


def build_session(cleaner, ground_truth=None, **options):
    builder = (
        CleaningSession.builder()
        .with_rules(sample_hospital_rules())
        .with_config(abnormal_threshold=1)
        .with_cleaner(cleaner, **options)
        .with_table(sample_hospital_table())
    )
    if ground_truth is not None:
        builder = builder.with_ground_truth(ground_truth)
    return builder.build()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_available_cleaners_lists_builtins_canonically():
    names = available_cleaners()
    assert {"mlnclean", "holoclean", "minimal-repair", "factor-graph"} <= set(names)
    # aliases collapse onto the canonical name
    assert "minimal_repair" not in names
    assert "factor_graph" not in names


def test_aliases_resolve_to_same_factory():
    assert type(get_cleaner("minimal_repair")) is type(get_cleaner("minimal-repair"))
    assert type(get_cleaner("factor_graph")) is type(get_cleaner("factor-graph"))


def test_unknown_cleaner_error_lists_registered_names():
    with pytest.raises(KeyError, match="unknown cleaner 'sparkly'") as excinfo:
        get_cleaner("sparkly")
    message = str(excinfo.value)
    assert "registered cleaners:" in message
    assert "'mlnclean'" in message and "'holoclean'" in message


def test_register_cleaner_rejects_rebinding():
    class EchoCleaner:
        name = "echo-cleaner"

        def run(self, request):
            return MLNCleanCleaner().run(request)

    register_cleaner("echo-cleaner", EchoCleaner)
    register_cleaner("echo-cleaner", EchoCleaner)  # same factory: no-op
    with pytest.raises(ValueError, match="already registered"):
        register_cleaner("echo-cleaner", MLNCleanCleaner)


# ----------------------------------------------------------------------
# the three baselines behind the one protocol
# ----------------------------------------------------------------------
def test_holoclean_via_session_matches_direct_baseline(sample_ground_truth):
    session = build_session("holoclean", sample_ground_truth)
    report = session.run()
    assert isinstance(report, CleaningReport)
    assert report.backend == "holoclean"
    assert isinstance(report.details, HoloCleanReport)

    direct = HoloCleanBaseline().clean(
        sample_hospital_table(), sample_hospital_rules(), sample_ground_truth
    )
    assert report.repaired.equals(direct.repaired)
    assert report.cleaned.equals(direct.repaired)
    assert report.f1 == pytest.approx(direct.f1)


def test_minimal_repair_via_session_matches_direct_repairer(sample_ground_truth):
    session = build_session("minimal-repair", sample_ground_truth)
    report = session.run()
    assert report.backend == "minimal-repair"
    assert isinstance(report.details, MinimalRepairReport)
    direct = MinimalityRepairer().clean(
        sample_hospital_table(), sample_hospital_rules(), sample_ground_truth
    )
    assert report.repaired.equals(direct.repaired)
    assert report.runtime > 0.0  # the adapter times the repair phase


def test_factor_graph_cleaner_repairs_only_detected_cells(sample_ground_truth):
    session = build_session("factor-graph", sample_ground_truth)
    report = session.run()
    assert report.backend == "factor-graph"
    assert isinstance(report.details, FactorGraphReport)
    assert set(report.details.repairs) <= report.details.detected_cells
    # untrained: the prior weights stay at 1.0
    assert all(weight == 1.0 for weight in report.details.weights)


def test_factor_graph_differs_from_trained_holoclean(sample_ground_truth):
    untrained = build_session("factor-graph", sample_ground_truth).run()
    trained = build_session("holoclean", sample_ground_truth).run()
    # both repair through the same graph, but only holoclean learns weights
    assert isinstance(trained.details.repairs, dict)
    assert untrained.details.weights == [1.0, 1.0, 1.0, 1.0]


# ----------------------------------------------------------------------
# cross-cleaner CleaningRequest equivalence
# ----------------------------------------------------------------------
def test_every_cleaner_accepts_the_same_request(sample_ground_truth):
    request = CleaningRequest(
        dirty=sample_hospital_table(),
        rules=sample_hospital_rules(),
        ground_truth=sample_ground_truth,
    )
    for name in ("mlnclean", *BASELINE_CLEANERS):
        report = get_cleaner(name).run(request)
        assert isinstance(report, CleaningReport), name
        assert report.backend is not None, name
        assert report.accuracy is not None, name
        # every repaired table keeps the dirty table's tuples
        assert set(report.repaired.tids) == set(request.dirty.tids), name
        # dirty input is never mutated by any cleaner
        assert request.dirty.equals(sample_hospital_table()), name


def test_baseline_cleaners_reject_custom_stage_orders(sample_ground_truth):
    request = CleaningRequest(
        dirty=sample_hospital_table(),
        rules=sample_hospital_rules(),
        ground_truth=sample_ground_truth,
        stages=["fscr"],
    )
    for name in BASELINE_CLEANERS:
        with pytest.raises(ValueError, match="mlnclean cleaner only"):
            get_cleaner(name).run(request)


# ----------------------------------------------------------------------
# session/builder integration
# ----------------------------------------------------------------------
def test_default_cleaner_is_mlnclean_on_batch():
    session = (
        CleaningSession.builder().with_rules(sample_hospital_rules()).build()
    )
    assert session.cleaner.name == "mlnclean"
    assert session.backend is not None and session.backend.name == "batch"
    assert "cleaner=mlnclean" in session.describe()


def test_with_cleaner_mlnclean_composes_with_backend():
    session = (
        CleaningSession.builder()
        .with_rules(sample_hospital_rules())
        .with_cleaner("mlnclean")
        .with_backend("distributed", workers=2)
        .build()
    )
    assert session.backend.name == "distributed"
    assert session.backend.workers == 2
    assert display_name(session.cleaner) == "MLNClean[distributed]"


def test_baseline_cleaner_has_no_backend(sample_ground_truth):
    session = build_session("holoclean", sample_ground_truth)
    assert session.backend is None
    assert "backend=" not in session.describe()
    assert "cleaner=holoclean" in session.describe()


def test_with_backend_conflicts_with_baseline_cleaner():
    with pytest.raises(ValueError, match="'mlnclean' cleaner only"):
        (
            CleaningSession.builder()
            .with_cleaner("holoclean")
            .with_backend("distributed", workers=2)
            .build()
        )


def test_backend_selected_twice_is_rejected():
    with pytest.raises(ValueError, match="selected twice"):
        (
            CleaningSession.builder()
            .with_cleaner("mlnclean", backend="streaming")
            .with_backend("distributed")
            .build()
        )


def test_session_constructor_rejects_cleaner_plus_backend():
    with pytest.raises(ValueError, match="either cleaner or backend"):
        CleaningSession(backend="distributed", cleaner="mlnclean")


def test_session_for_instance_forwards_mlnclean_cleaner_options(
    sample_ground_truth,
):
    from repro.errors.injector import ErrorSpec
    from repro.experiments.harness import session_for_instance
    from repro.workloads import get_workload_generator

    workload = get_workload_generator("hospital-sample", tuples=24).build()
    instance = workload.make_instance(ErrorSpec(error_rate=0.05, seed=42))
    session = session_for_instance(
        instance,
        cleaner="mlnclean",
        cleaner_options={"backend": "distributed", "workers": 2},
    )
    assert session.backend.name == "distributed"
    assert session.backend.workers == 2


def test_session_constructor_accepts_cleaner_name(sample_ground_truth):
    session = CleaningSession(
        rules=sample_hospital_rules(),
        table=sample_hospital_table(),
        ground_truth=sample_ground_truth,
        cleaner="minimal-repair",
    )
    report = session.run()
    assert report.backend == "minimal-repair"


def test_display_names():
    assert display_name(get_cleaner("mlnclean")) == "MLNClean"
    assert display_name(get_cleaner("holoclean")) == "HoloClean"
    assert display_name(get_cleaner("minimal-repair")) == "MinimalRepair"
    assert display_name(get_cleaner("factor-graph")) == "FactorGraph"
    assert (
        display_name(get_cleaner("mlnclean", backend="streaming"))
        == "MLNClean[streaming]"
    )
