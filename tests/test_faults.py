"""Tests for seeded fault injection and the hardening it drives.

The chaos contract (this PR's acceptance criterion): under a *recoverable*
seeded fault schedule — WAL fsync failures, dropped acknowledgements,
stalled heartbeats — a retrying client finishes every workload with a
masked ``report_signature`` byte-identical to a fault-free run, while
*unrecoverable* damage (mid-log corruption) still fails loudly.  The
building blocks are exercised here in-process: the plan/injector machinery
itself, the WAL degraded mode with its probe recovery, exactly-once
idempotent delta application, end-to-end request deadlines, the router's
per-worker circuit breaker, poison-job quarantine, the heartbeat loop's
survival of transient router errors, and the intra-cluster HTTP client's
error paths.  ``benchmarks/chaos_smoke.py`` drives the same schedule
against real subprocesses on all four workloads.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import http.server
import json
import socket
import threading
import time

import pytest

from repro.cluster import (
    CircuitBreaker,
    DeltaLog,
    RouterConfig,
    RouterService,
    SnapshotError,
    WalRecord,
    WorkerConfig,
    WorkerService,
    load_snapshot_document,
    write_snapshot,
)
from repro.cluster.breaker import STATE_VALUES
from repro.cluster.httpclient import http_request
from repro.cluster.launch import spawn_worker, wait_until_healthy
from repro.cluster.worker import WorkerHTTPServer
from repro.experiments.harness import prepare_instance
from repro.faults import (
    INJECTOR,
    PLAN_ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    activate_from_env,
)
from repro.service import ServiceClient, ServiceError, ServiceServer, report_signature
from repro.service.client import _parse_retry_after
from repro.service.codec import canonical_json, decode_delta_request
from repro.service.http import _failure_status, _parse_deadline_header
from repro.service.service import CleaningService, ServiceConfig
from repro.streaming import DeltaBatch, Insert, StreamingMLNClean
from repro.streaming.window import SlidingWindow
from repro.workloads.registry import get_workload_generator, recommended_config

#: stream shape shared with tests/test_cluster.py (kept local on purpose:
#: test modules must stay importable on their own)
WORKLOADS = {
    "hospital-sample": {"kind": "sliding", "size": 24},
    "hai": None,
}
TUPLES = 32
BATCH = 8


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def workload_batches(workload: str, tuples: int = TUPLES):
    instance = prepare_instance(workload, tuples=tuples)
    generator = get_workload_generator(workload, tuples=tuples, seed=7)
    schema = instance.dirty.attributes
    rows = list(instance.dirty.rows)
    batches = [
        [Insert(values={a: r[a] for a in schema}, tid=r.tid) for r in rows[i:i + BATCH]]
        for i in range(0, len(rows), BATCH)
    ]
    return schema, generator.rules(), recommended_config(workload), batches


def reference_engine(workload: str, upto: int = None):
    schema, rules, config, batches = workload_batches(workload)
    window_spec = WORKLOADS[workload]
    window = SlidingWindow(window_spec["size"]) if window_spec else None
    engine = StreamingMLNClean(rules, schema=schema, config=config, window=window)
    for deltas in batches[:upto]:
        engine.apply_batch(DeltaBatch(list(deltas)))
    return engine


def wire_deltas(deltas) -> list:
    return [{"op": "insert", "values": dict(d.values), "tid": d.tid} for d in deltas]


def delta_payload(workload: str, deltas, key=None) -> dict:
    payload = {"workload": workload, "seed": 7, "deltas": wire_deltas(deltas),
               "include_table": False}
    if WORKLOADS[workload]:
        payload["window"] = dict(WORKLOADS[workload])
    if key is not None:
        payload["idempotency_key"] = key
    return payload


def engine_fingerprint_state(engine) -> tuple:
    from repro.core.report import table_to_json_dict

    return (
        report_signature(engine.report()),
        canonical_json(table_to_json_dict(engine.cleaned)),
    )


@pytest.fixture(autouse=True)
def _pristine_injector():
    """No plan leaks into (or out of) any test in this module."""
    INJECTOR.deactivate()
    yield
    INJECTOR.deactivate()


# ----------------------------------------------------------------------
# fault plans: pure data, byte-stable round trips, loud validation
# ----------------------------------------------------------------------
class TestFaultPlan:
    def sample_plan(self) -> FaultPlan:
        return FaultPlan(
            seed=42,
            rules=(
                FaultRule(point="wal.fsync", action="fail", match={"shard": "ab"}, nth=3),
                FaultRule(point="httpclient.request", action="drop",
                          match={"path": "/deltas"}, nth=2, times=2),
                FaultRule(point="worker.heartbeat", action="stall", times=None),
                FaultRule(point="wal.append", action="delay", delay_s=0.5, every=4),
                FaultRule(point="snapshot.write", action="corrupt", probability=0.5),
            ),
        )

    def test_json_round_trip_is_byte_identical(self):
        plan = self.sample_plan()
        text = plan.to_json()
        restored = FaultPlan.from_json(text)
        assert restored == plan
        assert restored.to_json() == text

    def test_defaults_are_omitted_from_the_wire_form(self):
        rule = FaultRule(point="wal.fsync")
        assert rule.to_dict() == {"point": "wal.fsync", "action": "fail"}
        assert FaultRule.from_dict(rule.to_dict()) == rule

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"point": ""},
            {"point": "p", "action": "explode"},
            {"point": "p", "match": ["not", "a", "dict"]},
            {"point": "p", "nth": 0},
            {"point": "p", "times": 0},
            {"point": "p", "every": 0},
            {"point": "p", "probability": 1.5},
            {"point": "p", "probability": -0.1},
            {"point": "p", "delay_s": -1.0},
        ],
    )
    def test_validation_rejects_garbage(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-rule fields"):
            FaultRule.from_dict({"point": "p", "acton": "fail"})

    @pytest.mark.parametrize(
        "text",
        ["{not json", "[]", '{"rules": "nope"}', '{"rules": ["nope"]}'],
    )
    def test_from_json_rejects_malformed_plans(self, text):
        with pytest.raises(ValueError):
            FaultPlan.from_json(text)

    def test_fires_on_windows(self):
        contiguous = FaultRule(point="p", nth=2, times=2)
        assert [contiguous.fires_on(h) for h in range(1, 6)] == [
            False, True, True, False, False,
        ]
        unlimited = FaultRule(point="p", nth=3, times=None)
        assert [unlimited.fires_on(h) for h in range(1, 6)] == [
            False, False, True, True, True,
        ]
        periodic = FaultRule(point="p", every=3)
        assert [periodic.fires_on(h) for h in range(1, 8)] == [
            False, False, True, False, False, True, False,
        ]

    def test_match_is_exact_or_prefix(self):
        rule = FaultRule(point="p", match={"shard": "abcd", "path": "/deltas"})
        assert rule.matches({"shard": "abcd1234ef", "path": "/deltas"})
        assert rule.matches({"shard": "abcd", "path": "/deltas"})
        assert not rule.matches({"shard": "zzzz", "path": "/deltas"})
        assert not rule.matches({"path": "/deltas"})  # missing attribute


# ----------------------------------------------------------------------
# the injector: deterministic decisions, typed failures, env activation
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_inactive_injector_is_inert(self):
        injector = FaultInjector()
        assert injector.active is False
        assert injector.decide("wal.fsync", shard="x") is None
        injector.activate(FaultPlan(seed=1, rules=()))
        assert injector.active is False  # no rules, nothing to fire

    def test_window_counts_eligible_hits_only(self):
        injector = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(point="wal.fsync", match={"shard": "aa"}, nth=2, times=1),
        )))
        # hits on other shards are not eligible and must not advance the count
        assert injector.decide("wal.fsync", shard="bb") is None
        assert injector.decide("wal.fsync", shard="aa") is None  # eligible hit 1
        decision = injector.decide("wal.fsync", shard="aa")      # eligible hit 2
        assert decision is not None and decision.action == "fail"
        assert injector.decide("wal.fsync", shard="aa") is None  # window closed

    def test_first_matching_rule_wins(self):
        injector = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(point="p", action="delay", delay_s=0.25, times=1),
            FaultRule(point="p", action="fail", times=None),
        )))
        first = injector.decide("p")
        assert (first.action, first.rule_index, first.delay_s) == ("delay", 0, 0.25)
        second = injector.decide("p")
        assert (second.action, second.rule_index) == ("fail", 1)

    def test_probability_is_deterministic_for_one_seed(self):
        plan = FaultPlan(seed=7, rules=(
            FaultRule(point="p", times=None, probability=0.5),
        ))
        def run():
            injector = FaultInjector(plan)
            return [injector.decide("p") is not None for _ in range(64)]

        outcomes = [run(), run()]
        # wrong twice in the same way is impossible: both injectors drew from
        # RNGs seeded by (plan.seed, rule index)
        assert outcomes[0] == outcomes[1]
        assert True in outcomes[0] and False in outcomes[0]

    def test_report_counts_what_fired(self):
        injector = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(point="p", action="fail", nth=1, times=2),
        )))
        for _ in range(5):
            injector.decide("p")
        assert injector.report() == {"p/fail": 2}

    def test_io_helper_raises_a_real_oserror(self):
        injector = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(point="disk", action="fail"),
        )))
        with pytest.raises(OSError) as err:
            injector.io("disk", shard="s")
        assert isinstance(err.value, InjectedFault)

    def test_io_helper_delay_action_returns(self):
        injector = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(point="disk", action="delay", delay_s=0.0),
        )))
        assert injector.io("disk") is None  # slept 0s, no exception

    def test_crash_helper_raises_a_runtime_error(self):
        injector = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(point="engine", action="fail"),
        )))
        with pytest.raises(RuntimeError) as err:
            injector.crash("engine")
        assert isinstance(err.value, InjectedCrash)

    def test_activate_from_env_inline_json(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(point="p"),))
        try:
            assert activate_from_env({PLAN_ENV_VAR: plan.to_json()}) is True
            assert INJECTOR.active is True
            assert INJECTOR.decide("p") is not None
        finally:
            INJECTOR.deactivate()

    def test_activate_from_env_file_path(self, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            FaultPlan(seed=3, rules=(FaultRule(point="p"),)).to_json(),
            encoding="utf-8",
        )
        try:
            assert activate_from_env({PLAN_ENV_VAR: str(plan_file)}) is True
            assert INJECTOR.active is True
        finally:
            INJECTOR.deactivate()

    def test_activate_from_env_absent_is_a_noop(self):
        assert activate_from_env({}) is False
        assert INJECTOR.active is False

    def test_broken_plan_fails_loudly(self):
        # a chaos run must never silently degrade into a fault-free run
        with pytest.raises(ValueError):
            activate_from_env({PLAN_ENV_VAR: '{"rules": [{"action": "explode"}]}'})


# ----------------------------------------------------------------------
# disk fault points: the WAL and snapshot writers under injection
# ----------------------------------------------------------------------
class TestDiskFaultPoints:
    def record(self, seq: int) -> WalRecord:
        return WalRecord(seq=seq, deltas=[{"op": "delete", "tid": seq}])

    def test_injected_fsync_failure_truncates_the_partial_frame(self, tmp_path):
        INJECTOR.activate(FaultPlan(seed=0, rules=(
            FaultRule(point="wal.fsync", action="fail", nth=2, times=1),
        )))
        wal = DeltaLog(tmp_path / "wal.log")
        wal.append(self.record(0))
        with pytest.raises(OSError):
            wal.append(self.record(1))  # frame written, fsync refused
        wal.close()
        INJECTOR.deactivate()
        # the un-fsynced frame was rolled back: the log replays its prefix
        # and accepts new appends exactly like a post-crash reopen
        wal = DeltaLog(tmp_path / "wal.log")
        assert [r.seq for r in wal.replay()] == [0]
        wal.append(self.record(1))
        assert [r.seq for r in DeltaLog(tmp_path / "wal.log").replay()] == [0, 1]

    def test_injected_append_failure_writes_nothing(self, tmp_path):
        INJECTOR.activate(FaultPlan(seed=0, rules=(
            FaultRule(point="wal.append", action="fail", nth=1, times=1),
        )))
        wal = DeltaLog(tmp_path / "wal.log")
        with pytest.raises(OSError):
            wal.append(self.record(0))
        wal.close()
        assert DeltaLog(tmp_path / "wal.log").replay() == []

    def test_shard_match_targets_one_log(self, tmp_path):
        INJECTOR.activate(FaultPlan(seed=0, rules=(
            FaultRule(point="wal.fsync", action="fail",
                      match={"shard": "aaaa"}, times=None),
        )))
        sick = DeltaLog(tmp_path / "sick.log", name="aaaa1111")
        healthy = DeltaLog(tmp_path / "healthy.log", name="bbbb2222")
        healthy.append(self.record(0))  # prefix mismatch: untouched
        with pytest.raises(OSError):
            sick.append(self.record(0))
        sick.close()
        healthy.close()

    def test_injected_snapshot_corruption_is_rejected_on_load(self, tmp_path):
        path = tmp_path / "snapshot.json"
        envelope = {"fingerprint": "abc", "state": {"batches": 2}}
        write_snapshot(path, "shard1", envelope)
        INJECTOR.activate(FaultPlan(seed=0, rules=(
            FaultRule(point="snapshot.write", action="corrupt", nth=1, times=1),
        )))
        write_snapshot(path, "shard1", envelope)  # writes a torn document
        with pytest.raises(SnapshotError):
            load_snapshot_document(path, "shard1")
        assert not list(tmp_path.glob("*.tmp"))  # still an atomic replace

    def test_injected_snapshot_failure_keeps_the_previous_one(self, tmp_path):
        path = tmp_path / "snapshot.json"
        write_snapshot(path, "shard1", {"fingerprint": "a", "state": {"n": 1}})
        INJECTOR.activate(FaultPlan(seed=0, rules=(
            FaultRule(point="snapshot.write", action="fail", nth=1, times=1),
        )))
        with pytest.raises(OSError):
            write_snapshot(path, "shard1", {"fingerprint": "a", "state": {"n": 2}})
        INJECTOR.deactivate()
        document = load_snapshot_document(path, "shard1")
        assert document["envelope"]["state"]["n"] == 1


# ----------------------------------------------------------------------
# WAL degraded mode: shed with 503 semantics, probe, recover, converge
# ----------------------------------------------------------------------
class TestDegradedMode:
    def test_wal_failure_degrades_then_probe_recovers(self, tmp_path):
        _schema, _rules, _config, batches = workload_batches("hai")
        # the 2nd fsync (tick 1) fails once; everything after succeeds
        INJECTOR.activate(FaultPlan(seed=0, rules=(
            FaultRule(point="wal.fsync", action="fail", nth=2, times=1),
        )))

        async def main():
            service = WorkerService(
                WorkerConfig(
                    worker_id="t", data_dir=tmp_path, degraded_retry_after=0.2
                ),
                ServiceConfig(executor_workers=2),
            )
            await service.start()
            try:
                async def send(deltas):
                    spec = decode_delta_request(delta_payload("hai", deltas))
                    job = await service.submit(spec)
                    await service.wait(job.id)
                    return job

                assert (await send(batches[0])).status.value == "done"

                # tick 1: applied in memory, WAL refused → degraded, shed
                job = await send(batches[1])
                assert job.status.value == "failed"
                assert job.error_kind == "unavailable"
                assert "degraded" in job.error
                assert service.healthz()["degraded_shards"]

                # within the shed window every delta answers unavailable
                job = await send(batches[1])
                assert job.error_kind == "unavailable"

                # past the window the next tick is the probe: it re-attaches
                # from durable state (tick 0 only — the shed tick was never
                # acknowledged) and its WAL append now succeeds
                await asyncio.sleep(0.25)
                assert (await send(batches[1])).status.value == "done"
                assert not service.healthz().get("degraded_shards")
                assert (await send(batches[2])).status.value == "done"

                shard = service.pool.shards()[0]
                return engine_fingerprint_state(shard.stream)
            finally:
                await service.stop()

        state = asyncio.run(main())
        assert state == engine_fingerprint_state(reference_engine("hai", upto=3))


# ----------------------------------------------------------------------
# idempotent delta application: exactly-once under at-least-once retries
# ----------------------------------------------------------------------
class TestIdempotency:
    def test_same_key_coalesced_into_one_tick_applies_once(self, tmp_path):
        _schema, _rules, _config, batches = workload_batches("hai")

        async def main():
            service = WorkerService(
                WorkerConfig(worker_id="t", data_dir=tmp_path),
                ServiceConfig(executor_workers=2),
            )
            await service.start()
            try:
                specs = [
                    decode_delta_request(delta_payload("hai", batches[0], key="k0"))
                    for _ in range(2)
                ]
                # no awaits between submits: both fold into one tick
                jobs = [await service.submit(s) for s in specs]
                await asyncio.gather(*[service.wait(j.id) for j in jobs])
                assert all(j.status.value == "done" for j in jobs)
                shard = service.pool.shards()[0]
                assert shard.stream.batches_applied == 1
                return engine_fingerprint_state(shard.stream)
            finally:
                await service.stop()

        state = asyncio.run(main())
        assert state == engine_fingerprint_state(reference_engine("hai", upto=1))

    def test_retry_after_ack_replays_the_original_result(self, tmp_path):
        _schema, _rules, _config, batches = workload_batches("hai")

        async def main():
            service = WorkerService(
                WorkerConfig(worker_id="t", data_dir=tmp_path),
                ServiceConfig(executor_workers=2),
            )
            await service.start()
            try:
                async def send():
                    spec = decode_delta_request(
                        delta_payload("hai", batches[0], key="k0")
                    )
                    job = await service.submit(spec)
                    await service.wait(job.id)
                    assert job.status.value == "done", job.error
                    return job.result

                original = await send()
                replayed = await send()
                assert replayed == original  # the memoized ack, byte for byte
                assert service.pool.shards()[0].stream.batches_applied == 1
            finally:
                await service.stop()

        asyncio.run(main())

    def test_keys_survive_a_crash_in_the_wal_tail(self, tmp_path):
        _schema, _rules, _config, batches = workload_batches("hai")

        async def phase(keys_and_batches, expect_duplicate=None):
            service = WorkerService(
                WorkerConfig(worker_id="t", data_dir=tmp_path),
                ServiceConfig(executor_workers=2),
            )
            await service.start()
            try:
                results = []
                for key, deltas in keys_and_batches:
                    spec = decode_delta_request(delta_payload("hai", deltas, key=key))
                    job = await service.submit(spec)
                    await service.wait(job.id)
                    assert job.status.value == "done", job.error
                    results.append(job.result)
                shard = service.pool.shards()[0]
                return results, engine_fingerprint_state(shard.stream)
            finally:
                # stop() never checkpoints: the WAL tail (with its keys)
                # survives exactly as kill -9 would leave it
                await service.stop()

        asyncio.run(phase([("k0", batches[0]), ("k1", batches[1])]))

        async def after_crash():
            results, state = await phase([("k1", batches[1]), ("k2", batches[2])])
            return results, state

        results, state = asyncio.run(after_crash())
        # the re-sent k1 was deduplicated: its original demuxed result died
        # with the process, so the ack is the structured duplicate marker
        assert results[0] == {
            "kind": "deltas", "duplicate": True, "idempotency_key": "k1",
        }
        assert state == engine_fingerprint_state(reference_engine("hai", upto=3))

    def test_keys_survive_a_checkpoint(self, tmp_path):
        _schema, _rules, _config, batches = workload_batches("hai")

        async def main(first_run):
            service = WorkerService(
                WorkerConfig(worker_id="t", data_dir=tmp_path, snapshot_every=1),
                ServiceConfig(executor_workers=2),
            )
            await service.start()
            try:
                spec = decode_delta_request(delta_payload("hai", batches[0], key="k0"))
                job = await service.submit(spec)
                await service.wait(job.id)
                assert job.status.value == "done", job.error
                shard = service.pool.shards()[0]
                return job.result, shard.stream.batches_applied
            finally:
                await service.stop()

        original, _ = asyncio.run(main(True))
        # snapshot_every=1 checkpointed after the tick and reset the WAL;
        # the key must ride in the snapshot or the retry would double-apply
        replayed, ticks = asyncio.run(main(False))
        assert ticks == 1
        assert replayed == original  # the snapshot carried the full memo


# ----------------------------------------------------------------------
# end-to-end request deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_parse_deadline_header(self):
        assert _parse_deadline_header(None) is None
        assert _parse_deadline_header({}) is None
        assert _parse_deadline_header({"x-repro-deadline": "2.5"}) == 2.5
        # malformed budgets must not fail an otherwise-valid request
        assert _parse_deadline_header({"x-repro-deadline": "whenever"}) is None

    def test_failure_status_taxonomy(self):
        assert _failure_status("bad_request") == 400
        assert _failure_status("deadline") == 504
        assert _failure_status("unavailable") == 503
        assert _failure_status("poison") == 500
        assert _failure_status(None) == 500

    def test_expired_budget_fails_before_execution(self):
        _schema, _rules, _config, batches = workload_batches("hai")

        async def main():
            async with CleaningService(ServiceConfig(executor_workers=1)) as service:
                spec = decode_delta_request(delta_payload("hai", batches[0]))
                job = await service.submit(spec, budget=0.0)
                await service.wait(job.id)
                assert job.status.value == "failed"
                assert job.error_kind == "deadline"
                assert "deadline" in job.error

        asyncio.run(main())

    def test_deadline_header_maps_to_504_over_http(self):
        _schema, _rules, _config, batches = workload_batches("hai")
        body = json.dumps(delta_payload("hai", batches[0])).encode("utf-8")
        with ServiceServer(config=ServiceConfig(executor_workers=1)) as server:
            def post(headers):
                conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
                try:
                    conn.request(
                        "POST", "/deltas", body=body,
                        headers={"Content-Type": "application/json", **headers},
                    )
                    response = conn.getresponse()
                    return response.status, json.loads(response.read() or b"{}")
                finally:
                    conn.close()

            status, payload = post({"X-Repro-Deadline": "0"})
            assert status == 504
            assert payload["error"]["type"] == "deadline_exceeded"
            # malformed budget: treated as absent, the request just runs
            status, payload = post({"X-Repro-Deadline": "whenever"})
            assert status == 200 and payload["job"]["status"] == "done"

    def test_client_raises_a_local_504_once_the_budget_is_spent(self):
        client = ServiceClient(port=1)  # never reached
        with pytest.raises(ServiceError) as err:
            client.request("GET", "/healthz", deadline=0.0)
        assert err.value.status == 504
        assert err.value.payload["error"]["type"] == "deadline_exceeded"

    def test_router_rejects_an_arrived_dead_request(self):
        router = RouterService(RouterConfig())
        router.heartbeat({"worker_id": "w1", "port": 1234, "shards": []})
        body = json.dumps({"workload": "hospital-sample", "tuples": 8}).encode()
        status, payload, _headers = asyncio.run(
            router.proxy_submit("/clean", body, {"x-repro-deadline": "0"})
        )
        assert status == 504
        assert payload["error"]["type"] == "deadline_exceeded"


# ----------------------------------------------------------------------
# the router's per-worker circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after=0.0)

    def test_state_machine_with_a_fake_clock(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=3, reset_after=2.0, clock=lambda: now[0])
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        now[0] = 2.0
        assert breaker.state == "half_open"
        assert breaker.allow() is True       # the probe slot
        assert breaker.allow() is False      # consumed until its verdict
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=lambda: now[0])
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow() is True
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two consecutive

    def test_router_sheds_to_an_open_circuit(self, monkeypatch):
        router = RouterService(
            RouterConfig(breaker_threshold=2, breaker_reset_after=60.0)
        )
        router.heartbeat({"worker_id": "w1", "port": 1234, "shards": []})

        async def unreachable(*args, **kwargs):
            raise ConnectionError("injected: worker down")

        monkeypatch.setattr("repro.cluster.router.http_request", unreachable)
        body = json.dumps({"workload": "hospital-sample", "tuples": 8}).encode()

        def submit():
            return asyncio.run(router.proxy_submit("/clean", body))

        for _ in range(2):  # threshold=2 consecutive transport failures
            status, payload, _headers = submit()
            assert status == 503
            assert payload["error"]["type"] == "worker_unreachable"
        # the circuit is now open: shed instantly, no forward attempted
        status, payload, headers = submit()
        assert status == 503
        assert payload["error"]["type"] == "circuit_open"
        assert headers["Retry-After"] == "60"
        # /jobs/<id> fan-out sheds through the same breaker
        status, payload, _headers = asyncio.run(router.proxy_job("w1:j1"))
        assert payload["error"]["type"] == "circuit_open"
        # and the state is visible on the merged gauge
        families = {f["name"]: f for f in router._membership_families()}
        assert families["repro_breaker_state"]["samples"] == [
            ({"worker": "w1"}, STATE_VALUES["open"])
        ]

    def test_any_http_answer_closes_the_circuit(self, monkeypatch):
        router = RouterService(
            RouterConfig(breaker_threshold=1, breaker_reset_after=0.05)
        )
        router.heartbeat({"worker_id": "w1", "port": 1234, "shards": []})
        body = json.dumps({"workload": "hospital-sample", "tuples": 8}).encode()

        async def unreachable(*args, **kwargs):
            raise ConnectionError("down")

        monkeypatch.setattr("repro.cluster.router.http_request", unreachable)
        asyncio.run(router.proxy_submit("/clean", body))
        assert router.breakers["w1"].state == "open"

        async def answers_500(*args, **kwargs):
            return 500, {}, json.dumps(
                {"error": {"type": "internal", "message": "sick but alive"}}
            ).encode("utf-8")

        monkeypatch.setattr("repro.cluster.router.http_request", answers_500)
        time.sleep(0.06)  # reset_after elapses → half-open probe
        status, _payload, _headers = asyncio.run(router.proxy_submit("/clean", body))
        # a 500 proves the worker is reachable and serving: transport
        # health, not job health, is what the breaker watches
        assert status == 500
        assert router.breakers["w1"].state == "closed"


# ----------------------------------------------------------------------
# poison-job quarantine
# ----------------------------------------------------------------------
class TestPoisonQuarantine:
    def test_repeated_shard_crashes_park_the_request(self, tmp_path):
        _schema, _rules, _config, batches = workload_batches("hai")
        INJECTOR.activate(FaultPlan(seed=0, rules=(
            FaultRule(point="service.apply", action="fail", times=None),
        )))

        async def main():
            service = WorkerService(
                WorkerConfig(worker_id="t", data_dir=tmp_path),
                ServiceConfig(executor_workers=2, poison_threshold=3),
            )
            await service.start()
            try:
                async def send(deltas):
                    spec = decode_delta_request(delta_payload("hai", deltas))
                    job = await service.submit(spec)
                    await service.wait(job.id)
                    return job

                for _attempt in range(3):
                    job = await send(batches[0])
                    assert job.status.value == "failed"
                    assert job.error_kind == "internal"
                    assert "InjectedCrash" in job.error
                assert service.stats()["poison"]["quarantined"] == 1

                # strike three: the request is parked, not retried
                job = await send(batches[0])
                assert job.error_kind == "poison"
                assert "quarantined" in job.error

                # the quarantine outlives the fault itself...
                INJECTOR.deactivate()
                job = await send(batches[0])
                assert job.error_kind == "poison"
                # ...while different requests against the same shard proceed
                job = await send(batches[1])
                assert job.status.value == "done", job.error
            finally:
                await service.stop()

        asyncio.run(main())


# ----------------------------------------------------------------------
# the heartbeat loop survives transient router errors (and stalls on cue)
# ----------------------------------------------------------------------
class TestHeartbeatResilience:
    def worker_server(self, tmp_path, interval=0.02) -> WorkerHTTPServer:
        service = WorkerService(
            WorkerConfig(
                worker_id="w1",
                data_dir=tmp_path,
                router="127.0.0.1:1",
                heartbeat_interval=interval,
            ),
            ServiceConfig(executor_workers=1),
        )
        return WorkerHTTPServer(service, port=0)

    def test_loop_survives_garbled_router_responses(self, tmp_path, monkeypatch):
        calls = []

        async def flaky(host, port, method, path, payload=None, **kwargs):
            calls.append(path)
            if len(calls) <= 2:
                # NOT a ConnectionError: a garbled response body blowing up
                # the JSON decode used to kill the heartbeat task for good
                raise ValueError("garbled response")
            return 200, {"workers": 1}

        monkeypatch.setattr("repro.cluster.worker.http_json", flaky)

        async def main():
            server = self.worker_server(tmp_path)
            task = asyncio.get_running_loop().create_task(server._heartbeat_loop())
            try:
                deadline = asyncio.get_running_loop().time() + 10.0
                while len(calls) < 4:
                    assert asyncio.get_running_loop().time() < deadline
                    assert not task.done(), task.exception()
                    await asyncio.sleep(0.01)
                assert not task.done()
            finally:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task

        asyncio.run(main())
        assert len(calls) >= 4  # kept beating through (and past) the outage

    def test_stall_action_skips_beats_silently(self, tmp_path, monkeypatch):
        INJECTOR.activate(FaultPlan(seed=0, rules=(
            FaultRule(point="worker.heartbeat", action="stall", nth=1, times=2),
        )))
        calls = []

        async def record(host, port, method, path, payload=None, **kwargs):
            calls.append(path)
            return 200, {}

        monkeypatch.setattr("repro.cluster.worker.http_json", record)

        async def main():
            server = self.worker_server(tmp_path)
            task = asyncio.get_running_loop().create_task(server._heartbeat_loop())
            try:
                deadline = asyncio.get_running_loop().time() + 10.0
                while len(calls) < 2:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
            finally:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task

        asyncio.run(main())
        # the first two beats were swallowed (the router sees silence — that
        # is the network-flap drill), later beats flowed normally
        assert INJECTOR.report() == {"worker.heartbeat/stall": 2}


# ----------------------------------------------------------------------
# Retry-After parsing: garbage from servers/middleboxes never crashes
# ----------------------------------------------------------------------
class TestRetryAfterParsing:
    @pytest.mark.parametrize("raw", [None, "", "soon", "2 seconds", "-1", "-0.5"])
    def test_malformed_or_negative_is_treated_as_absent(self, raw):
        assert _parse_retry_after(raw) is None

    @pytest.mark.parametrize("raw,expected", [("0", 0.0), ("1", 1.0), ("2.5", 2.5)])
    def test_well_formed_values_parse(self, raw, expected):
        assert _parse_retry_after(raw) == expected

    def test_client_rides_out_garbage_retry_after_headers(self):
        responses = [
            (503, {"Retry-After": "soon"}, b"{}"),
            (503, {"Retry-After": "-2"}, b"{}"),
            (200, {}, b'{"ok": true}'),
        ]

        class Canned(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                status, headers, body = responses.pop(0)
                self.send_response(status)
                for name, value in headers.items():
                    self.send_header(name, value)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Canned)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                port=server.server_address[1], retries=3, backoff=0.01, jitter=0.0
            )
            assert client.request("GET", "/anything") == {"ok": True}
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


# ----------------------------------------------------------------------
# intra-cluster HTTP client error paths
# ----------------------------------------------------------------------
class TestHttpClientErrors:
    def one_shot_server(self, handler):
        """Run ``http_request`` against a one-connection asyncio server."""

        async def main(test):
            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await test(port)
            finally:
                server.close()
                await server.wait_closed()

        return main

    def test_connection_refused(self):
        port = free_port()  # bound, probed, released: nothing listens
        with pytest.raises(ConnectionError, match="cannot reach"):
            asyncio.run(http_request("127.0.0.1", port, "GET", "/"))

    def test_peer_closes_before_the_status_line(self):
        async def handler(reader, writer):
            await reader.readline()
            writer.close()

        async def test(port):
            with pytest.raises(ConnectionError, match="closed before responding"):
                await http_request("127.0.0.1", port, "GET", "/")

        asyncio.run(self.one_shot_server(handler)(test))

    def test_peer_hangs_up_mid_response(self):
        async def handler(reader, writer):
            await reader.readline()
            writer.write(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nhalf")
            await writer.drain()
            writer.close()

        async def test(port):
            with pytest.raises(ConnectionError, match="hung up mid-response"):
                await http_request("127.0.0.1", port, "GET", "/")

        asyncio.run(self.one_shot_server(handler)(test))

    def test_silent_peer_times_out(self):
        async def handler(reader, writer):
            await reader.read(-1)  # accept, then never answer

        async def test(port):
            with pytest.raises(asyncio.TimeoutError):
                await http_request("127.0.0.1", port, "GET", "/", timeout=0.2)

        asyncio.run(self.one_shot_server(handler)(test))

    def test_oversized_headers_are_refused(self):
        async def handler(reader, writer):
            with contextlib.suppress(Exception):  # the client hangs up on us
                await reader.readline()
                writer.write(b"HTTP/1.1 200 OK\r\n")
                filler = b"X-Padding: " + b"a" * 1000 + b"\r\n"
                for _ in range(70):  # ~70KB of headers > the 64KB bound
                    writer.write(filler)
                await writer.drain()
                writer.close()

        async def test(port):
            with pytest.raises(ConnectionError, match="headers exceed"):
                await http_request("127.0.0.1", port, "GET", "/")

        asyncio.run(self.one_shot_server(handler)(test))

    def test_single_oversized_header_line_is_refused(self):
        async def handler(reader, writer):
            with contextlib.suppress(Exception):  # the client hangs up on us
                await reader.readline()
                # one 2MB line overflows the stream reader's line buffer, which
                # used to surface as a raw ValueError instead of ConnectionError
                writer.write(b"HTTP/1.1 200 OK\r\nX-Bomb: " + b"a" * (2 * 1024 * 1024))
                await writer.drain()
                writer.close()

        async def test(port):
            with pytest.raises(ConnectionError, match="oversized header line"):
                await http_request("127.0.0.1", port, "GET", "/")

        asyncio.run(self.one_shot_server(handler)(test))


# ----------------------------------------------------------------------
# the chaos acceptance property, in miniature (one real worker process)
# ----------------------------------------------------------------------
def test_seeded_recoverable_faults_keep_the_signature_byte_identical(tmp_path):
    """A real worker under a seeded WAL fault plan converges byte-for-byte.

    The plan fails the 3rd WAL fsync: one delta tick is shed with 503 +
    Retry-After, the shard goes degraded, the retrying client rides it out,
    and the probe recovers from durable state.  The final masked report
    signature and cleaned table must equal a fault-free in-process run.
    ``benchmarks/chaos_smoke.py`` runs the full schedule (drops, duplicate
    sends, heartbeat stalls) on all four workloads behind a router.
    """
    workload = "hai"
    reference = engine_fingerprint_state(reference_engine(workload))
    plan = FaultPlan(seed=11, rules=(
        FaultRule(point="wal.fsync", action="fail", nth=3, times=1),
    ))
    port = free_port()
    proc = spawn_worker(
        port, "w1", tmp_path, snapshot_every=100, fault_plan=plan.to_json()
    )
    try:
        wait_until_healthy(port)
        client = ServiceClient(port=port, retries=8, backoff=0.3, max_backoff=2.0)
        _schema, _rules, _config, batches = workload_batches(workload)
        for deltas in batches:
            payload = delta_payload(workload, deltas)
            job = client.deltas(payload.pop("deltas"), **payload)
            assert job["status"] == "done", job.get("error")
        info = client.request("GET", "/cluster/info")
        state = client.request("GET", f"/cluster/streams/{info['shards'][0]}")
        assert state["signature"] == reference[0]
        assert canonical_json(state["cleaned"]) == reference[1]
        # the fault really fired: the worker's own metrics prove it
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            metrics = conn.getresponse().read().decode("utf-8")
        finally:
            conn.close()
        assert "repro_faults_injected_total" in metrics
        assert 'point="wal.fsync"' in metrics
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
