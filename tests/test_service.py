"""Tests for the cleaning service: routing, coalescing, HTTP, equivalence.

The headline property (the PR's acceptance criterion): N requests submitted
*concurrently* through the service produce byte-identical cleaning output —
every non-wall-clock byte of ``CleaningReport.to_json_dict()`` — to the same
N requests run *serially* through standalone sessions, on all four
registered workloads.  Wall-clock (``timings`` and the perf drill-down under
``details``) is masked by :func:`repro.service.codec.report_signature_dict`;
everything else (tables, stage counts, dedup listing, accuracy counters,
backend) is compared bit for bit.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

import pytest

from repro.core.report import table_to_json_dict
from repro.dataset.sample import (
    SAMPLE_ATTRIBUTES,
    sample_hospital_rules,
)
from repro.experiments.harness import prepare_instance
from repro.service import (
    BadRequestError,
    CleaningService,
    CleanRequestSpec,
    DeltaRequestSpec,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    ServiceServer,
    decode_clean_request,
    decode_delta_request,
    plan_tick,
    report_signature,
    report_signature_dict,
)
from repro.service.codec import (
    canonical_json,
    ground_truth_from_json,
    ground_truth_to_json,
)
from repro.session import CleaningSession
from repro.streaming import DeltaBatch, Insert, StreamingMLNClean, Update
from repro.workloads.registry import available_workloads, recommended_config


def run_async(coro):
    return asyncio.run(coro)


def serial_reference(workload, tuples, error_rate, overrides):
    """One request executed the pre-service way: a standalone session."""
    instance = prepare_instance(workload, tuples=tuples, error_rate=error_rate)
    config = recommended_config(workload)
    if overrides:
        config = replace(config, **overrides)
    session = CleaningSession(rules=instance.rules, config=config)
    return session.run(table=instance.dirty, ground_truth=instance.ground_truth)


def masked(report_or_json) -> str:
    return canonical_json(report_signature_dict(report_or_json))


# ----------------------------------------------------------------------
# the concurrent-equivalence property (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "workload,tuples",
    [("hospital-sample", 36), ("hai", 60), ("car", 60), ("tpch", 60)],
)
def test_concurrent_requests_equal_serial_sessions(workload, tuples):
    # all four registered workloads take part
    assert workload in available_workloads()
    tau = recommended_config(workload).abnormal_threshold
    variants = [{}, {}, {"abnormal_threshold": tau + 1}, {"remove_duplicates": False}]
    specs = [
        CleanRequestSpec(
            workload=workload, tuples=tuples, error_rate=0.1, config_overrides=dict(v)
        )
        for v in variants
    ]

    async def through_service():
        async with CleaningService(ServiceConfig(executor_workers=4)) as service:
            jobs = await asyncio.gather(*[service.submit(s) for s in specs])
            await asyncio.gather(*[service.wait(j.id) for j in jobs])
            assert all(j.status.value == "done" for j in jobs), [j.error for j in jobs]
            # one warm shard per distinct config; identical requests share
            distinct_variants = len({canonical_json(v) for v in variants})
            assert len(service.pool.shards()) == distinct_variants
            return [j.report for j in jobs]

    service_reports = run_async(through_service())
    for variant, report in zip(variants, service_reports):
        reference = serial_reference(workload, tuples, 0.1, variant)
        assert masked(report) == masked(reference)
        # the signature compares the *serialized* report too
        assert report_signature(report) == report_signature(reference.to_json_dict())


def test_identical_requests_reuse_one_warm_shard():
    specs = [
        CleanRequestSpec(workload="hospital-sample", tuples=24, error_rate=0.1)
        for _ in range(3)
    ]

    async def main():
        async with CleaningService() as service:
            jobs = [await service.submit(s) for s in specs]
            await asyncio.gather(*[service.wait(j.id) for j in jobs])
            shards = service.pool.shards()
            assert len(shards) == 1
            assert shards[0].session_reuses == 2
            assert shards[0].jobs_done == 3
            assert {j.result["signature"] for j in jobs} == {
                jobs[0].result["signature"]
            }

    run_async(main())


# ----------------------------------------------------------------------
# delta coalescing
# ----------------------------------------------------------------------
def _sample_delta_requests():
    """Seven single-delta requests against the hospital-sample schema."""
    from repro.dataset.sample import SAMPLE_CLEAN_RECORDS

    records = [dict(r) for r in SAMPLE_CLEAN_RECORDS]
    batches = [DeltaBatch([Insert(values=records[i % len(records)])]) for i in range(6)]
    batches.append(DeltaBatch([Update(0, {"CT": "DOTH"})]))
    return batches


def test_coalesced_tick_is_bit_identical_to_standalone_sessions():
    batches = _sample_delta_requests()

    async def through_service():
        async with CleaningService(ServiceConfig(executor_workers=2)) as service:
            specs = [
                DeltaRequestSpec(
                    deltas=batch,
                    rules=sample_hospital_rules(),
                    schema=list(SAMPLE_ATTRIBUTES),
                )
                for batch in batches
            ]
            # no awaits between submits: the shard worker drains them as ONE tick
            jobs = [await service.submit(s) for s in specs]
            await asyncio.gather(*[service.wait(j.id) for j in jobs])
            assert all(j.status.value == "done" for j in jobs), [j.error for j in jobs]
            assert {j.result["tick"] for j in jobs} == {0}
            assert all(j.result["coalesced_requests"] == len(batches) for j in jobs)
            assert [j.result["deltas"] for j in jobs] == [len(b) for b in batches]
            (shard,) = service.pool.shards()
            assert shard.ticks == 1 and shard.coalesced_requests == len(batches)
            return [j.result for j in jobs], table_to_json_dict(shard.stream.cleaned)

    results, service_cleaned = run_async(through_service())

    # standalone: the same requests, each applied as its own micro-batch
    standalone = StreamingMLNClean(sample_hospital_rules(), list(SAMPLE_ATTRIBUTES))
    for batch in _sample_delta_requests():
        standalone.apply_batch(batch)
    assert canonical_json(service_cleaned) == canonical_json(
        table_to_json_dict(standalone.cleaned)
    )
    # every demultiplexed response snapshots the post-tick shard state
    for result in results:
        assert canonical_json(result["cleaned"]) == canonical_json(service_cleaned)


def test_interleaved_deltas_for_two_shards_stay_isolated():
    """Deltas for two differently-configured streams interleave freely."""
    from repro.dataset.sample import SAMPLE_CLEAN_RECORDS

    records = [dict(r) for r in SAMPLE_CLEAN_RECORDS]

    def spec_for(shard_tau, record):
        return DeltaRequestSpec(
            deltas=DeltaBatch([Insert(values=dict(record))]),
            rules=sample_hospital_rules(),
            schema=list(SAMPLE_ATTRIBUTES),
            config_overrides={"abnormal_threshold": shard_tau},
        )

    async def main():
        async with CleaningService(ServiceConfig(executor_workers=2)) as service:
            jobs = []
            for i, record in enumerate(records):
                jobs.append(await service.submit(spec_for(1, record)))
                jobs.append(await service.submit(spec_for(2, record)))
            await asyncio.gather(*[service.wait(j.id) for j in jobs])
            assert all(j.status.value == "done" for j in jobs), [j.error for j in jobs]
            shards = service.pool.shards()
            assert len(shards) == 2
            return {
                shard.session.config.abnormal_threshold: table_to_json_dict(
                    shard.stream.cleaned
                )
                for shard in shards
            }

    per_shard = run_async(main())
    for tau in (1, 2):
        from repro.core.config import MLNCleanConfig

        standalone = StreamingMLNClean(
            sample_hospital_rules(),
            list(SAMPLE_ATTRIBUTES),
            config=MLNCleanConfig(abnormal_threshold=tau),
        )
        for record in records:
            standalone.apply_batch(DeltaBatch([Insert(values=dict(record))]))
        assert canonical_json(per_shard[tau]) == canonical_json(
            table_to_json_dict(standalone.cleaned)
        )


def test_invalid_request_in_coalesced_tick_fails_alone():
    """The per-request fallback isolates a bad delta from its tick-mates."""
    from repro.dataset.sample import SAMPLE_CLEAN_RECORDS

    good = DeltaBatch([Insert(values=dict(SAMPLE_CLEAN_RECORDS[0]))])
    bad = DeltaBatch([Update(999, {"CT": "X"})])  # unknown key
    good2 = DeltaBatch([Insert(values=dict(SAMPLE_CLEAN_RECORDS[1]))])

    async def main():
        async with CleaningService() as service:
            specs = [
                DeltaRequestSpec(
                    deltas=batch,
                    rules=sample_hospital_rules(),
                    schema=list(SAMPLE_ATTRIBUTES),
                )
                for batch in (good, bad, good2)
            ]
            jobs = [await service.submit(s) for s in specs]
            await asyncio.gather(*[service.wait(j.id) for j in jobs])
            assert [j.status.value for j in jobs] == ["done", "failed", "done"]
            assert "999" in jobs[1].error
            (shard,) = service.pool.shards()
            assert len(shard.stream.dirty) == 2

    run_async(main())


def test_inline_streams_with_different_schemas_get_separate_shards():
    from repro.session.session import load_rules

    def spec_for(schema, values):
        return DeltaRequestSpec(
            deltas=DeltaBatch([Insert(values=values)]),
            rules=load_rules(["A -> B"]),
            schema=schema,
        )

    async def main():
        async with CleaningService() as service:
            narrow = await service.submit(spec_for(["A", "B"], {"A": "x", "B": "y"}))
            wide = await service.submit(
                spec_for(["A", "B", "C"], {"A": "x", "B": "y", "C": "z"})
            )
            await asyncio.gather(service.wait(narrow.id), service.wait(wide.id))
            # both valid inserts succeed because each schema owns a shard
            assert narrow.status.value == "done", narrow.error
            assert wide.status.value == "done", wide.error
            assert len(service.pool.shards()) == 2

    run_async(main())


def test_equivalent_window_spellings_share_one_shard():
    from repro.session.session import load_rules

    def spec_with_window(window, deltas):
        return DeltaRequestSpec(
            deltas=DeltaBatch(deltas),
            rules=load_rules(["A -> B"]),
            schema=["A", "B"],
            window=window,
        )

    async def main():
        async with CleaningService() as service:
            first = await service.submit(
                spec_with_window(
                    {"kind": "tumbling", "size": 3},
                    [Insert(values={"A": "x", "B": "y"}, tid=0)],
                )
            )
            await service.wait(first.id)
            # the same stream, spelled differently, must see tid 0
            second = await service.submit(
                spec_with_window(
                    {"kind": "Tumbling", "size": "3"},
                    [Update(0, {"B": "z"})],
                )
            )
            await service.wait(second.id)
            assert second.status.value == "done", second.error
            assert len(service.pool.shards()) == 1

    run_async(main())


def test_plan_tick_preserves_arrival_order_and_slices():
    batches = _sample_delta_requests()
    plan = plan_tick(batches)
    assert plan.requests == len(batches)
    assert len(plan.batch) == sum(len(b) for b in batches)
    assert [plan.deltas_of(i) for i in range(plan.requests)] == [
        len(b) for b in batches
    ]
    flattened = [d for b in batches for d in b]
    assert list(plan.batch) == flattened


# ----------------------------------------------------------------------
# backpressure and lifecycle
# ----------------------------------------------------------------------
def test_bounded_queue_sheds_load_with_503_semantics():
    spec = CleanRequestSpec(workload="hospital-sample", tuples=12, error_rate=0.1)

    async def main():
        async with CleaningService(
            ServiceConfig(max_pending=2, executor_workers=1)
        ) as service:
            first = await service.submit(spec)
            second = await service.submit(spec)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                await service.submit(spec)
            assert excinfo.value.max_pending == 2
            assert service.pending == 2
            await asyncio.gather(
                service.wait(first.id), service.wait(second.id)
            )
            assert service.pending == 0
            # capacity freed: submission works again
            third = await service.submit(spec)
            await service.wait(third.id)
            assert third.status.value == "done"

    run_async(main())


def test_pool_refuses_shards_beyond_the_bound():
    from repro.service import PoolExhaustedError

    def spec_with_tau(tau):
        return CleanRequestSpec(
            workload="hospital-sample",
            tuples=12,
            config_overrides={"abnormal_threshold": tau},
        )

    async def main():
        async with CleaningService(ServiceConfig(max_shards=2)) as service:
            await service.submit(spec_with_tau(1))
            await service.submit(spec_with_tau(2))
            with pytest.raises(PoolExhaustedError):
                await service.submit(spec_with_tau(3))
            # existing shards keep accepting work
            job = await service.submit(spec_with_tau(1))
            await service.wait(job.id, timeout=60)
            assert job.status.value == "done"

    run_async(main())


def test_latency_window_ages_out_old_samples():
    from repro.perf import LatencyWindow

    window = LatencyWindow(maxlen=4)
    window.record(10.0)  # an early spike
    for _ in range(4):
        window.record(0.1)
    stats = window.as_dict()
    assert stats["count"] == 5 and stats["window"] == 4
    # the spike has aged out of every windowed number
    assert stats["max_s"] == pytest.approx(0.1)
    assert stats["mean_s"] == pytest.approx(0.1)
    assert stats["p95_s"] == pytest.approx(0.1)
    assert LatencyWindow().as_dict()["p50_s"] is None
    with pytest.raises(ValueError):
        LatencyWindow(0)
    with pytest.raises(ValueError):
        window.percentile(1.5)
    # nearest-rank semantics: p95 of 1..20 is the 19th smallest, not the max
    ladder = LatencyWindow(maxlen=20)
    for value in range(1, 21):
        ladder.record(float(value))
    assert ladder.percentile(0.95) == 19.0
    assert ladder.percentile(0.50) == 10.0
    assert ladder.percentile(1.0) == 20.0
    assert ladder.percentile(0.0) == 1.0


def test_stop_fails_unfinished_jobs_and_service_restarts():
    spec = CleanRequestSpec(workload="hospital-sample", tuples=12, error_rate=0.1)

    async def main():
        service = CleaningService(ServiceConfig(executor_workers=1))
        await service.start()
        jobs = [await service.submit(spec) for _ in range(3)]
        # stop before the shard worker drains anything: every job must be
        # failed (waiters wake up), pending must return to zero
        await service.stop()
        assert [j.status.value for j in jobs] == ["failed"] * 3
        assert all("stopped" in j.error for j in jobs)
        assert service.pending == 0
        # a restarted service routes onto live workers again
        await service.start()
        job = await service.submit(spec)
        await service.wait(job.id, timeout=60)
        assert job.status.value == "done"
        await service.stop()

    run_async(main())


def test_submitting_to_a_stopped_service_is_rejected():
    async def main():
        service = CleaningService()
        with pytest.raises(RuntimeError):
            await service.submit(
                CleanRequestSpec(workload="hospital-sample", tuples=12)
            )

    run_async(main())


def test_stats_surface():
    spec = CleanRequestSpec(workload="hospital-sample", tuples=18, error_rate=0.1)

    async def main():
        async with CleaningService() as service:
            job = await service.submit(spec)
            await service.wait(job.id)
            stats = service.stats()
            assert stats["status"] == "ok"
            assert stats["queue"]["pending"] == 0
            assert stats["queue"]["max_pending"] == 64
            # one shard exists and its queue has drained
            assert list(stats["queue"]["depth_per_shard"].values()) == [0]
            assert stats["jobs"]["done"] == 1
            assert stats["latency"]["count"] == 1
            assert stats["latency"]["p95_s"] >= stats["latency"]["p50_s"] > 0
            (shard_stats,) = stats["shards"]
            assert shard_stats["jobs_done"] == 1
            assert shard_stats["workload"] == "hospital-sample"
            # the DistanceEngine counters from repro.perf ride along
            assert stats["distance"]["calls"] > 0
            assert 0.0 <= stats["distance"]["hit_rate"] <= 1.0

    run_async(main())


# ----------------------------------------------------------------------
# request decoding and validation
# ----------------------------------------------------------------------
def test_decode_clean_request_validates_shape():
    with pytest.raises(BadRequestError):
        decode_clean_request([])  # not an object
    with pytest.raises(BadRequestError):
        decode_clean_request({})  # neither workload nor table
    with pytest.raises(BadRequestError):
        decode_clean_request(
            {"workload": "hai", "table": [{"A": "x"}]}
        )  # both
    with pytest.raises(BadRequestError):
        decode_clean_request({"table": [{"A": "x"}]})  # inline without rules
    with pytest.raises(BadRequestError):
        decode_clean_request({"workload": "hai", "config": {"bogus_knob": 3}})
    with pytest.raises(BadRequestError):
        decode_clean_request({"workload": "hai", "tuples": []})  # junk number
    with pytest.raises(BadRequestError):
        decode_clean_request({"workload": "hai", "error_rate": {}})
    with pytest.raises(BadRequestError):
        decode_clean_request({"workload": "hai", "stages": "agp"})  # not a list
    with pytest.raises(BadRequestError) as excinfo:
        decode_clean_request({"workload": "hai", "stages": ["agp", "sparkle"]})
    assert "registered stage" in str(excinfo.value)
    with pytest.raises(BadRequestError):
        decode_clean_request({"workload": "hai", "cleaner": "service"})
    spec = decode_clean_request(
        {
            "table": [{"A": "x", "B": "y"}],
            "rules": ["A -> B"],
            "config": {"abnormal_threshold": 2},
        }
    )
    assert spec.table is not None and len(spec.table) == 1
    assert [r.name for r in spec.rules] == ["r1"]
    assert spec.config_overrides == {"abnormal_threshold": 2}


def test_decode_delta_request_validates_shape():
    with pytest.raises(BadRequestError):
        decode_delta_request({"deltas": "nope"})
    with pytest.raises(BadRequestError):
        decode_delta_request({"deltas": [{"op": "teleport"}]})
    with pytest.raises(BadRequestError):
        decode_delta_request(
            {"workload": "hai", "deltas": [{"op": "delete", "tid": None}]}
        )
    with pytest.raises(BadRequestError):
        decode_delta_request({"deltas": []})  # no stream identity, no deltas
    with pytest.raises(BadRequestError):
        decode_delta_request(
            {"rules": ["A -> B"], "deltas": [{"op": "delete", "tid": 1}]}
        )  # inline rules without schema
    with pytest.raises(BadRequestError) as excinfo:
        decode_delta_request(
            {
                "workload": "hospital-sample",
                "deltas": [{"op": "delete", "tid": 1}],
                "window": {"kind": "bouncing", "size": 4},
            }
        )
    assert "tumbling" in str(excinfo.value) and "sliding" in str(excinfo.value)
    spec = decode_delta_request(
        {
            "workload": "hospital-sample",
            "deltas": [
                {"op": "insert", "values": {"HN": "H", "CT": "C", "ST": "S", "PN": "1"}},
                {"op": "update", "tid": 0, "changes": {"CT": "D"}},
                {"op": "delete", "tid": 1},
            ],
            "window": {"kind": "sliding", "size": 9},
        }
    )
    assert spec.deltas.counts() == {"inserts": 1, "updates": 1, "deletes": 1}


def test_ground_truth_json_round_trip(sample_ground_truth):
    encoded = ground_truth_to_json(sample_ground_truth)
    decoded = ground_truth_from_json(encoded)
    assert ground_truth_to_json(decoded) == encoded
    assert len(decoded) == len(sample_ground_truth)
    assert ground_truth_from_json(None) is None
    with pytest.raises(BadRequestError):
        ground_truth_from_json([{"tid": 0}])


def test_report_signature_masks_only_wall_clock():
    report = serial_reference("hospital-sample", 18, 0.1, {})
    data = report.to_json_dict()
    projected = report_signature_dict(report)
    assert "timings" not in projected and "details" not in projected
    for key in data:
        if key not in ("timings", "details"):
            assert projected[key] == data[key]
    # perturbing the wall clock must not change the signature...
    perturbed = dict(data, timings={"agp": 999.0})
    assert report_signature(perturbed) == report_signature(report)
    # ...but perturbing the cleaned table must
    tampered = dict(data)
    tampered["cleaned"] = dict(
        tampered["cleaned"], rows=tampered["cleaned"]["rows"][:-1]
    )
    assert report_signature(tampered) != report_signature(report)


# ----------------------------------------------------------------------
# session fingerprints and shard identity
# ----------------------------------------------------------------------
def test_session_fingerprint_tracks_behaviour():
    def session(**kwargs):
        rules = kwargs.pop("rules", sample_hospital_rules())
        return CleaningSession(rules=rules, **kwargs)

    base = session().fingerprint()
    assert base == session().fingerprint()  # deterministic
    assert len(base) == 16
    from repro.core.config import MLNCleanConfig

    assert session(config=MLNCleanConfig(abnormal_threshold=3)).fingerprint() != base
    assert session(cleaner="minimal-repair").fingerprint() != base
    assert session(backend="streaming").fingerprint() != base
    assert session(rules=sample_hospital_rules()[:1]).fingerprint() != base
    assert session(stages=["agp", "rsc"]).fingerprint() != base


# ----------------------------------------------------------------------
# the HTTP front end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    with ServiceServer(config=ServiceConfig(executor_workers=2)) as srv:
        ServiceClient(port=srv.port).wait_until_healthy()
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(port=server.port)


def test_http_clean_round_trip_matches_standalone_session(client):
    job = client.clean(workload="hospital-sample", tuples=24, error_rate=0.1)
    assert job["status"] == "done"
    reference = serial_reference("hospital-sample", 24, 0.1, {})
    assert job["result"]["signature"] == report_signature(reference)
    assert masked(job["result"]["report"]) == masked(reference)
    assert job["result"]["metrics"]["f1"] == pytest.approx(reference.accuracy.f1)


def test_http_async_submit_and_poll(client):
    job = client.clean(
        workload="hospital-sample", tuples=24, error_rate=0.1, wait=False
    )
    assert job["status"] in ("queued", "running", "done")
    finished = client.wait_for(job["id"], timeout=60)
    assert finished["status"] == "done"
    assert "result" in finished


def test_http_deltas_round_trip(client):
    job = client.deltas(
        [
            {"op": "insert", "values": {"HN": "H1", "CT": "DOTHAN", "ST": "AL", "PN": "1"}},
            {"op": "insert", "values": {"HN": "H1", "CT": "DOTHAN", "ST": "AL", "PN": "1"}},
        ],
        workload="hospital-sample",
    )
    assert job["status"] == "done"
    assert job["result"]["tuples_total"] == 2
    assert len(job["result"]["cleaned"]["rows"]) >= 1


def test_http_structured_400_for_unknown_registry_names(client):
    with pytest.raises(ServiceError) as excinfo:
        client.clean(workload="nope-db", tuples=10)
    assert excinfo.value.status == 400
    error = excinfo.value.payload["error"]
    assert error["type"] == "unknown_name"
    # the unknown_name() listing names what IS registered
    for name in available_workloads():
        assert name in error["message"]
    with pytest.raises(ServiceError) as excinfo:
        client.clean(workload="hospital-sample", cleaner="sparkle")
    assert excinfo.value.status == 400
    assert "mlnclean" in excinfo.value.payload["error"]["message"]


def test_http_bad_cleaner_options_are_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.clean(workload="hospital-sample", options={"bogus_knob": 1})
    assert excinfo.value.status == 400
    assert "bogus_knob" in excinfo.value.payload["error"]["message"]


def test_http_apply_time_delta_errors_are_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.deltas(
            [{"op": "update", "tid": 987654, "changes": {"CT": "X"}}],
            workload="hospital-sample",
        )
    assert excinfo.value.status == 400
    job = excinfo.value.payload["job"]
    assert job["status"] == "failed" and job["error_kind"] == "bad_request"
    assert "987654" in job["error"]


def test_http_bad_requests_are_400_not_500(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/clean", {"table": [{"A": "x"}]})
    assert excinfo.value.status == 400
    import http.client as http_client
    import json as json_module

    connection = http_client.HTTPConnection(client.host, client.port, timeout=30)
    try:
        connection.request(
            "POST", "/clean", body=b"{not json", headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        payload = json_module.loads(response.read().decode("utf-8"))
        assert response.status == 400
        assert payload["error"]["type"] == "bad_json"
    finally:
        connection.close()


def test_http_unknown_routes_and_jobs(client):
    with pytest.raises(ServiceError) as excinfo:
        client.job("j999999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.request("GET", "/bogus")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.request("GET", "/clean")
    assert excinfo.value.status == 405


def test_http_healthz_and_stats(client):
    health = client.healthz()
    assert health["status"] == "ok" and health["uptime_s"] >= 0
    stats = client.stats()
    for key in ("queue", "jobs", "latency", "shards", "distance", "coalescing"):
        assert key in stats


# ----------------------------------------------------------------------
# the "service" registered cleaner (what service_replay runs)
# ----------------------------------------------------------------------
def test_service_cleaner_changes_nothing(sample_table, sample_rules, sample_config):
    direct = CleaningSession(rules=sample_rules, config=sample_config).run(
        table=sample_table.copy()
    )
    through_service = (
        CleaningSession.builder()
        .with_rules(sample_rules)
        .with_config(sample_config)
        .with_cleaner("service")
        .build()
        .run(table=sample_table.copy())
    )
    assert through_service.cleaned.equals(direct.cleaned)
    assert masked(through_service) == masked(direct)


def test_render_service_replay_checks_equality():
    from repro.experiments import service_replay

    result = service_replay(tuples=30)
    service_rows = [row for row in result.rows if "matches_batch" in row]
    assert service_rows, "the spec must produce at least one service cell"
    assert all(row["matches_batch"] for row in service_rows)
    assert all(row["metrics_equal"] for row in service_rows)
