"""Unit tests for :mod:`repro.dataset.domain`."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.dataset.domain import Domain


def test_add_and_count():
    domain = Domain("CT", ["BOAZ", "DOTHAN", "BOAZ"])
    assert domain.count("BOAZ") == 2
    assert domain.count("DOTHAN") == 1
    assert domain.count("MISSING") == 0


def test_values_preserve_first_seen_order():
    domain = Domain("CT", ["B", "A", "C", "A"])
    assert domain.values == ["B", "A", "C"]


def test_size_and_total_observations():
    domain = Domain("CT", ["A", "B", "A", "A"])
    assert domain.size == 2
    assert domain.total_observations == 4
    assert len(domain) == 2


def test_frequency():
    domain = Domain("CT", ["A", "B", "A", "A"])
    assert domain.frequency("A") == pytest.approx(0.75)
    assert domain.frequency("B") == pytest.approx(0.25)
    assert domain.frequency("Z") == 0.0


def test_frequency_of_empty_domain_is_zero():
    assert Domain("CT").frequency("A") == 0.0


def test_add_rejects_nonpositive_count():
    domain = Domain("CT")
    with pytest.raises(ValueError):
        domain.add("A", 0)


def test_contains_and_iter():
    domain = Domain("CT", ["A", "B"])
    assert "A" in domain
    assert "Z" not in domain
    assert list(domain) == ["A", "B"]


def test_discard_removes_value():
    domain = Domain("CT", ["A", "B"])
    domain.discard("A")
    assert "A" not in domain
    assert domain.values == ["B"]
    domain.discard("A")  # idempotent


def test_sample_excludes_value():
    domain = Domain("CT", ["A", "B", "C"])
    rng = random.Random(1)
    for _ in range(20):
        assert domain.sample(rng, exclude="A") != "A"


def test_sample_raises_when_no_alternative():
    domain = Domain("CT", ["A"])
    with pytest.raises(ValueError):
        domain.sample(random.Random(1), exclude="A")


def test_sample_weighted_respects_exclusion():
    domain = Domain("CT", ["A"] * 10 + ["B"])
    rng = random.Random(2)
    for _ in range(10):
        assert domain.sample_weighted(rng, exclude="A") == "B"


def test_most_common_ordering():
    domain = Domain("CT", ["A", "B", "B", "C", "C", "C"])
    assert domain.most_common(2) == [("C", 3), ("B", 2)]


def test_merge_combines_counts():
    left = Domain("CT", ["A", "B"])
    right = Domain("CT", ["B", "C"])
    merged = left.merge(right)
    assert merged.count("B") == 2
    assert set(merged.values) == {"A", "B", "C"}
    # originals untouched
    assert left.count("B") == 1


@given(st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=50))
def test_total_observations_matches_input_length(values):
    domain = Domain("X", values)
    assert domain.total_observations == len(values)
    assert domain.size == len(set(values))


@given(st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=50))
def test_frequencies_sum_to_one(values):
    domain = Domain("X", values)
    total = sum(domain.frequency(v) for v in domain.values)
    assert abs(total - 1.0) < 1e-9
