"""Unit tests for :mod:`repro.dataset.schema` and :mod:`repro.dataset.table`."""

import pytest

from repro.dataset.schema import Schema
from repro.dataset.table import Cell, Row, Table


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------
def test_schema_rejects_empty():
    with pytest.raises(ValueError):
        Schema([])


def test_schema_rejects_duplicates():
    with pytest.raises(ValueError):
        Schema(["A", "A"])


def test_schema_position_and_contains():
    schema = Schema(["A", "B", "C"])
    assert schema.position("B") == 1
    assert "C" in schema
    assert "Z" not in schema
    assert schema.arity == 3


def test_schema_validate_attributes():
    schema = Schema(["A", "B"])
    schema.validate_attributes(["A"])
    with pytest.raises(KeyError):
        schema.validate_attributes(["Z"])


def test_schema_project_and_equality():
    schema = Schema(["A", "B", "C"])
    assert schema.project(["C", "A"]).attributes == ["C", "A"]
    assert Schema(["A", "B"]) == Schema(["A", "B"])
    assert Schema(["A", "B"]) != Schema(["B", "A"])


# ----------------------------------------------------------------------
# Row
# ----------------------------------------------------------------------
def test_row_access_and_set():
    row = Row(0, {"A": "x", "B": "y"})
    assert row["A"] == "x"
    row.set("A", "z")
    assert row["A"] == "z"
    with pytest.raises(KeyError):
        row.set("C", "nope")


def test_row_values_for_and_equality():
    row = Row(0, {"A": "x", "B": "y"})
    assert row.values_for(["B", "A"]) == ("y", "x")
    assert row == Row(5, {"A": "x", "B": "y"})  # equality ignores tid


# ----------------------------------------------------------------------
# Table
# ----------------------------------------------------------------------
def make_table():
    return Table.from_records(
        [
            {"A": "1", "B": "x"},
            {"A": "2", "B": "y"},
            {"A": "2", "B": "y"},
        ],
        attributes=["A", "B"],
    )


def test_from_records_assigns_sequential_tids():
    table = make_table()
    assert table.tids == [0, 1, 2]
    assert len(table) == 3


def test_append_rejects_missing_and_extra_attributes():
    table = Table(Schema(["A", "B"]))
    with pytest.raises(KeyError):
        table.append({"A": "1"})
    with pytest.raises(KeyError):
        table.append({"A": "1", "B": "2", "C": "3"})


def test_append_rejects_duplicate_tid():
    table = Table(Schema(["A"]))
    table.append({"A": "1"}, tid=7)
    with pytest.raises(ValueError):
        table.append({"A": "2"}, tid=7)


def test_value_and_set_value():
    table = make_table()
    assert table.value(0, "A") == "1"
    table.set_value(0, "A", "9")
    assert table.value(0, "A") == "9"
    with pytest.raises(KeyError):
        table.set_value(0, "Z", "9")


def test_cell_helpers():
    table = make_table()
    cell = Cell(1, "B")
    assert table.cell_value(cell) == "y"
    table.set_cell(cell, "q")
    assert table.cell_value(cell) == "q"
    assert table.cell_count == 6
    assert len(list(table.cells())) == 6


def test_column_and_domain():
    table = make_table()
    assert table.column("A") == ["1", "2", "2"]
    assert table.domain("A").count("2") == 2
    assert set(table.domains()) == {"A", "B"}


def test_copy_is_deep_and_preserves_tids():
    table = make_table()
    clone = table.copy()
    clone.set_value(0, "A", "changed")
    assert table.value(0, "A") == "1"
    assert clone.tids == table.tids


def test_remove_and_subset_and_filter():
    table = make_table()
    table.remove(1)
    assert table.tids == [0, 2]
    subset = table.subset([2])
    assert subset.tids == [2]
    filtered = table.filter(lambda row: row["A"] == "2")
    assert filtered.tids == [2]


def test_equals_and_diff_cells():
    table = make_table()
    other = table.copy()
    assert table.equals(other)
    other.set_value(2, "B", "z")
    assert not table.equals(other)
    assert table.diff_cells(other) == [Cell(2, "B")]


def test_diff_cells_requires_same_tids():
    table = make_table()
    other = table.copy()
    other.remove(0)
    with pytest.raises(ValueError):
        table.diff_cells(other)


def test_duplicate_groups():
    table = make_table()
    groups = table.duplicate_groups()
    assert groups == [[1, 2]]


def test_projection_and_records():
    table = make_table()
    assert table.projection(["B"]) == [("x",), ("y",), ("y",)]
    records = table.records()
    assert records[0] == {"A": "1", "B": "x"}


def test_pretty_string_contains_all_rows():
    text = make_table().to_pretty_string()
    assert "TID" in text
    assert text.count("\n") >= 4
