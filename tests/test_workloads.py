"""Unit tests for the synthetic workload generators."""

import pytest

from repro.constraints.violations import is_consistent
from repro.errors.injector import ErrorSpec
from repro.workloads import (
    CarWorkloadGenerator,
    HAIWorkloadGenerator,
    TPCHWorkloadGenerator,
    available_workloads,
    get_workload_generator,
)


@pytest.mark.parametrize(
    "generator_cls, expected_rules",
    [(HAIWorkloadGenerator, 7), (CarWorkloadGenerator, 2), (TPCHWorkloadGenerator, 1)],
)
def test_generators_produce_consistent_clean_tables(generator_cls, expected_rules):
    workload = generator_cls(tuples=300, seed=5).build()
    assert len(workload.clean) == 300
    assert len(workload.rules) == expected_rules
    assert is_consistent(workload.clean, workload.rules)


def test_generators_are_deterministic():
    first = HAIWorkloadGenerator(tuples=200, seed=9).build()
    second = HAIWorkloadGenerator(tuples=200, seed=9).build()
    assert first.clean.equals(second.clean)
    different = HAIWorkloadGenerator(tuples=200, seed=10).build()
    assert not first.clean.equals(different.clean)


def test_hai_density_and_schema():
    workload = HAIWorkloadGenerator(tuples=400, seed=1).build()
    providers = workload.clean.domain("ProviderID")
    assert providers.size <= 400 // 30  # dense: many rows per provider
    assert "PhoneNumber" in workload.clean.schema
    assert workload.recommended_threshold == 10


def test_car_sparsity_and_acura_share():
    workload = CarWorkloadGenerator(tuples=600, seed=1).build()
    makes = workload.clean.column("Make")
    acura_share = makes.count("acura") / len(makes)
    assert 0.15 < acura_share < 0.6
    models = workload.clean.domain("Model")
    assert models.size > 50  # sparse: many distinct models
    assert workload.recommended_threshold == 1


def test_tpch_custkey_determines_address():
    workload = TPCHWorkloadGenerator(tuples=300, seed=1).build()
    addresses_per_key: dict[str, set[str]] = {}
    for row in workload.clean:
        addresses_per_key.setdefault(row["CustKey"], set()).add(row["Address"])
    assert all(len(addresses) == 1 for addresses in addresses_per_key.values())


def test_make_instance_injects_requested_errors(hai_workload):
    instance = hai_workload.make_instance(ErrorSpec(error_rate=0.08, seed=2))
    assert instance.injected_errors > 0
    assert abs(instance.error_rate - 0.08) < 0.02
    assert not instance.dirty.equals(instance.clean)
    # ground truth restores the clean table exactly
    assert instance.ground_truth.clean_table(instance.dirty).equals(instance.clean)


def test_registry_lookup_and_errors():
    # the canonical trio is always present; plug-ins (e.g. the streaming
    # demo workload) may add more via register_workload
    assert {"hai", "car", "tpch"} <= set(available_workloads())
    # aliases of one class are collapsed onto their first name
    assert "tpc-h" not in available_workloads()
    generator = get_workload_generator("TPC-H", tuples=100)
    assert isinstance(generator, TPCHWorkloadGenerator)
    assert generator.tuples == 100
    with pytest.raises(KeyError):
        get_workload_generator("unknown")


def test_generator_validation():
    with pytest.raises(ValueError):
        HAIWorkloadGenerator(tuples=0)
