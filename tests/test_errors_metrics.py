"""Unit and property tests for error injection, ground truth and metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import ErrorType, GroundTruth, InjectedError
from repro.errors.injector import ErrorInjector, ErrorSpec
from repro.metrics.accuracy import RepairAccuracy, evaluate_repair
from repro.metrics.component import ComponentAccuracy, StageCounts
from repro.metrics.timing import Stopwatch, TimingBreakdown


def small_table(rows: int = 40) -> Table:
    return Table.from_records(
        [
            {"A": f"value-{i % 7}", "B": f"other-{i % 5}", "C": f"free-{i}"}
            for i in range(rows)
        ]
    )


# ----------------------------------------------------------------------
# ground truth
# ----------------------------------------------------------------------
def test_ground_truth_basics():
    error = InjectedError(Cell(0, "A"), "clean", "dirty", ErrorType.TYPO)
    ledger = GroundTruth([error])
    assert ledger.is_dirty(Cell(0, "A"))
    assert ledger.clean_value(Cell(0, "A")) == "clean"
    assert len(ledger) == 1
    assert ledger.errors_of_type(ErrorType.TYPO) == [error]
    assert ledger.type_counts()[ErrorType.REPLACEMENT] == 0


def test_ground_truth_rejects_duplicate_cell():
    ledger = GroundTruth()
    ledger.add(InjectedError(Cell(0, "A"), "x", "y", ErrorType.TYPO))
    with pytest.raises(ValueError):
        ledger.add(InjectedError(Cell(0, "A"), "x", "z", ErrorType.TYPO))


def test_ground_truth_clean_table_restores_values():
    table = small_table(5)
    dirty = table.copy()
    dirty.set_value(0, "A", "broken")
    ledger = GroundTruth(
        [InjectedError(Cell(0, "A"), table.value(0, "A"), "broken", ErrorType.TYPO)]
    )
    restored = ledger.clean_table(dirty)
    assert restored.value(0, "A") == table.value(0, "A")


def test_ground_truth_merge_disjoint():
    a = GroundTruth([InjectedError(Cell(0, "A"), "x", "y", ErrorType.TYPO)])
    b = GroundTruth([InjectedError(Cell(1, "A"), "x", "y", ErrorType.REPLACEMENT)])
    assert len(a.merge(b)) == 2


# ----------------------------------------------------------------------
# injector
# ----------------------------------------------------------------------
def test_injector_respects_error_rate():
    table = small_table(100)
    result = ErrorInjector(ErrorSpec(error_rate=0.10, seed=1)).inject(table)
    expected = round(0.10 * table.cell_count)
    assert abs(result.injected_count - expected) <= 3  # a few skips are allowed
    assert result.dirty is not table


def test_injector_only_touches_target_attributes():
    table = small_table(60)
    spec = ErrorSpec(error_rate=0.1, attributes=["A"], seed=2)
    result = ErrorInjector(spec).inject(table)
    assert all(error.cell.attribute == "A" for error in result.ground_truth)
    for row in result.dirty:
        assert row["B"] == table.row(row.tid)["B"]


def test_injector_replacement_values_stay_in_domain():
    table = small_table(80)
    spec = ErrorSpec(error_rate=0.1, replacement_ratio=1.0, seed=3)
    result = ErrorInjector(spec).inject(table)
    domains = {a: set(table.domain(a).values) for a in table.schema}
    for error in result.ground_truth:
        if error.error_type is ErrorType.REPLACEMENT:
            assert error.dirty_value in domains[error.cell.attribute]
            assert error.dirty_value != error.clean_value


def test_injector_typos_shorter_by_one():
    table = small_table(80)
    spec = ErrorSpec(error_rate=0.1, replacement_ratio=0.0, seed=4)
    result = ErrorInjector(spec).inject(table)
    assert result.injected_count > 0
    for error in result.ground_truth:
        assert error.error_type is ErrorType.TYPO
        assert len(error.dirty_value) == len(error.clean_value) - 1


def test_injector_zero_rate():
    result = ErrorInjector(ErrorSpec(error_rate=0.0)).inject(small_table(10))
    assert result.injected_count == 0
    assert result.achieved_error_rate == 0.0


def test_error_spec_validation():
    with pytest.raises(ValueError):
        ErrorSpec(error_rate=1.5)
    with pytest.raises(ValueError):
        ErrorSpec(replacement_ratio=-0.1)


def test_injector_rule_attribute_targeting(sample_table, sample_rules):
    spec = ErrorSpec(error_rate=0.2, seed=5)
    result = ErrorInjector(spec).inject(sample_table, sample_rules)
    rule_attrs = {a for rule in sample_rules for a in rule.attributes}
    assert set(result.target_attributes) == rule_attrs


@settings(max_examples=25, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=0.3),
    ratio=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_injector_ledger_matches_dirty_table(rate, ratio, seed):
    """Every recorded error matches the dirty table; untouched cells are clean."""
    table = small_table(30)
    result = ErrorInjector(ErrorSpec(error_rate=rate, replacement_ratio=ratio, seed=seed)).inject(table)
    for error in result.ground_truth:
        assert result.dirty.cell_value(error.cell) == error.dirty_value
        assert table.cell_value(error.cell) == error.clean_value
        assert error.dirty_value != error.clean_value
    dirty_cells = result.ground_truth.dirty_cells
    for cell in table.cells():
        if cell not in dirty_cells:
            assert result.dirty.cell_value(cell) == table.cell_value(cell)


# ----------------------------------------------------------------------
# repair accuracy
# ----------------------------------------------------------------------
def test_evaluate_repair_perfect_fix():
    clean = small_table(10)
    dirty = clean.copy()
    dirty.set_value(0, "A", "broken")
    ledger = GroundTruth(
        [InjectedError(Cell(0, "A"), clean.value(0, "A"), "broken", ErrorType.TYPO)]
    )
    accuracy = evaluate_repair(dirty, clean.copy(), ledger)
    assert accuracy.precision == 1.0
    assert accuracy.recall == 1.0
    assert accuracy.f1 == 1.0


def test_evaluate_repair_no_repairs():
    clean = small_table(10)
    dirty = clean.copy()
    dirty.set_value(0, "A", "broken")
    ledger = GroundTruth(
        [InjectedError(Cell(0, "A"), clean.value(0, "A"), "broken", ErrorType.TYPO)]
    )
    accuracy = evaluate_repair(dirty, dirty.copy(), ledger)
    assert accuracy.recall == 0.0
    assert accuracy.missed_errors == 1


def test_evaluate_repair_false_update_hurts_precision():
    clean = small_table(10)
    dirty = clean.copy()
    dirty.set_value(0, "A", "broken")
    ledger = GroundTruth(
        [InjectedError(Cell(0, "A"), clean.value(0, "A"), "broken", ErrorType.TYPO)]
    )
    repaired = clean.copy()
    repaired.set_value(1, "B", "wrong-change")
    accuracy = evaluate_repair(dirty, repaired, ledger)
    assert accuracy.false_updates == 1
    assert accuracy.precision == pytest.approx(0.5)
    assert accuracy.recall == 1.0


def test_evaluate_repair_removed_tuples_counted():
    clean = small_table(10)
    dirty = clean.copy()
    dirty.set_value(0, "A", "broken")
    ledger = GroundTruth(
        [InjectedError(Cell(0, "A"), clean.value(0, "A"), "broken", ErrorType.TYPO)]
    )
    repaired = dirty.copy()
    repaired.remove(0)
    accuracy = evaluate_repair(dirty, repaired, ledger)
    assert accuracy.removed_dirty_cells == 1
    assert accuracy.erroneous_cells == 0


def test_repair_accuracy_edge_cases():
    empty = RepairAccuracy()
    assert empty.precision == 1.0
    assert empty.recall == 1.0
    assert empty.f1 == 1.0
    assert set(empty.as_dict()) >= {"precision", "recall", "f1"}


# ----------------------------------------------------------------------
# component metrics and timing
# ----------------------------------------------------------------------
def test_component_accuracy_ratios():
    counts = StageCounts(
        detected_abnormal_groups=10,
        real_abnormal_groups=8,
        correctly_merged_groups=6,
        detected_abnormal_gammas=15,
        repaired_gammas=20,
        correctly_repaired_gammas=16,
        erroneous_gammas=18,
        fscr_correct_values=30,
        conflict_erroneous_values=10,
        conflict_correct_values=9,
        total_erroneous_values=40,
    )
    accuracy = ComponentAccuracy(counts)
    assert accuracy.precision_a == pytest.approx(0.6)
    assert accuracy.recall_a == pytest.approx(0.75)
    assert accuracy.detected_abnormal_gammas == 15
    assert accuracy.precision_r == pytest.approx(0.8)
    assert accuracy.recall_r == pytest.approx(16 / 18)
    assert accuracy.precision_f == pytest.approx(0.9)
    assert accuracy.recall_f == pytest.approx(0.75)


def test_component_accuracy_defaults():
    accuracy = ComponentAccuracy()
    assert accuracy.precision_a == 0.0
    assert accuracy.recall_a == 1.0
    assert accuracy.precision_r == 1.0
    assert accuracy.recall_f == 1.0


def test_stage_counts_merge():
    merged = StageCounts(repaired_gammas=2).merge(StageCounts(repaired_gammas=3))
    assert merged.repaired_gammas == 5


def test_stopwatch_and_breakdown():
    watch = Stopwatch()
    with watch.measure():
        pass
    assert watch.elapsed >= 0.0
    with pytest.raises(RuntimeError):
        Stopwatch().stop()

    breakdown = TimingBreakdown()
    with breakdown.time("phase"):
        pass
    breakdown.record("phase", 1.0)
    assert breakdown.total >= 1.0
    assert breakdown.fraction("phase") == pytest.approx(1.0)
    merged = breakdown.merge(TimingBreakdown({"other": 2.0}))
    assert merged.phases["other"] == 2.0
