"""Unit and property tests for the distributed MLNClean components."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MLNCleanConfig
from repro.dataset.table import Table
from repro.distributed.driver import DistributedMLNClean
from repro.distributed.executor import SimulatedCluster
from repro.distributed.partition import DataPartitioner, hash_partition
from repro.distributed.weights import GlobalWeightStore, fuse_weights


def toy_table(rows: int = 40) -> Table:
    return Table.from_records(
        [{"K": f"key-{i % 5}", "V": f"val-{i % 5}", "N": str(i)} for i in range(rows)]
    )


# ----------------------------------------------------------------------
# partitioner (Algorithm 3)
# ----------------------------------------------------------------------
def test_partition_respects_capacity():
    table = toy_table(41)
    result = DataPartitioner(parts=4, seed=1).partition(table)
    assert len(result.partitions) == 4
    assert result.capacity == 11
    assert all(size <= result.capacity for size in result.sizes)


def test_partition_covers_every_tuple_exactly_once():
    table = toy_table(37)
    result = DataPartitioner(parts=3, seed=2).partition(table)
    all_tids = [tid for part in result.partitions for tid in part.member_tids]
    assert sorted(all_tids) == table.tids


def test_partition_tables_preserve_tids():
    table = toy_table(20)
    result = DataPartitioner(parts=2, seed=3).partition(table)
    tables = result.tables(table)
    assert sum(len(t) for t in tables) == len(table)
    for part_table in tables:
        for row in part_table:
            assert row.as_dict() == table.row(row.tid).as_dict()


def test_partition_single_part_and_empty():
    table = toy_table(5)
    single = DataPartitioner(parts=1).partition(table)
    assert single.sizes == [5]
    more_parts_than_rows = DataPartitioner(parts=10).partition(toy_table(3))
    assert len(more_parts_than_rows.partitions) == 3
    empty = DataPartitioner(parts=3).partition(Table.from_records([{"A": "x"}]).subset([]))
    assert empty.partitions == []


def test_partition_validation():
    with pytest.raises(ValueError):
        DataPartitioner(parts=0)


def test_hash_partition_round_robin():
    table = toy_table(10)
    result = hash_partition(table, 3)
    assert sorted(tid for p in result.partitions for tid in p.member_tids) == table.tids
    assert max(result.sizes) - min(result.sizes) <= 1
    with pytest.raises(ValueError):
        hash_partition(table, 0)


@settings(max_examples=20, deadline=None)
@given(rows=st.integers(min_value=1, max_value=60), parts=st.integers(min_value=1, max_value=8))
def test_partition_invariants(rows, parts):
    table = toy_table(rows)
    result = DataPartitioner(parts=parts, seed=7).partition(table)
    collected = sorted(tid for p in result.partitions for tid in p.member_tids)
    assert collected == table.tids
    assert all(size <= result.capacity + 1 for size in result.sizes)
    assert len(result.partitions) == min(parts, rows)


# ----------------------------------------------------------------------
# weight fusion (Eq. 6)
# ----------------------------------------------------------------------
def test_global_weight_store_weighted_average():
    store = GlobalWeightStore()
    key = ("r1", ("BOAZ",), ("AL",))
    store.record(key, support=3, weight=1.0)
    store.record(key, support=1, weight=5.0)
    assert store.weight(key) == pytest.approx((3 * 1.0 + 1 * 5.0) / 4)
    assert store.support(key) == 4
    assert store.weight(("r1", ("X",), ("Y",))) == 0.0


def test_fuse_weights_across_partitions():
    key = ("r1", ("A",), ("B",))
    store = fuse_weights(
        [{key: (2, 1.0)}, {key: (2, 3.0)}, {("r1", ("C",), ("D",)): (1, 7.0)}]
    )
    assert store.weight(key) == pytest.approx(2.0)
    assert len(store) == 2


def test_weight_store_rejects_negative_support():
    with pytest.raises(ValueError):
        GlobalWeightStore().record(("r", (), ()), support=-1, weight=1.0)


# ----------------------------------------------------------------------
# simulated cluster
# ----------------------------------------------------------------------
def test_cluster_map_and_timings():
    cluster = SimulatedCluster(workers=2)
    results = cluster.map("square", lambda x: x * x, [1, 2, 3, 4])
    assert [r.value for r in results] == [1, 4, 9, 16]
    phase = cluster.phase("square")
    assert len(phase.per_worker_seconds) == 2
    assert cluster.makespan_seconds <= cluster.sequential_seconds + 1e-9
    with pytest.raises(KeyError):
        cluster.phase("missing")
    with pytest.raises(ValueError):
        SimulatedCluster(workers=0)


# ----------------------------------------------------------------------
# distributed driver
# ----------------------------------------------------------------------
def test_distributed_single_worker_matches_standalone(sample_table, sample_rules, sample_ground_truth):
    from repro.core.pipeline import MLNClean

    config = MLNCleanConfig(abnormal_threshold=1)
    standalone = MLNClean(config).clean(sample_table, sample_rules, sample_ground_truth)
    distributed = DistributedMLNClean(workers=1, config=config).clean(
        sample_table, sample_rules, sample_ground_truth
    )
    assert distributed.repaired.equals(standalone.repaired)
    assert distributed.f1 == pytest.approx(standalone.accuracy.f1)


def test_distributed_on_workload(hai_instance):
    config = MLNCleanConfig.for_dataset("hai")
    report = DistributedMLNClean(workers=2, config=config).clean(
        hai_instance.dirty, hai_instance.rules, hai_instance.ground_truth
    )
    assert report.accuracy is not None
    assert report.f1 > 0.4
    assert report.workers == 2
    assert sorted(
        tid for part in report.partition.partitions for tid in part.member_tids
    ) == hai_instance.dirty.tids
    assert report.runtime > 0
    assert report.sequential_runtime >= report.runtime
    assert report.speedup >= 1.0


def test_distributed_requires_rules_and_workers(sample_table, sample_rules):
    with pytest.raises(ValueError):
        DistributedMLNClean(workers=0)
    with pytest.raises(ValueError):
        DistributedMLNClean(workers=2).clean(sample_table, [])


def test_distributed_dedup_disabled(sample_table, sample_rules):
    config = MLNCleanConfig(abnormal_threshold=1, remove_duplicates=False)
    report = DistributedMLNClean(workers=2, config=config).clean(sample_table, sample_rules)
    assert len(report.cleaned) == len(sample_table)


def test_distributed_keeps_input_unchanged(sample_table, sample_rules):
    snapshot = sample_table.copy()
    DistributedMLNClean(workers=2, config=MLNCleanConfig(abnormal_threshold=1)).clean(
        sample_table, sample_rules
    )
    assert sample_table.equals(snapshot)
