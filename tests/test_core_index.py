"""Unit and property tests for the MLN index (blocks, groups, γs)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.rules import FunctionalDependency
from repro.core.config import MLNCleanConfig
from repro.core.index import DataPiece, Group, MLNIndex
from repro.dataset.table import Table
from repro.errors.injector import ErrorInjector, ErrorSpec


def test_index_one_block_per_rule(sample_table, sample_rules):
    index = MLNIndex.build(sample_table, sample_rules)
    assert len(index) == len(sample_rules)
    assert set(index.blocks) == {"r1", "r2", "r3"}


def test_index_matches_figure2(sample_table, sample_rules):
    """The sample index has 3 / 3 / 2 groups in blocks B1 / B2 / B3."""
    index = MLNIndex.build(sample_table, sample_rules)
    assert len(index.block("r1").groups) == 3
    assert len(index.block("r2").groups) == 3
    assert len(index.block("r3").groups) == 2


def test_cfd_block_skips_uncovered_tuples(sample_table, sample_rules):
    index = MLNIndex.build(sample_table, sample_rules)
    covered_tids = sorted(
        tid for group in index.block("r3").group_list for tid in group.tids
    )
    assert covered_tids == [2, 3, 4, 5]


def test_group_representative_is_highest_support(sample_table, sample_rules):
    index = MLNIndex.build(sample_table, sample_rules)
    group = index.block("r1").groups[("BOAZ",)]
    representative = group.representative()
    assert representative.result_values == ("AL",)
    assert representative.support == 2


def test_piece_assignment_and_values(sample_table, sample_rules):
    index = MLNIndex.build(sample_table, sample_rules)
    piece = index.block("r1").groups[("DOTH",)].gammas[0]
    assert piece.as_assignment() == {"CT": "DOTH", "ST": "AL"}
    assert piece.values == ("DOTH", "AL")
    assert piece.key == (("DOTH",), ("AL",))


def test_block_lookup_helpers(sample_table, sample_rules):
    block = MLNIndex.build(sample_table, sample_rules).block("r1")
    assert block.group_of_tid(1).key == ("DOTH",)
    assert block.piece_of_tid(1).reason_values == ("DOTH",)
    assert block.group_of_tid(999) is None
    assert block.piece_of_tid(999) is None


def test_block_attributes_order(sample_rules):
    block_rule = sample_rules[2]
    assert block_rule.reason_attributes + block_rule.result_attributes == [
        "HN",
        "CT",
        "PN",
    ]


def test_group_add_piece_merges_same_key():
    rule = FunctionalDependency(["A"], ["B"])
    group = Group(("x",))
    group.add_piece(DataPiece(rule, ("x",), ("y",), tids=[0]))
    group.add_piece(DataPiece(rule, ("x",), ("y",), tids=[1]))
    assert group.size == 1
    assert group.tuple_count == 2


def test_empty_group_representative_raises():
    with pytest.raises(ValueError):
        Group(("x",)).representative()


def test_index_statistics(sample_table, sample_rules):
    stats = MLNIndex.build(sample_table, sample_rules).statistics()
    assert stats["r1"]["tuples"] == 6
    assert stats["r1"]["gammas"] == 4
    assert stats["r3"]["tuples"] == 4


def test_config_validation():
    with pytest.raises(ValueError):
        MLNCleanConfig(abnormal_threshold=-1)
    with pytest.raises(KeyError):
        MLNCleanConfig(distance_metric="not-a-metric")
    with pytest.raises(ValueError):
        MLNCleanConfig(fscr_exhaustive_limit=0)
    with pytest.raises(ValueError):
        MLNCleanConfig(fscr_minimality_bias=-1)


def test_config_for_dataset_thresholds():
    assert MLNCleanConfig.for_dataset("car").abnormal_threshold == 1
    assert MLNCleanConfig.for_dataset("HAI").abnormal_threshold == 10
    assert MLNCleanConfig.for_dataset("tpch").abnormal_threshold == 2
    assert MLNCleanConfig.for_dataset("hospital-sample").abnormal_threshold == 1
    overridden = MLNCleanConfig.for_dataset("hai", distance_metric="cosine")
    assert overridden.distance_metric == "cosine"


def test_config_for_unknown_dataset_warns():
    # the per-dataset τ table lives in the workload registry now; unknown
    # names fall back to the defaults loudly instead of silently
    with pytest.warns(UserWarning, match="no workload registered"):
        config = MLNCleanConfig.for_dataset("unknown")
    assert config.abnormal_threshold == 1


# ----------------------------------------------------------------------
# invariants (property-based)
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=60),
    error_rate=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=100),
)
def test_index_invariants_random_tables(rows, error_rate, seed):
    """Every tuple appears exactly once per FD block; groups key on reason values."""
    clean = Table.from_records(
        [{"K": f"k{i % 7}", "V": f"v{i % 7}", "O": str(i)} for i in range(rows)]
    )
    rule = FunctionalDependency(["K"], ["V"], name="fd")
    dirty = ErrorInjector(ErrorSpec(error_rate=error_rate, seed=seed)).inject(
        clean, [rule]
    ).dirty
    index = MLNIndex.build(dirty, [rule])
    block = index.block("fd")
    seen = []
    for key, group in block.groups.items():
        for piece in group.gammas:
            assert piece.reason_values == key or piece.key[0] == piece.reason_values
            seen.extend(piece.tids)
    assert sorted(seen) == sorted(dirty.tids)
    # support accounting is consistent
    assert sum(group.tuple_count for group in block.group_list) == len(dirty)
