"""Shared fixtures for the test suite.

The expensive fixtures (synthetic workloads) are session-scoped and kept
small: the tests exercise behaviour and invariants, not statistical quality,
so a few hundred tuples per workload keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.config import MLNCleanConfig
from repro.dataset.sample import (
    sample_hospital_clean_table,
    sample_hospital_rules,
    sample_hospital_table,
)
from repro.dataset.table import Cell
from repro.errors.groundtruth import ErrorType, GroundTruth, InjectedError
from repro.errors.injector import ErrorSpec
from repro.workloads.car import CarWorkloadGenerator
from repro.workloads.hai import HAIWorkloadGenerator
from repro.workloads.tpch import TPCHWorkloadGenerator


@pytest.fixture
def sample_table():
    """The dirty hospital sample of Table 1 (tids 0-5)."""
    return sample_hospital_table()


@pytest.fixture
def sample_clean_table():
    return sample_hospital_clean_table()


@pytest.fixture
def sample_rules():
    """The rules r1 (FD), r2 (DC), r3 (CFD) of Example 1."""
    return sample_hospital_rules()


@pytest.fixture
def sample_ground_truth():
    """The injected-error ledger matching the sample's known dirty cells."""
    return GroundTruth(
        [
            InjectedError(Cell(1, "CT"), "DOTHAN", "DOTH", ErrorType.TYPO),
            InjectedError(Cell(2, "CT"), "BOAZ", "DOTHAN", ErrorType.REPLACEMENT),
            InjectedError(Cell(2, "PN"), "2567688400", "2567638410", ErrorType.REPLACEMENT),
            InjectedError(Cell(3, "ST"), "AL", "AK", ErrorType.REPLACEMENT),
        ]
    )


@pytest.fixture
def sample_config():
    return MLNCleanConfig(abnormal_threshold=1)


@pytest.fixture(scope="session")
def car_workload():
    return CarWorkloadGenerator(tuples=450, seed=3).build()


@pytest.fixture(scope="session")
def hai_workload():
    return HAIWorkloadGenerator(tuples=600, seed=3).build()


@pytest.fixture(scope="session")
def tpch_workload():
    return TPCHWorkloadGenerator(tuples=500, seed=3).build()


@pytest.fixture(scope="session")
def hai_instance(hai_workload):
    """A dirty HAI instance with 5% errors."""
    return hai_workload.make_instance(ErrorSpec(error_rate=0.05, seed=11))


@pytest.fixture(scope="session")
def car_instance(car_workload):
    return car_workload.make_instance(ErrorSpec(error_rate=0.05, seed=11))
