"""Unit tests for rules, predicates, parsing and violation detection."""

import pytest

from repro.constraints.predicates import Comparison, Predicate
from repro.constraints.parser import RuleParseError, parse_rule, parse_rules
from repro.constraints.rules import (
    ConditionalFunctionalDependency,
    DenialConstraint,
    FunctionalDependency,
)
from repro.constraints.violations import (
    detect_violations,
    is_consistent,
    violating_cells,
    violating_tids,
    violation_summary,
)
from repro.dataset.table import Cell, Table


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
def test_comparison_operators():
    assert Comparison.EQ.evaluate("A", "A")
    assert Comparison.NEQ.evaluate("A", "B")
    assert Comparison.LT.evaluate("2", "10")  # numeric ordering
    assert Comparison.GT.evaluate("B", "A")  # lexicographic fallback
    assert Comparison.EQ.negated() is Comparison.NEQ
    assert Comparison.LT.negated() is Comparison.GTE


def test_predicate_requires_exactly_one_rhs():
    with pytest.raises(ValueError):
        Predicate("A", Comparison.EQ)
    with pytest.raises(ValueError):
        Predicate("A", Comparison.EQ, right_attribute="B", constant="x")


def test_predicate_holds_pairwise_and_constant():
    pairwise = Predicate("PN", Comparison.EQ, right_attribute="PN")
    assert pairwise.holds({"PN": "1"}, {"PN": "1"})
    assert not pairwise.holds({"PN": "1"}, {"PN": "2"})
    with pytest.raises(ValueError):
        pairwise.holds({"PN": "1"})
    constant = Predicate("CT", Comparison.EQ, constant="BOAZ", pairwise=False)
    assert constant.holds({"CT": "BOAZ"})


# ----------------------------------------------------------------------
# FD
# ----------------------------------------------------------------------
def test_fd_reason_result_and_validation():
    fd = FunctionalDependency(["CT"], ["ST"])
    assert fd.reason_attributes == ["CT"]
    assert fd.result_attributes == ["ST"]
    assert fd.attributes == ["CT", "ST"]
    with pytest.raises(ValueError):
        FunctionalDependency(["A"], ["A"])
    with pytest.raises(ValueError):
        FunctionalDependency([], ["A"])


def test_fd_violations(sample_table):
    fd = FunctionalDependency(["CT"], ["ST"], name="r1")
    violations = fd.violations(sample_table)
    assert len(violations) == 1
    assert set(violations[0].tids) == {3, 4, 5}
    assert not fd.is_satisfied(sample_table)


def test_fd_covers_everything(sample_table):
    fd = FunctionalDependency(["CT"], ["ST"])
    assert all(fd.covers(row.as_dict()) for row in sample_table)


def test_fd_mln_string():
    fd = FunctionalDependency(["CT"], ["ST"])
    assert fd.to_mln_string() == "¬CT ∨ ST"


# ----------------------------------------------------------------------
# CFD
# ----------------------------------------------------------------------
def test_cfd_coverage_partial_constant_match(sample_table):
    cfd = ConditionalFunctionalDependency(
        conditions={"HN": "ELIZA", "CT": "BOAZ"},
        consequents={"PN": "2567688400"},
    )
    covered = [row.tid for row in sample_table if cfd.covers(row.as_dict())]
    # t3 (HN ELIZA, CT DOTHAN) is covered via the HN constant; t1/t2 are not.
    assert covered == [2, 3, 4, 5]


def test_cfd_violations_constant_consequent():
    table = Table.from_records(
        [
            {"HN": "ELIZA", "CT": "BOAZ", "PN": "111"},
            {"HN": "ELIZA", "CT": "BOAZ", "PN": "2567688400"},
        ]
    )
    cfd = ConditionalFunctionalDependency(
        conditions={"HN": "ELIZA", "CT": "BOAZ"},
        consequents={"PN": "2567688400"},
    )
    violations = cfd.violations(table)
    assert len(violations) == 1
    assert violations[0].suspect_cells == (Cell(0, "PN"),)


def test_cfd_variable_consequent_behaves_like_restricted_fd():
    table = Table.from_records(
        [
            {"Make": "acura", "Type": "sedan", "Doors": "4"},
            {"Make": "acura", "Type": "sedan", "Doors": "2"},
            {"Make": "ford", "Type": "sedan", "Doors": "3"},
        ]
    )
    cfd = ConditionalFunctionalDependency(
        conditions={"Make": "acura", "Type": None}, consequents={"Doors": None}
    )
    violations = cfd.violations(table)
    assert len(violations) == 1
    assert set(violations[0].tids) == {0, 1}


def test_cfd_rejects_overlap_and_empty():
    with pytest.raises(ValueError):
        ConditionalFunctionalDependency({"A": "x"}, {"A": None})
    with pytest.raises(ValueError):
        ConditionalFunctionalDependency({}, {"A": None})


# ----------------------------------------------------------------------
# DC
# ----------------------------------------------------------------------
def test_dc_reason_result_split():
    dc = DenialConstraint.pairwise_equality_implies_equality("PN", "ST")
    assert dc.reason_attributes == ["PN"]
    assert dc.result_attributes == ["ST"]


def test_dc_violations(sample_table):
    dc = DenialConstraint.pairwise_equality_implies_equality("PN", "ST", name="r2")
    violations = dc.violations(sample_table)
    pairs = {tuple(sorted(v.tids)) for v in violations}
    assert pairs == {(2, 3), (2, 4)} or pairs == {(3, 4), (3, 5)}


def test_dc_requires_two_predicates():
    with pytest.raises(ValueError):
        DenialConstraint([Predicate("A", Comparison.EQ, right_attribute="A")])


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def test_parse_fd():
    rule = parse_rule("PhoneNumber -> ZIPCode")
    assert isinstance(rule, FunctionalDependency)
    assert rule.determinant == ["PhoneNumber"]


def test_parse_fd_multiple_rhs():
    rule = parse_rule("ProviderID -> City, PhoneNumber")
    assert rule.result_attributes == ["City", "PhoneNumber"]


def test_parse_cfd_with_constants():
    rule = parse_rule("Make=acura, Type -> Doors")
    assert isinstance(rule, ConditionalFunctionalDependency)
    assert rule.constant_conditions == {"Make": "acura"}
    assert rule.result_attributes == ["Doors"]


def test_parse_dc():
    rule = parse_rule("DC: PN(t1)=PN(t2) & ST(t1)!=ST(t2)")
    assert isinstance(rule, DenialConstraint)
    assert rule.reason_attributes == ["PN"]
    assert rule.result_attributes == ["ST"]


def test_parse_dc_with_constant_predicate():
    rule = parse_rule("DC: State(t1)=State(t2) & Score(t1)>100")
    assert isinstance(rule, DenialConstraint)
    assert rule.result_predicate.constant == "100"


def test_parse_rules_names():
    rules = parse_rules(["A -> B", "B -> C"])
    assert [rule.name for rule in rules] == ["r1", "r2"]


@pytest.mark.parametrize("bad", ["", "no arrow here", "DC: only-one-term(t1)=x"])
def test_parse_errors(bad):
    with pytest.raises(RuleParseError):
        parse_rule(bad)


# ----------------------------------------------------------------------
# violation helpers
# ----------------------------------------------------------------------
def test_violation_helpers(sample_table, sample_rules):
    violations = detect_violations(sample_table, sample_rules)
    assert violations
    cells = violating_cells(sample_table, sample_rules)
    assert all(isinstance(cell, Cell) for cell in cells)
    tids = violating_tids(sample_table, sample_rules)
    assert tids <= set(sample_table.tids)
    summary = violation_summary(sample_table, sample_rules)
    assert summary["r1"] == 1
    assert not is_consistent(sample_table, sample_rules)


def test_clean_sample_has_no_violations(sample_clean_table, sample_rules):
    assert is_consistent(sample_clean_table, sample_rules)
