"""The perf subsystem: distance engine, fast paths, parallel Stage I.

The load-bearing properties:

* ``bounded_distance(l, r, c)`` equals the exact distance whenever that
  distance is ``≤ c`` (and exceeds ``c`` otherwise) — this is what makes the
  best-so-far searches in AGP and RSC bit-identical to exhaustive scans,
* cache-enabled and cache-disabled runs produce identical cleaned tables,
* ``parallelism=2`` batch output equals serial output (table + F1) on every
  registered workload,
* re-cleaning an unchanged block through a shared engine re-runs no raw
  metric evaluations (the streaming-replay regression).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MLNCleanConfig
from repro.core.index import MLNIndex
from repro.core.pipeline import MLNClean
from repro.core.rsc import ReliabilityScoreCleaner
from repro.distance import (
    CosineDistance,
    DamerauLevenshteinDistance,
    LevenshteinDistance,
)
from repro.distance.fastpath import (
    bounded_levenshtein,
    strip_common_affixes,
    trivial_edit_distance,
)
from repro.distributed.driver import merge_stage_outcomes
from repro.errors.injector import ErrorSpec
from repro.experiments.harness import session_for_instance
from repro.metrics.timing import PerfDetails
from repro.perf import DistanceEngine, DistanceStats, global_distance_stats
from repro.perf.parallel import clean_blocks_parallel
from repro.streaming import DeltaBatch, StreamingMLNClean, TumblingWindow
from repro.workloads.registry import available_workloads, get_workload_generator

short_text = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122), max_size=12
)
cutoffs = st.one_of(
    st.integers(min_value=0, max_value=14).map(float),
    st.floats(min_value=0.0, max_value=14.0, allow_nan=False),
)


def tables_equal(left, right):
    if sorted(left.tids) != sorted(right.tids):
        return False
    return all(
        left.row(tid).as_dict() == right.row(tid).as_dict() for tid in left.tids
    )


def small_instance(name, tuples=90, error_rate=0.08, seed=13):
    workload = get_workload_generator(name, tuples=tuples, seed=7).build()
    return workload.make_instance(ErrorSpec(error_rate=error_rate, seed=seed))


# ----------------------------------------------------------------------
# fast paths
# ----------------------------------------------------------------------
@given(short_text, short_text)
def test_affix_stripping_preserves_levenshtein(left, right):
    stripped_left, stripped_right = strip_common_affixes(left, right)
    metric = LevenshteinDistance()
    assert metric.distance(left, right) == metric.distance(
        stripped_left, stripped_right
    )


@given(short_text, short_text)
def test_damerau_fastpath_matches_full_dp(left, right):
    # The routed distance (affix strip + trivial cases) must equal the naive
    # full-matrix dynamic program — the like-with-like guarantee of the
    # Table-5 ablation.
    assert DamerauLevenshteinDistance().distance(
        left, right
    ) == DamerauLevenshteinDistance._dp_distance(left, right)


@given(short_text, short_text)
def test_levenshtein_fastpath_matches_full_dp(left, right):
    routed = LevenshteinDistance().distance(left, right)
    if left and right:
        assert routed == LevenshteinDistance._dp_distance(left, right)
    else:
        assert routed == float(len(left) + len(right))


@given(short_text, short_text, cutoffs)
def test_bounded_distance_exact_iff_within_cutoff(left, right, cutoff):
    engine = DistanceEngine(LevenshteinDistance(), cache=False)
    exact = LevenshteinDistance().distance(left, right)
    bounded = engine.bounded_distance(left, right, cutoff)
    if exact <= cutoff:
        assert bounded == exact
    else:
        assert bounded > cutoff
        assert bounded <= exact  # the not-exact value is a true lower bound


@given(short_text, short_text, st.integers(min_value=0, max_value=10))
def test_bounded_levenshtein_helper_contract(left, right, radius):
    stripped = strip_common_affixes(left, right)
    if trivial_edit_distance(*stripped) is not None:
        return
    value, exact = bounded_levenshtein(stripped[0], stripped[1], radius)
    true_distance = LevenshteinDistance._dp_distance(*stripped)
    if true_distance <= radius:
        assert exact and value == true_distance
    else:
        assert not exact and radius < value <= true_distance


def test_bounded_distance_caches_exact_and_lower_bounds():
    engine = DistanceEngine(LevenshteinDistance())
    assert engine.bounded_distance("kitten", "sitting", 1.0) > 1.0
    assert engine.stats.band_prunes + engine.stats.length_prunes == 1
    # the lower bound answers a repeat of the too-tight query from cache ...
    assert engine.bounded_distance("kitten", "sitting", 1.0) > 1.0
    assert engine.stats.lower_bound_hits == 1
    # ... but a wider cutoff recomputes and gets the exact value
    assert engine.bounded_distance("kitten", "sitting", 5.0) == 3.0
    assert engine.distance("kitten", "sitting") == 3.0
    assert engine.stats.cache_hits >= 2


# ----------------------------------------------------------------------
# the engine: cache, interning, values_distance
# ----------------------------------------------------------------------
def test_values_distance_matches_metric_bit_for_bit():
    metric = CosineDistance()
    engine = DistanceEngine(metric)
    left = ("DOTHAN", "AL", "2567938400")
    right = ("DOTH", "AK", "2567938411")
    assert engine.values_distance(left, right) == metric.values_distance(left, right)
    # cached second ask returns the identical floats
    assert engine.values_distance(left, right) == metric.values_distance(left, right)
    assert engine.stats.cache_hits == 3


def test_values_distance_cutoff_short_circuits_exactly():
    engine = DistanceEngine(LevenshteinDistance())
    left = ("AAAA", "BBBB", "CCCC")
    right = ("AXAA", "BXBB", "CXCC")  # true per-pair distance 1 each
    assert engine.values_distance(left, right, cutoff=3.0) == 3.0
    assert engine.values_distance(left, right, cutoff=2.0) > 2.0
    # mismatched tuple lengths are rejected like the metric rejects them
    with pytest.raises(ValueError):
        engine.values_distance(("a",), ("a", "b"))


def test_cache_hit_statistics_and_symmetry():
    engine = DistanceEngine(LevenshteinDistance())
    assert engine.distance("DOTHAN", "BOAZ") == engine.distance("BOAZ", "DOTHAN")
    assert engine.stats.calls == 2
    assert engine.stats.cache_hits == 1  # symmetric pair served from cache
    assert engine.stats.raw_evaluations == 1
    assert 0.0 < engine.stats.hit_rate < 1.0


def test_interning_returns_canonical_instances():
    engine = DistanceEngine(LevenshteinDistance())
    first = engine.intern("DOTHAN")
    second = engine.intern("DOTH" + "AN")
    assert first is second
    assert engine.intern_values(["A", "B"]) == ("A", "B")


def test_max_entries_flushes_wholesale():
    engine = DistanceEngine(LevenshteinDistance(), max_entries=2)
    engine.distance("a", "bb")
    engine.distance("a", "ccc")
    engine.distance("a", "dddd")  # exceeds the bound: cache flushed first
    assert engine.stats.cache_evictions == 1
    assert engine.cache_size() == 1
    with pytest.raises(ValueError):
        DistanceEngine(LevenshteinDistance(), max_entries=0)


def test_max_entries_also_bounds_the_lower_bound_cache():
    # Prune-heavy workloads populate the lower-bound side almost
    # exclusively; the bound must count those entries too.
    engine = DistanceEngine(LevenshteinDistance(), max_entries=2)
    engine.bounded_distance("aaaa", "zzzz", 0.0)   # lower bound stored
    engine.bounded_distance("bbbb", "yyyy", 0.0)
    engine.bounded_distance("cccc", "xxxx", 0.0)   # hits the bound: flush
    assert engine.stats.cache_evictions == 1
    assert len(engine._lower) == 1 and engine.cache_size() == 0


def test_release_invalidates_only_dead_values():
    engine = DistanceEngine(LevenshteinDistance(), track_values=True)
    engine.retain(["DOTHAN", "BOAZ"])
    engine.retain(["DOTHAN"])  # second reference from another tuple
    engine.distance("DOTHAN", "BOAZ")
    engine.release(["BOAZ"])  # refcount 0 → pair purged
    assert engine.stats.invalidated_pairs == 1
    assert engine.cache_size() == 0
    engine.distance("DOTHAN", "BOAZ")
    engine.release(["DOTHAN"])  # still referenced once → cache intact
    assert engine.stats.invalidated_pairs == 1
    assert engine.cache_size() == 1


def test_stats_merge_diff_and_absorb():
    stats = DistanceStats(calls=10, cache_hits=4)
    other = DistanceStats(calls=5, cache_hits=1)
    merged = stats.merge(other)
    assert (merged.calls, merged.cache_hits) == (15, 5)
    assert merged.diff(other).calls == 10
    engine = DistanceEngine(LevenshteinDistance())
    before = global_distance_stats()
    engine.absorb_stats(other)
    assert engine.stats.calls == 5
    assert global_distance_stats().diff(before).calls == 5


# ----------------------------------------------------------------------
# equivalence: cache on/off, parallel vs serial
# ----------------------------------------------------------------------
def test_cache_enabled_run_is_bit_identical_to_disabled_on_hospital_sample():
    instance = small_instance("hospital-sample", tuples=60)
    reports = {}
    for cached in (True, False):
        config = MLNCleanConfig(abnormal_threshold=1, distance_cache=cached)
        reports[cached] = session_for_instance(instance, config=config).run()
    assert tables_equal(reports[True].cleaned, reports[False].cleaned)
    assert tables_equal(reports[True].repaired, reports[False].repaired)
    assert reports[True].f1 == reports[False].f1
    assert reports[True].details.distance["cache_hits"] > 0
    assert reports[False].details.distance["cache_hits"] == 0


@pytest.mark.parametrize("workload_name", sorted(available_workloads()))
def test_parallel_two_equals_serial_on_every_workload(workload_name):
    instance = small_instance(workload_name, tuples=80)
    serial = session_for_instance(instance, backend="batch").run()
    parallel = session_for_instance(
        instance, backend="batch", parallelism=2
    ).run()
    assert tables_equal(serial.cleaned, parallel.cleaned)
    assert tables_equal(serial.repaired, parallel.repaired)
    assert serial.f1 == parallel.f1
    # merged stage outcomes match the serial fold
    assert vars(serial.agp.counts) == vars(parallel.agp.counts)
    assert vars(serial.rsc.counts) == vars(parallel.rsc.counts)
    assert len(serial.rsc.repairs) == len(parallel.rsc.repairs)
    assert parallel.details.parallelism == 2


def test_parallel_stage_one_rejects_custom_stage_orders():
    with pytest.raises(ValueError, match="default stage order"):
        MLNClean(stages=["agp", "fscr"], parallelism=2)
    with pytest.raises(ValueError):
        MLNClean(parallelism=0)


def test_clean_blocks_parallel_in_process_reuses_shared_engine(
    sample_table, sample_rules
):
    config = MLNCleanConfig(abnormal_threshold=1)
    blocks = MLNIndex.build(sample_table, sample_rules).block_list
    shared = DistanceEngine.from_config(config)
    results, pooled = clean_blocks_parallel(
        blocks, config, None, parallelism=1, engine=shared
    )
    assert pooled is False
    assert shared.stats.calls > 0  # the fallback went through the shared cache
    # per-result stats stay empty so a later fold cannot double count
    assert all(result.stats.calls == 0 for result in results)


def test_clean_blocks_parallel_preserves_block_order(sample_table, sample_rules):
    config = MLNCleanConfig(abnormal_threshold=1)
    blocks = MLNIndex.build(sample_table, sample_rules).block_list
    results, pooled = clean_blocks_parallel(blocks, config, None, parallelism=2)
    assert [result.block.name for result in results] == [b.name for b in blocks]
    agp, rsc = merge_stage_outcomes(
        (result.agp for result in results), (result.rsc for result in results)
    )
    assert agp.detected_abnormal_groups == sum(
        result.agp.detected_abnormal_groups for result in results
    )
    assert rsc.cleaned_groups == sum(result.rsc.cleaned_groups for result in results)


# ----------------------------------------------------------------------
# report surfacing
# ----------------------------------------------------------------------
def test_batch_report_surfaces_perf_details():
    instance = small_instance("hospital-sample", tuples=48)
    report = session_for_instance(instance).run()
    details = report.details
    assert isinstance(details, PerfDetails)
    assert set(details.timings) >= {"index", "agp", "rsc", "fscr"}
    assert details.distance["calls"] > 0
    assert "hit rate" in details.describe()
    assert details.as_dict()["parallelism"] == 1


def test_distributed_report_carries_stage_outcomes_and_stats():
    instance = small_instance("hospital-sample", tuples=48)
    report = session_for_instance(instance, backend="distributed", workers=2).run()
    distributed = report.details
    assert distributed.distance_stats["calls"] > 0
    assert distributed.agp is not None and distributed.rsc is not None


# ----------------------------------------------------------------------
# RSC invariant hoist + persistent streaming cache (regression)
# ----------------------------------------------------------------------
def test_recleaning_unchanged_block_runs_no_raw_evaluations(sample_table, sample_rules):
    config = MLNCleanConfig(abnormal_threshold=1)
    engine = DistanceEngine.from_config(config)
    cleaner = ReliabilityScoreCleaner(config, engine=engine)
    first_blocks = MLNIndex.build(sample_table, sample_rules).block_list
    cleaner.clean_index(first_blocks)
    raw_after_first = engine.stats.raw_evaluations
    assert raw_after_first > 0
    # the streaming-replay shape: the same (unchanged) block is re-cleaned —
    # every γ-pair distance must come back from the shared engine's cache
    second_blocks = MLNIndex.build(sample_table, sample_rules).block_list
    cleaner.clean_index(second_blocks)
    assert engine.stats.raw_evaluations == raw_after_first


def test_streaming_engine_persists_across_batches_and_stays_equivalent():
    instance = small_instance("hospital-sample", tuples=60)
    config = MLNCleanConfig(abnormal_threshold=1)
    batch_report = MLNClean(config).clean(instance.dirty, instance.rules)

    engine = StreamingMLNClean(instance.rules, schema=instance.dirty.attributes, config=config)
    assert engine.engine.cache_size() == 0
    for start in range(0, len(instance.dirty.tids), 12):
        tids = instance.dirty.tids[start : start + 12]
        engine.apply_batch(DeltaBatch.from_table(instance.dirty.subset(tids)))
    assert tables_equal(engine.cleaned, batch_report.cleaned)
    stats = engine.engine.stats
    assert stats.cache_hits > 0  # the cache carried over between batches
    assert engine.report().details.engine is engine.engine


def test_window_eviction_invalidates_cache_entries():
    generator = get_workload_generator("hospital-sample", tuples=36, seed=7)
    instance = generator.build().make_instance(ErrorSpec(error_rate=0.1, seed=5))
    engine = StreamingMLNClean(
        instance.rules,
        schema=instance.dirty.attributes,
        config=MLNCleanConfig(abnormal_threshold=1),
        window=TumblingWindow(size=12),
    )
    for start in range(0, len(instance.dirty.tids), 12):
        tids = instance.dirty.tids[start : start + 12]
        engine.apply_batch(DeltaBatch.from_table(instance.dirty.subset(tids)))
    assert engine.engine.stats.invalidated_pairs >= 0
    # every retained value is still reference-counted; evicted tuples are not
    retained_values = {
        value
        for tid in engine.dirty.tids
        for value in engine.dirty.row(tid).as_dict().values()
    }
    assert set(engine.engine._refcounts) == retained_values


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------
def test_config_engine_honours_cache_knobs():
    config = MLNCleanConfig(distance_cache=False, distance_cache_entries=None)
    engine = config.engine()
    assert engine.cache_enabled is False
    bounded = MLNCleanConfig(distance_cache_entries=128).engine(track_values=True)
    assert bounded.max_entries == 128 and bounded.track_values is True
    with pytest.raises(ValueError):
        MLNCleanConfig(distance_cache_entries=0)


@settings(deadline=None)
@given(short_text, short_text)
def test_engine_distance_equals_metric_distance(left, right):
    metric = LevenshteinDistance()
    engine = DistanceEngine(metric)
    assert engine.distance(left, right) == metric.distance(left, right)
    assert engine.distance(left, right) == metric.distance(left, right)


def test_bounded_distance_with_infinite_cutoff_is_exact():
    engine = DistanceEngine(LevenshteinDistance())
    assert engine.bounded_distance("kitten", "sitting", math.inf) == 3.0
