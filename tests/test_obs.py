"""The observability layer: tracer, metrics, and their pipeline integration.

The headline invariants of the PR:

* tracing is *output-invariant*: every backend produces byte-identical
  masked report signatures (and identical cleaned tables) with tracing on
  or off, on all four registered workloads;
* a traced run yields **one connected span tree** — per session run, and
  per service job (across the enqueue → dispatch → executor-thread hop);
* span trees are deterministic: repeat runs of the same workload produce
  identical ``name_tree`` structures and byte-identical redacted exports;
* ``GET /metrics`` renders valid Prometheus text (our own strict parser
  round-trips it) carrying service-, stage- and distance-level signals.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from dataclasses import replace

import pytest

from repro.core.config import MLNCleanConfig
from repro.core.report import table_to_json_dict
from repro.experiments.harness import prepare_instance
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    current_tracer,
    ensure_tracer,
    name_tree,
    parse_prometheus,
    redacted_spans,
    render_tree,
    span,
    stage_scope,
    to_chrome,
    tracing_active,
    use_tracer,
)
from repro.obs.trace import WALL_CLOCK_FIELDS
from repro.service import (
    CleaningService,
    CleanRequestSpec,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    report_signature,
)
from repro.service.codec import canonical_json
from repro.service.pool import SessionPool
from repro.session import CleaningSession
from repro.workloads.registry import recommended_config

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def run_async(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# tracer primitives
# ----------------------------------------------------------------------
def test_null_tracer_is_the_ambient_default():
    assert current_tracer() is NULL_TRACER
    assert not tracing_active()
    with span("anything", attr=1) as handle:
        # the no-op span accepts the full Span surface and chains
        assert handle.set(more=2) is handle
    assert NULL_TRACER.finished() == []
    assert NULL_TRACER.end(NULL_TRACER.begin("x")) is None
    with NULL_TRACER.attach(None):
        pass


def test_tracer_records_nested_spans_with_deterministic_ids():
    tracer = Tracer()
    with use_tracer(tracer):
        assert tracing_active() and current_tracer() is tracer
        with span("root", layer="outer") as root:
            with span("child") as child:
                child.set(items=3)
            with span("sibling"):
                pass
    spans = tracer.finished()
    assert [s.name for s in spans] == ["child", "sibling", "root"]
    by_name = {s.name: s for s in spans}
    assert by_name["root"].span_id == "s1" and by_name["root"].parent_id is None
    assert by_name["child"].parent_id == by_name["root"].span_id
    assert by_name["sibling"].parent_id == by_name["root"].span_id
    assert {s.trace_id for s in spans} == {"t1"}
    assert by_name["child"].attrs == {"items": 3}
    assert root.duration is not None and root.duration >= 0.0
    # ambient state is restored once the block exits
    assert current_tracer() is NULL_TRACER


def test_span_records_exceptions_and_reraises():
    tracer = Tracer()
    with use_tracer(tracer):
        with pytest.raises(RuntimeError, match="boom"):
            with span("failing"):
                raise RuntimeError("boom")
    (failed,) = tracer.finished()
    assert failed.status == "error"
    assert failed.error == "RuntimeError: boom"
    assert failed.end is not None


def test_tracer_bounds_memory_and_counts_drops():
    tracer = Tracer(max_spans=2)
    with use_tracer(tracer):
        for index in range(5):
            with span(f"s{index}"):
                pass
    assert len(tracer.finished()) == 2
    assert tracer.dropped == 3
    assert [s.name for s in tracer.finished()] == ["s3", "s4"]
    with pytest.raises(ValueError):
        Tracer(max_spans=0)


def test_begin_with_parent_none_starts_a_new_trace():
    tracer = Tracer()
    first = tracer.begin("job-a", parent=None)
    second = tracer.begin("job-b", parent=None)
    assert (first.trace_id, second.trace_id) == ("t1", "t2")
    tracer.end(first)
    tracer.end(second)
    tracer.end(second)  # idempotent
    assert len(tracer.finished()) == 2
    popped = tracer.pop_trace("t1")
    assert [s.name for s in popped] == ["job-a"]
    assert [s.trace_id for s in tracer.finished()] == ["t2"]
    tracer.clear()
    assert tracer.finished() == []


def test_attach_stitches_spans_across_threads():
    """The service pattern: root on the loop, work spans on executor threads."""
    tracer = Tracer()
    root = tracer.begin("service.request", parent=None, job="j1")

    def worker():
        # contextvars do not cross threads: re-install tracer and parent
        with use_tracer(tracer), tracer.attach(root):
            with span("shard.clean"):
                pass

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    tracer.end(root)
    spans = tracer.finished()
    child = next(s for s in spans if s.name == "shard.clean")
    assert child.parent_id == root.span_id
    assert child.trace_id == root.trace_id
    assert child.thread != root.thread  # distinct chrome tids
    assert len(name_tree(spans)) == 1


def test_ensure_tracer_reuses_ambient_and_respects_the_knob():
    outer = Tracer()
    with use_tracer(outer):
        with ensure_tracer(True) as reused:
            assert reused is outer  # never shadowed
    with ensure_tracer(False) as inactive:
        assert inactive is None
        assert not tracing_active()
    with ensure_tracer(True) as fresh:
        assert isinstance(fresh, Tracer) and fresh is not outer
        with span("traced"):
            pass
    assert [s.name for s in fresh.finished()] == ["traced"]


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------
def _sample_trace() -> Tracer:
    tracer = Tracer()
    with use_tracer(tracer):
        with span("root", workload="hospital-sample"):
            with span("child", blocks=2):
                pass
    return tracer


def test_redacted_spans_drop_exactly_the_wall_clock_fields():
    spans = _sample_trace().finished()
    full = spans[0].as_dict()
    assert set(WALL_CLOCK_FIELDS) <= set(full)
    for record in redacted_spans(spans):
        assert not set(WALL_CLOCK_FIELDS) & set(record)
        assert {"name", "trace_id", "span_id", "parent_id", "attrs"} <= set(record)
    # redacted exports are byte-identical across two identical runs
    first = json.dumps(redacted_spans(_sample_trace().finished()))
    second = json.dumps(redacted_spans(_sample_trace().finished()))
    assert first == second


def test_to_chrome_emits_trace_event_schema():
    spans = _sample_trace().finished()
    payload = to_chrome(spans)
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    events = payload["traceEvents"]
    assert [e["name"] for e in events] == ["root", "child"]  # creation order
    for event in events:
        assert event["ph"] == "X" and event["cat"] == "repro"
        assert event["pid"] == 1 and event["tid"] >= 1
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert {"span_id", "parent_id", "trace_id", "status"} <= set(event["args"])
    assert events[0]["args"]["workload"] == "hospital-sample"
    # redacted chrome exports of two identical runs are byte-identical
    assert json.dumps(to_chrome(_sample_trace().finished(), redact=True)) == json.dumps(
        to_chrome(_sample_trace().finished(), redact=True)
    )


def test_name_tree_and_render_tree():
    tracer = _sample_trace()
    assert name_tree(tracer.finished()) == [["root", [["child", []]]]]
    rendered = render_tree(tracer.finished())
    assert "root" in rendered and "└─ child" in rendered
    assert "workload=hospital-sample" in rendered
    assert "blocks=2" in render_tree(tracer.finished(), attrs=True)
    assert "blocks=2" not in render_tree(tracer.finished(), attrs=False)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    counter = registry.counter("test_ops_total", "ops", ("kind",))
    counter.labels(kind="a").inc()
    counter.labels(kind="a").inc(2.5)
    counter.labels(kind="b").inc()
    assert {k["kind"]: c.value for k, c in counter.samples()} == {"a": 3.5, "b": 1.0}
    with pytest.raises(ValueError):
        counter.labels(kind="a").inc(-1)
    with pytest.raises(ValueError):
        counter.inc()  # labelled metric has no default series

    gauge = registry.gauge("test_depth", "depth")
    gauge.set(7)
    gauge.inc()
    gauge.dec(3)
    assert gauge._default().value == 5.0

    histogram = registry.histogram("test_seconds", "latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    summary = histogram._default().summary()
    assert summary["count"] == 3
    assert summary["sum"] == pytest.approx(5.55)
    assert summary["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}
    with pytest.raises(ValueError):
        registry.histogram("test_bad", "x", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("test_bad2", "x", buckets=(1.0, 0.5))


def test_registry_get_or_create_and_conflicts():
    registry = MetricsRegistry()
    first = registry.counter("shared_total", "x", ("a",))
    assert registry.counter("shared_total", "x", ("a",)) is first
    assert registry.instrument("shared_total") is first
    with pytest.raises(ValueError):
        registry.gauge("shared_total", "x", ("a",))  # kind conflict
    with pytest.raises(ValueError):
        registry.counter("shared_total", "x", ("b",))  # label conflict
    with pytest.raises(ValueError):
        registry.counter("0bad name", "x")
    with pytest.raises(ValueError):
        registry.counter("fine_total", "x", ("0bad",))
    with pytest.raises(ValueError):
        registry.counter("fine_total", "x", ("a", "a"))
    histogram = registry.histogram("h_seconds", "x", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("h_seconds", "x", buckets=(1.0, 3.0))
    assert histogram is registry.histogram("h_seconds", "x", buckets=(1.0, 2.0))


def test_render_prometheus_round_trips_through_the_strict_parser():
    registry = MetricsRegistry()
    registry.counter("jobs_total", "jobs", ("kind", "status")).labels(
        kind="clean", status="done"
    ).inc(4)
    registry.gauge("depth", "queue depth").set(2)
    registry.histogram("lat_seconds", "latency", buckets=(0.5, 1.0)).observe(0.7)

    @registry.register_collector
    def extra():
        return [
            {
                "name": "external_value",
                "type": "gauge",
                "help": 'has "quotes" and\nnewlines in labels',
                "samples": [({"path": 'a"b\nc'}, 1.5)],
            }
        ]

    text = registry.render_prometheus()
    assert "# TYPE jobs_total counter" in text
    assert "# TYPE lat_seconds histogram" in text
    samples = parse_prometheus(text)
    assert samples['jobs_total{kind="clean",status="done"}'] == 4
    assert samples["depth"] == 2
    assert samples['lat_seconds_bucket{le="0.5"}'] == 0
    assert samples['lat_seconds_bucket{le="1"}'] == 1
    assert samples['lat_seconds_bucket{le="+Inf"}'] == 1
    assert samples["lat_seconds_sum"] == pytest.approx(0.7)
    assert samples["lat_seconds_count"] == 1
    assert samples['external_value{path="a\\"b\\nc"}'] == 1.5

    snapshot = registry.snapshot()
    assert snapshot["jobs_total"]["type"] == "counter"
    assert snapshot["lat_seconds"]["samples"][0]["count"] == 1
    assert snapshot["external_value"]["samples"][0]["value"] == 1.5

    with pytest.raises(ValueError):
        parse_prometheus("this is not a sample line")
    assert parse_prometheus("") == {}
    assert parse_prometheus('x{le="+Inf"} +Inf')['x{le="+Inf"}'] == float("inf")


def test_stage_scope_fans_out_to_timings_counter_and_span():
    from repro.obs import STAGE_SECONDS

    class Timings:
        def __init__(self):
            self.recorded = {}

        def record(self, stage, seconds):
            self.recorded[stage] = self.recorded.get(stage, 0.0) + seconds

    timings = Timings()
    child = STAGE_SECONDS.labels(backend="testbed", stage="agp")
    before = child.value
    tracer = Tracer()
    with use_tracer(tracer):
        with stage_scope(timings, "testbed", "agp", blocks=4) as scope:
            scope.set(resolved=2)
    assert "agp" in timings.recorded and timings.recorded["agp"] >= 0.0
    assert child.value > before
    (recorded,) = tracer.finished()
    assert recorded.name == "stage:agp"
    assert recorded.attrs == {"backend": "testbed", "blocks": 4, "resolved": 2}


# ----------------------------------------------------------------------
# tracing is output-invariant, on every backend and workload
# ----------------------------------------------------------------------
def _run(workload, tuples, backend, trace):
    instance = prepare_instance(workload, tuples=tuples, error_rate=0.1)
    config = replace(recommended_config(workload), trace=trace)
    session = CleaningSession(rules=instance.rules, config=config, backend=backend)
    report = session.run(table=instance.dirty, ground_truth=instance.ground_truth)
    return session, report


@pytest.mark.parametrize(
    "workload,tuples",
    [("hospital-sample", 36), ("hai", 60), ("car", 60), ("tpch", 60)],
)
def test_backends_bit_identical_with_tracing_on_or_off(workload, tuples):
    for backend in ("batch", "distributed", "streaming"):
        traced_session, traced = _run(workload, tuples, backend, trace=True)
        _, untraced = _run(workload, tuples, backend, trace=False)
        # the masked signature covers every non-wall-clock report byte
        assert report_signature(traced) == report_signature(untraced), backend
        # ... including the cleaned table, byte for byte
        assert canonical_json(table_to_json_dict(traced.cleaned)) == canonical_json(
            table_to_json_dict(untraced.cleaned)
        ), backend
        # ... and the traced run actually recorded spans
        assert traced_session.last_trace is not None
        assert traced_session.last_trace.finished(), backend


def test_session_last_trace_is_none_when_tracing_is_off():
    session, _report = _run("hospital-sample", 24, "batch", trace=False)
    assert session.last_trace is None


@pytest.mark.parametrize("backend", ["batch", "distributed", "streaming"])
def test_span_trees_are_stable_across_repeat_runs(backend):
    def collect():
        session, _report = _run("hospital-sample", 36, backend, trace=True)
        spans = session.last_trace.finished()
        trees = name_tree(spans)
        assert len(trees) == 1, f"{backend} must yield one connected tree"
        # every parent id resolves inside the same trace
        ids = {s.span_id for s in spans}
        assert all(s.parent_id in ids for s in spans if s.parent_id is not None)
        return trees, json.dumps(redacted_spans(spans))

    first_tree, first_redacted = collect()
    second_tree, second_redacted = collect()
    assert first_tree == second_tree
    assert first_redacted == second_redacted


def test_batch_trace_contains_every_layer():
    session, _report = _run("hospital-sample", 36, "batch", trace=True)
    names = {s.name for s in session.last_trace.finished()}
    assert {
        "session.run",
        "backend:batch",
        "pipeline.clean",
        "stage:index",
        "stage:agp",
        "stage:rsc",
        "stage:fscr",
        "stage:dedup",
    } <= names


def test_distributed_trace_shows_worker_phases():
    session, _report = _run("hospital-sample", 48, "distributed", trace=True)
    names = {s.name for s in session.last_trace.finished()}
    assert {
        "driver.clean",
        "stage:partition",
        "phase:learn",
        "worker.learn",
        "phase:clean",
        "worker.clean",
        "stage:weight_fusion",
        "stage:gather",
    } <= names


def test_streaming_trace_shows_ticks():
    session, _report = _run("hospital-sample", 36, "streaming", trace=True)
    spans = session.last_trace.finished()
    ticks = [s for s in spans if s.name == "stream.tick"]
    assert ticks and all(s.attrs["deltas"] >= 1 for s in ticks)
    assert {"stage:delta", "stage:fscr"} <= {s.name for s in spans}


# ----------------------------------------------------------------------
# fingerprints and routing ignore the trace knob
# ----------------------------------------------------------------------
def test_fingerprint_and_routing_ignore_the_trace_knob():
    from repro.dataset.sample import sample_hospital_rules

    rules = sample_hospital_rules()
    plain = CleaningSession(rules=rules, config=MLNCleanConfig())
    traced = CleaningSession(rules=rules, config=MLNCleanConfig(trace=True))
    assert plain.fingerprint() == traced.fingerprint()
    # identity_dict drops exactly the observability fields
    identity = MLNCleanConfig(trace=True).identity_dict()
    assert "trace" not in identity
    # the pool routes trace-only-different requests onto ONE warm shard
    pool = SessionPool()
    base = CleanRequestSpec(workload="hospital-sample", tuples=24)
    opted_in = CleanRequestSpec(
        workload="hospital-sample", tuples=24, config_overrides={"trace": True}
    )
    assert pool.route(base) is pool.route(opted_in)
    assert len(pool.shards()) == 1


# ----------------------------------------------------------------------
# the service: one connected tree per job, /metrics, trace export
# ----------------------------------------------------------------------
def test_traced_service_job_yields_one_connected_tree():
    spec = CleanRequestSpec(workload="hospital-sample", tuples=18, error_rate=0.1)

    async def main():
        async with CleaningService(ServiceConfig(trace=True)) as service:
            job = await service.submit(spec)
            await service.wait(job.id)
            assert job.status.value == "done", job.error
            spans = service.tracer.finished()
            stats = service.stats()
            return job, spans, stats

    job, spans, stats = run_async(main())
    trees = name_tree(spans)
    assert len(trees) == 1, render_tree(spans)
    root_name, _children = trees[0]
    assert root_name == "service.request"
    names = {s.name for s in spans}
    # the tree spans the enqueue → executor-thread → pipeline layers
    assert {"shard.clean", "session.run", "backend:batch", "pipeline.clean"} <= names
    ids = {s.span_id for s in spans}
    assert all(s.parent_id in ids for s in spans if s.parent_id is not None)
    assert len({s.trace_id for s in spans}) == 1
    root = next(s for s in spans if s.parent_id is None)
    assert root.attrs["job"] == job.id and root.attrs["job_status"] == "done"
    # the /stats surface rides along: uptime, depth, batch-size histogram
    assert stats["uptime_s"] >= 0
    assert stats["queue"]["depth_per_shard"] == {job.shard: 0}
    assert stats["coalescing"]["batch_size"]["count"] == 0
    assert stats["shards"][0]["queue_depth"] == 0


def test_service_trace_dir_exports_chrome_json_per_job(tmp_path):
    spec = CleanRequestSpec(workload="hospital-sample", tuples=18, error_rate=0.1)

    async def main():
        config = ServiceConfig(trace_dir=str(tmp_path))
        async with CleaningService(config) as service:
            assert service.tracer is not None  # trace_dir implies tracing
            jobs = [await service.submit(spec) for _ in range(2)]
            await asyncio.gather(*[service.wait(j.id) for j in jobs])
            # exported traces are popped from the tracer (no unbounded growth)
            assert service.tracer.finished() == []
            return jobs

    jobs = run_async(main())
    for job in jobs:
        payload = json.loads((tmp_path / f"trace-{job.id}.json").read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        assert events, "the exported trace must carry events"
        for event in events:
            assert event["ph"] == "X" and event["pid"] == 1
            assert {"name", "ts", "dur", "tid", "args"} <= set(event)
        names = {e["name"] for e in events}
        assert {"service.request", "shard.clean", "session.run"} <= names
        # connectivity survives the export: every parent resolves
        ids = {e["args"]["span_id"] for e in events}
        roots = [e for e in events if e["args"]["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["args"]["job"] == job.id
        assert all(
            e["args"]["parent_id"] in ids
            for e in events
            if e["args"]["parent_id"] is not None
        )


def test_coalesced_delta_jobs_each_get_a_connected_tree():
    from repro.dataset.sample import SAMPLE_ATTRIBUTES, SAMPLE_CLEAN_RECORDS
    from repro.dataset.sample import sample_hospital_rules
    from repro.service import DeltaRequestSpec
    from repro.streaming import DeltaBatch, Insert

    specs = [
        DeltaRequestSpec(
            deltas=DeltaBatch([Insert(values=dict(record))]),
            rules=sample_hospital_rules(),
            schema=list(SAMPLE_ATTRIBUTES),
        )
        for record in SAMPLE_CLEAN_RECORDS[:3]
    ]

    async def main():
        async with CleaningService(ServiceConfig(trace=True)) as service:
            jobs = [await service.submit(s) for s in specs]
            await asyncio.gather(*[service.wait(j.id) for j in jobs])
            assert all(j.status.value == "done" for j in jobs), [j.error for j in jobs]
            return jobs, service.tracer.finished(), service.stats()

    jobs, spans, stats = run_async(main())
    trees = name_tree(spans)
    assert len(trees) == len(jobs)  # one connected tree per job
    roots = [s for s in spans if s.parent_id is None]
    assert {root.attrs["job"] for root in roots} == {j.id for j in jobs}
    # the folded jobs carry marker ticks pointing at the executing one
    markers = [s for s in spans if s.attrs.get("coalesced_into")]
    executed = [
        s for s in spans if s.name == "shard.tick" and "requests" in s.attrs
    ]
    assert len(executed) + len(markers) == len(jobs)
    assert {m.attrs["coalesced_into"] for m in markers} <= {j.id for j in jobs}
    # the batch-size histogram observed the coalesced drain(s)
    assert stats["coalescing"]["batch_size"]["count"] >= 1
    assert stats["coalescing"]["batch_size"]["buckets"]["+Inf"] >= 1


def test_http_metrics_endpoint_serves_parseable_prometheus():
    with ServiceServer(config=ServiceConfig(executor_workers=2)) as server:
        client = ServiceClient(port=server.port)
        client.wait_until_healthy()
        job = client.clean(workload="hospital-sample", tuples=18, error_rate=0.1)
        assert job["status"] == "done"
        connection = http.client.HTTPConnection(
            client.host, server.port, timeout=30
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            body = response.read().decode("utf-8")
            content_type = response.getheader("Content-Type")
        finally:
            connection.close()
    assert response.status == 200
    assert content_type == "text/plain; version=0.0.4; charset=utf-8"
    samples = parse_prometheus(body)  # the strict parser IS the assertion
    assert samples['repro_service_jobs_total{kind="clean",status="done"}'] >= 1
    assert any(
        key.startswith("repro_service_job_seconds_bucket") for key in samples
    )
    assert samples["repro_service_pending_jobs"] == 0
    assert samples["repro_service_uptime_seconds"] >= 0
    assert any(key.startswith("repro_service_queue_depth") for key in samples)
    # process-wide signals are appended to the service-scoped ones
    assert any(key.startswith("repro_stage_seconds_total") for key in samples)
    assert any(key.startswith("repro_runs_total") for key in samples)
    assert 0.0 <= samples["repro_distance_cache_hit_rate"] <= 1.0
    assert samples["repro_distance_calls_total"] >= 0


# ----------------------------------------------------------------------
# experiments: snapshot embedding and the --trace flag
# ----------------------------------------------------------------------
def test_run_artifact_embeds_a_metrics_snapshot(tmp_path):
    from repro.experiments import ExperimentRunner, RunArtifact, load_spec

    spec = replace(load_spec("smoke"), tuples=40)
    artifact = ExperimentRunner(spec).run()
    snapshot = artifact.metrics_snapshot
    assert snapshot is not None
    assert "repro_stage_seconds_total" in snapshot
    assert "repro_distance_cache_hit_rate" in snapshot
    # per-cell stage timings ride along in the perf drill-down
    assert all("stages" in cell.perf for cell in artifact.cells)
    assert any(cell.perf["stages"] for cell in artifact.cells)
    # the snapshot survives the JSON round trip
    path = artifact.save(tmp_path / "artifact.json")
    loaded = RunArtifact.load(path)
    assert loaded.metrics_snapshot == artifact.metrics_snapshot


def test_experiments_cli_trace_flag_writes_chrome_json(tmp_path, capsys):
    from repro.experiments.__main__ import main as experiments_main

    out = tmp_path / "trace.json"
    artifact_path = tmp_path / "artifact.json"
    code = experiments_main(
        [
            "run",
            "smoke",
            "--tuples",
            "40",
            "--trace",
            str(out),
            "--out",
            str(artifact_path),
        ]
    )
    assert code == 0
    assert "trace written to" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    events = payload["traceEvents"]
    assert events and {"session.run", "pipeline.clean"} <= {e["name"] for e in events}
