"""Unit tests for the HoloClean-style baseline and the minimality repairer."""

import pytest

from repro.baselines.detectors import (
    PerfectDetector,
    UnionDetector,
    ViolationDetector,
)
from repro.baselines.factor_graph import CellFactorGraph, CooccurrenceModel
from repro.baselines.holoclean import HoloCleanBaseline, HoloCleanConfig
from repro.baselines.minimal_repair import MinimalityRepairer
from repro.dataset.table import Cell, Table


# ----------------------------------------------------------------------
# detectors
# ----------------------------------------------------------------------
def test_perfect_detector_returns_injected_cells(sample_table, sample_rules, sample_ground_truth):
    detector = PerfectDetector(sample_ground_truth)
    assert detector.detect(sample_table, sample_rules) == sample_ground_truth.dirty_cells


def test_violation_detector_flags_suspect_cells(sample_table, sample_rules):
    cells = ViolationDetector().detect(sample_table, sample_rules)
    assert Cell(3, "ST") in cells


def test_union_detector(sample_table, sample_rules, sample_ground_truth):
    union = UnionDetector([PerfectDetector(sample_ground_truth), ViolationDetector()])
    cells = union.detect(sample_table, sample_rules)
    assert sample_ground_truth.dirty_cells <= cells
    with pytest.raises(ValueError):
        UnionDetector([])


# ----------------------------------------------------------------------
# co-occurrence statistics
# ----------------------------------------------------------------------
def co_table():
    return Table.from_records(
        [
            {"City": "BOAZ", "State": "AL"},
            {"City": "BOAZ", "State": "AL"},
            {"City": "DOTHAN", "State": "AL"},
            {"City": "MIAMI", "State": "FL"},
        ]
    )


def test_cooccurrence_conditional_and_frequency():
    model = CooccurrenceModel.fit(co_table(), set())
    assert model.conditional("State", "AL", "City", "BOAZ") == pytest.approx(1.0)
    assert model.conditional("City", "BOAZ", "State", "AL") == pytest.approx(2 / 3)
    assert model.frequency("State", "AL") == pytest.approx(0.75)
    assert model.conditional("State", "AL", "City", "UNSEEN") == 0.0


def test_cooccurrence_excludes_noisy_cells():
    noisy = {Cell(0, "State")}
    model = CooccurrenceModel.fit(co_table(), noisy)
    assert model.value_counts[("State", "AL")] == 2


def test_candidate_values_ranked_by_context():
    model = CooccurrenceModel.fit(co_table(), set())
    candidates = model.candidate_values("State", {"City": "MIAMI"}, limit=3)
    assert candidates[0] == "FL"


# ----------------------------------------------------------------------
# factor graph + baseline
# ----------------------------------------------------------------------
def test_factor_graph_repairs_fd_violation(sample_table, sample_rules, sample_ground_truth):
    graph = CellFactorGraph(
        sample_table, sample_rules, sample_ground_truth.dirty_cells, seed=3
    )
    graph.train(epochs=5)
    best = graph.map_repair(Cell(3, "ST"))
    assert best.value == "AL"


def test_factor_graph_candidates_include_current_value(sample_table, sample_rules):
    graph = CellFactorGraph(sample_table, sample_rules, {Cell(3, "ST")})
    candidates = graph.candidates_for(Cell(3, "ST"))
    assert any(candidate.value == "AK" for candidate in candidates)


def test_holoclean_on_sample(sample_table, sample_rules, sample_ground_truth):
    report = HoloCleanBaseline().clean(sample_table, sample_rules, sample_ground_truth)
    assert report.accuracy is not None
    assert report.detected_cells == sample_ground_truth.dirty_cells
    assert 0.0 <= report.f1 <= 1.0
    assert report.runtime > 0.0
    # only detected cells may change
    changed = set(report.repairs)
    assert changed <= report.detected_cells


def test_holoclean_without_ground_truth_uses_violations(sample_table, sample_rules):
    report = HoloCleanBaseline().clean(sample_table, sample_rules)
    assert report.accuracy is None
    assert report.detected_cells  # violation detector found something


def test_holoclean_reasonable_on_hai(hai_instance):
    config = HoloCleanConfig(training_sample=500, training_epochs=5)
    report = HoloCleanBaseline(config).clean(
        hai_instance.dirty, hai_instance.rules, hai_instance.ground_truth
    )
    assert report.accuracy is not None
    assert report.accuracy.f1 > 0.5


def test_holoclean_no_errors_makes_no_repairs(hai_workload):
    from repro.errors.groundtruth import GroundTruth

    report = HoloCleanBaseline().clean(
        hai_workload.clean, hai_workload.rules, GroundTruth()
    )
    assert report.repairs == {}
    assert report.f1 == 1.0


# ----------------------------------------------------------------------
# minimality repairer
# ----------------------------------------------------------------------
def test_minimality_repairer_fixes_majority_violation(sample_table, sample_rules, sample_ground_truth):
    report = MinimalityRepairer().clean(sample_table, sample_rules, sample_ground_truth)
    # the FD violation on ST is repaired by majority (AK -> AL)
    assert report.repaired.value(3, "ST") == "AL"
    # but the typo DOTH violates no rule, so it stays (the paper's motivation)
    assert report.repaired.value(1, "CT") == "DOTH"
    assert report.accuracy is not None
    assert report.accuracy.recall < 1.0


def test_minimality_repairer_cfd_constant(sample_table, sample_rules):
    report = MinimalityRepairer().clean(sample_table, sample_rules)
    # every tuple matching HN=ELIZA, CT=BOAZ gets the constant phone number
    for tid in (3, 4, 5):
        assert report.repaired.value(tid, "PN") == "2567688400"
