"""Smoke tests for the experiment harnesses (tiny workload sizes)."""

from repro.experiments import (
    EXPERIMENTS,
    ablation_fscr_minimality,
    ablation_partitioner,
    ablation_reliability_score,
    fig06_error_percentage,
    fig07_error_type_ratio,
    fig08_agp_threshold,
    fig11_overall_threshold,
    fig12_agp_error_rate,
    fig15_distributed,
    table05_distance_metrics,
    table06_worker_scaling,
)
from repro.experiments.harness import (
    ExperimentResult,
    default_thresholds,
    prepare_instance,
    run_holoclean,
    run_mlnclean,
)

SMALL = 300


def test_registry_covers_all_figures_and_tables():
    expected = {f"fig{i:02d}" for i in range(6, 16)} | {"table05", "table06"}
    assert expected <= set(EXPERIMENTS)


def test_prepare_instance_and_runners():
    instance = prepare_instance("car", tuples=SMALL, error_rate=0.05)
    mlnclean = run_mlnclean(instance)
    holoclean = run_holoclean(instance)
    assert mlnclean.system == "MLNClean"
    assert holoclean.system == "HoloClean"
    assert 0.0 <= mlnclean.f1 <= 1.0
    assert "precision_a" in mlnclean.extras


def test_experiment_result_rendering():
    result = ExperimentResult("demo", "demo experiment")
    result.add({"a": 1, "b": "x"})
    result.add({"a": 2, "c": 3.5})
    text = result.render()
    assert "demo experiment" in text
    assert result.columns() == ["a", "b", "c"]
    assert result.series("a") == [1, 2]


def test_default_thresholds():
    assert default_thresholds("car") == (0, 1, 2, 3, 4, 5)
    assert default_thresholds("hai")[-1] == 50


def test_fig06_rows_cover_grid():
    result = fig06_error_percentage(
        datasets=("car",), error_rates=(0.05, 0.10), tuples=SMALL
    )
    assert len(result.rows) == 4  # 2 rates x 2 systems
    assert {row["system"] for row in result.rows} == {"MLNClean", "HoloClean"}
    assert all("f1" in row and "runtime_s" in row for row in result.rows)


def test_fig07_rows(car_workload):
    result = fig07_error_type_ratio(
        datasets=("car",), ratios=(0.0, 1.0), tuples=SMALL, include_holoclean=False
    )
    assert len(result.rows) == 2
    assert {row["replacement_ratio"] for row in result.rows} == {0.0, 1.0}


def test_threshold_figures_share_columns():
    fig08 = fig08_agp_threshold(datasets=("car",), thresholds={"car": (0, 1)}, tuples=SMALL)
    assert {row["threshold"] for row in fig08.rows} == {0, 1}
    assert all("precision_a" in row and "dag" in row for row in fig08.rows)
    fig11 = fig11_overall_threshold(
        datasets=("car",), thresholds={"car": (1,)}, tuples=SMALL
    )
    assert all("f1" in row and "runtime_s" in row for row in fig11.rows)


def test_error_rate_figures():
    result = fig12_agp_error_rate(datasets=("car",), error_rates=(0.05, 0.2), tuples=SMALL)
    assert len(result.rows) == 2
    assert all("recall_a" in row for row in result.rows)


def test_fig15_and_table06():
    fig15 = fig15_distributed(
        datasets=("tpch",), error_rates=(0.05,), workers=2, tuples=SMALL
    )
    assert len(fig15.rows) == 1
    assert fig15.rows[0]["workers"] == 2
    table06 = table06_worker_scaling(
        dataset="tpch", worker_counts=(2, 4), tuples=SMALL
    )
    assert [row["workers"] for row in table06.rows] == [2, 4]
    assert all(row["runtime_s"] > 0 for row in table06.rows)


def test_table05_metrics():
    result = table05_distance_metrics(datasets=("car",), tuples=SMALL)
    # the ablation now includes the Damerau variant, which shares the
    # Levenshtein fast-path preprocessing (like-with-like comparison)
    assert {row["metric"] for row in result.rows} == {
        "levenshtein",
        "damerau",
        "cosine",
    }


def test_ablations_run():
    rscore = ablation_reliability_score(datasets=("car",), tuples=SMALL)
    assert {row["variant"] for row in rscore.rows} == {
        "full",
        "weight_only",
        "distance_only",
    }
    fscr = ablation_fscr_minimality(datasets=("car",), tuples=SMALL)
    assert len(fscr.rows) == 2
    partition = ablation_partitioner(dataset="tpch", workers=2, tuples=SMALL)
    assert {row["partitioner"] for row in partition.rows} == {
        "algorithm3",
        "round_robin",
    }
