"""Unit tests for the Markov logic substrate: formulas, grounding, weights, inference."""

import pytest
from hypothesis import given, strategies as st

from repro.constraints.rules import FunctionalDependency
from repro.mln.formula import Atom, Clause, Literal
from repro.mln.grounding import ground_rule, ground_rules, grounding_statistics
from repro.mln.inference import ExactInference, GibbsSampler
from repro.mln.network import MarkovLogicNetwork
from repro.mln.weights import (
    DiagonalNewtonLearner,
    WeightLearningConfig,
    learn_group_weights,
    prior_weights,
)


# ----------------------------------------------------------------------
# formulas
# ----------------------------------------------------------------------
def test_atom_and_literal_rendering():
    atom = Atom("CT", "DOTHAN")
    assert atom.render() == 'CT("DOTHAN")'
    literal = Literal(atom, negated=True)
    assert literal.render() == '¬CT("DOTHAN")'
    assert literal.negate().negated is False


def test_literal_evaluation_defaults_to_false():
    atom = Atom("CT", "DOTHAN")
    assert Literal(atom).evaluate({}) is False
    assert Literal(atom, negated=True).evaluate({}) is True


def test_clause_satisfaction_and_identity():
    a, b = Atom("CT", "X"), Atom("ST", "Y")
    clause = Clause([Literal(a, negated=True), Literal(b)])
    assert clause.is_satisfied({a: False, b: False})
    assert clause.is_satisfied({a: True, b: True})
    assert not clause.is_satisfied({a: True, b: False})
    assert clause == Clause([Literal(a, negated=True), Literal(b)], weight=3.0)
    assert len(clause) == 2
    assert clause.atoms == [a, b]


def test_clause_requires_literals():
    with pytest.raises(ValueError):
        Clause([])


# ----------------------------------------------------------------------
# network
# ----------------------------------------------------------------------
def build_network():
    a, b = Atom("A", "x"), Atom("B", "y")
    network = MarkovLogicNetwork()
    network.add(Clause([Literal(a, negated=True), Literal(b)]), weight=2.0)
    network.add(Clause([Literal(a)]), weight=1.0)
    return network, a, b


def test_world_score_and_probability():
    network, a, b = build_network()
    assert network.world_score({a: True, b: True}) == pytest.approx(3.0)
    assert network.world_score({a: True, b: False}) == pytest.approx(1.0)
    total = sum(
        network.world_probability({a: va, b: vb})
        for va in (False, True)
        for vb in (False, True)
    )
    assert total == pytest.approx(1.0)


def test_partition_function_refuses_large_networks():
    network = MarkovLogicNetwork()
    for i in range(30):
        network.add(Clause([Literal(Atom("P", str(i)))]), weight=0.1)
    with pytest.raises(ValueError):
        network.log_partition_function()


def test_clauses_for_atom():
    network, a, b = build_network()
    assert len(network.clauses_for_atom(a)) == 2
    assert len(network.clauses_for_atom(b)) == 1


# ----------------------------------------------------------------------
# grounding
# ----------------------------------------------------------------------
def test_ground_rule_matches_table3(sample_table):
    fd = FunctionalDependency(["CT"], ["ST"], name="r1")
    groundings = ground_rule(fd, sample_table)
    combos = {(g.reason_values, g.result_values): g.support for g in groundings}
    assert combos == {
        (("DOTHAN",), ("AL",)): 2,
        (("DOTH",), ("AL",)): 1,
        (("BOAZ",), ("AK",)): 1,
        (("BOAZ",), ("AL",)): 2,
    }


def test_ground_rule_clause_shape(sample_table):
    fd = FunctionalDependency(["CT"], ["ST"])
    grounding = ground_rule(fd, sample_table)[0]
    rendered = grounding.clause.render()
    assert rendered.startswith("¬CT(")
    assert "ST(" in rendered


def test_ground_rules_and_statistics(sample_table, sample_rules):
    groundings = ground_rules(sample_rules, sample_table)
    assert set(groundings) == {"r1", "r2", "r3"}
    stats = grounding_statistics(groundings)
    assert stats["r1"]["groundings"] == 4
    assert stats["r1"]["groups"] == 3
    # r3 only covers the four ELIZA tuples
    assert stats["r3"]["support"] == 4


# ----------------------------------------------------------------------
# weights
# ----------------------------------------------------------------------
def test_prior_weights_eq4(sample_table):
    fd = FunctionalDependency(["CT"], ["ST"])
    groundings = ground_rule(fd, sample_table)
    priors = prior_weights(groundings)
    assert sum(priors.values()) == pytest.approx(1.0)
    by_combo = {g.reason_values + g.result_values: p for g, p in priors.items()}
    assert by_combo[("BOAZ", "AL")] == pytest.approx(2 / 6)


def test_learner_ranks_supported_gamma_higher(sample_table):
    fd = FunctionalDependency(["CT"], ["ST"])
    groundings = ground_rule(fd, sample_table)
    weights = DiagonalNewtonLearner().learn(groundings)
    by_combo = {g.reason_values + g.result_values: w for g, w in weights.items()}
    assert by_combo[("BOAZ", "AL")] > by_combo[("BOAZ", "AK")]
    # the clause objects carry the learned weight too
    assert all(g.clause.weight == weights[g] for g in groundings)


def test_learn_group_weights_orders_by_count():
    counts = {"g": {("a",): 30, ("b",): 2, ("c",): 1}}
    priors = {("a",): 0.9, ("b",): 0.06, ("c",): 0.03}
    weights = learn_group_weights(counts, priors)
    assert weights[("a",)] > weights[("b",)] >= weights[("c",)]


def test_learn_group_weights_respects_max_weight():
    config = WeightLearningConfig(max_weight=3.0)
    counts = {"g": {("a",): 1000, ("b",): 1}}
    weights = learn_group_weights(counts, {("a",): 0.99, ("b",): 0.01}, config)
    assert abs(weights[("a",)]) <= 3.0
    assert abs(weights[("b",)]) <= 3.0


def test_learn_group_weights_empty():
    assert learn_group_weights({}, {}) == {}


def test_learner_converges_no_oscillation():
    # A very skewed group used to make the undamped Newton step oscillate and
    # give the majority γ a large negative weight; the damped learner must
    # keep it the largest weight of the group.
    counts = {"g": {("clean",): 84, ("d1",): 2, ("d2",): 1, ("d3",): 1, ("d4",): 2}}
    priors = {key: count / 90 for key, count in counts["g"].items()}
    weights = learn_group_weights(counts, priors)
    assert weights[("clean",)] == max(weights.values())
    assert weights[("clean",)] > 0


# ----------------------------------------------------------------------
# inference
# ----------------------------------------------------------------------
def test_exact_inference_prefers_high_weight_atom():
    network, a, b = build_network()
    marginals = ExactInference(network).marginals()
    assert marginals[a] > 0.5
    assert marginals[b] > 0.5


def test_exact_inference_with_evidence():
    network, a, b = build_network()
    marginals = ExactInference(network).marginals(evidence={a: True})
    assert set(marginals) == {b}


def test_exact_map_state():
    network, a, b = build_network()
    state = ExactInference(network).map_state()
    assert state[a] is True
    assert state[b] is True


def test_gibbs_close_to_exact():
    network, a, b = build_network()
    exact = ExactInference(network).marginals()
    sampled = GibbsSampler(network, samples=2000, burn_in=200, seed=5).marginals()
    assert sampled[a] == pytest.approx(exact[a], abs=0.1)
    assert sampled[b] == pytest.approx(exact[b], abs=0.1)


def test_gibbs_validation():
    network, _, _ = build_network()
    with pytest.raises(ValueError):
        GibbsSampler(network, samples=0)


@given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=60))
def test_two_gamma_group_ordering_property(count_a, count_b):
    """In a two-γ group the learned weights must order like the counts."""
    counts = {"g": {("a",): count_a, ("b",): count_b}}
    total = count_a + count_b
    priors = {("a",): count_a / total, ("b",): count_b / total}
    weights = learn_group_weights(counts, priors)
    if count_a > count_b:
        assert weights[("a",)] >= weights[("b",)]
    elif count_b > count_a:
        assert weights[("b",)] >= weights[("a",)]
