"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
legacy editable installs (`pip install -e .`) on offline machines where
PEP 660 wheel building is unavailable.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
