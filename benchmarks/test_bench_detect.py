"""Dirty-cell-scoped cleaning: raw-evaluation drop at unchanged repairs.

Two experiments land in ``BENCH_perf.json``: ``detect_full`` (the exact
pipeline, violation detector run out-of-band for the comparison cell set)
and ``detect_scoped`` (the same detector pruning Stage I/II).  The scoped
run must evaluate measurably fewer raw distances while repairing the
detected cells byte-identically (equal digests) at the same repair accuracy.
"""

from repro.experiments.detect_ablation import detect_scoping

#: rows shared between the two tests (pytest runs them in file order)
_ROWS: dict = {}


def test_detect_full(benchmark, report_experiment):
    result = report_experiment(benchmark, detect_scoping, mode="full")
    _ROWS["full"] = result.rows[0]
    assert result.rows[0]["detected_cells"] > 0


def test_detect_scoped(benchmark, report_experiment):
    result = report_experiment(benchmark, detect_scoping, mode="scoped")
    scoped, full = result.rows[0], _ROWS.get("full")
    if full is None:  # ran in isolation: measure the full run unbenched
        full = detect_scoping(mode="full").rows[0]
    assert scoped["detected_cells"] == full["detected_cells"] > 0
    # the point of scoping: measurably fewer raw metric evaluations
    assert scoped["raw_evaluations"] < full["raw_evaluations"]
    # ... without changing what happens to the detected cells
    assert scoped["repairs_digest"] == full["repairs_digest"]
    assert scoped["repair_acc_detected"] == full["repair_acc_detected"]
