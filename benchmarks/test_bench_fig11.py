"""Figure 11: overall MLNClean F1 and runtime vs the threshold tau."""

from repro.experiments import fig11_overall_threshold


def test_fig11_overall_threshold(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig11_overall_threshold,
        datasets=("car", "hai"),
        thresholds={"car": (0, 1, 5), "hai": (0, 10, 50)},
        tuples=bench_tuples,
    )
    for dataset, optimal in (("car", 1), ("hai", 10)):
        rows = {row["threshold"]: row for row in result.rows if row["dataset"] == dataset}
        best = max(row["f1"] for row in rows.values())
        # the paper-tuned threshold is at (or near) the best of the sweep
        assert rows[optimal]["f1"] >= best - 0.1
