"""Figure 14: FSCR accuracy vs error percentage."""

from repro.experiments import fig14_fscr_error_rate


def test_fig14_fscr_error_rate(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig14_fscr_error_rate,
        datasets=("car", "hai"),
        error_rates=(0.05, 0.15, 0.30),
        tuples=bench_tuples,
    )
    assert all(0.0 <= row["precision_f"] <= 1.0 for row in result.rows)
    assert all(0.0 <= row["recall_f"] <= 1.0 for row in result.rows)
