"""Streaming: incremental micro-batch cleaning vs naive full re-clean.

Asserts the capability claim of the streaming subsystem: on a multi-batch
stream the incremental path is faster in total wall-clock than re-running
batch MLNClean from scratch after every micro-batch, while producing the
identical cleaned table at every step.
"""

from repro.experiments import streaming_incremental


def test_streaming_incremental_beats_full_reclean(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        streaming_incremental,
        dataset="hai",
        tuples=bench_tuples,
        batch_size=max(1, bench_tuples // 3),
        update_batches=6,
        updates_per_batch=10,
    )
    total = next(row for row in result.rows if row["phase"] == "total")
    # Identical output at every micro-batch...
    assert all(row["output_equal"] for row in result.rows if "output_equal" in row)
    # ...and the incremental path wins in total wall-clock.
    assert total["incremental_s"] < total["full_reclean_s"]
    # The steady-state batches are where the savings come from: the
    # localized updates dirty one block of HAI's seven, and only that
    # block's Stage I re-runs.
    steady = [row for row in result.rows if row["phase"] == "steady"]
    assert steady and all(row["blocks_recleaned"] <= 2 for row in steady)
    # Individual batch timings are milliseconds-scale and can wobble on a
    # noisy runner; gate on the median steady-state speedup instead.
    speedups = sorted(row["speedup"] for row in steady)
    assert speedups[len(speedups) // 2] > 1.0
