"""Figure 9: RSC precision/recall vs the threshold tau."""

from repro.experiments import fig09_rsc_threshold


def test_fig09_rsc_threshold(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig09_rsc_threshold,
        datasets=("car", "hai"),
        thresholds={"car": (0, 1, 5), "hai": (0, 10, 50)},
        tuples=bench_tuples,
    )
    for dataset, optimal, extreme in (("car", 1, 5), ("hai", 10, 50)):
        rows = {row["threshold"]: row for row in result.rows if row["dataset"] == dataset}
        # a far-too-large threshold is not better than the tuned one
        assert rows[optimal]["recall_r"] >= rows[extreme]["recall_r"] - 0.05
