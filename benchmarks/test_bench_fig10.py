"""Figure 10: FSCR precision/recall vs the threshold tau."""

from repro.experiments import fig10_fscr_threshold


def test_fig10_fscr_threshold(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig10_fscr_threshold,
        datasets=("car", "hai"),
        thresholds={"car": (0, 1, 5), "hai": (0, 10, 50)},
        tuples=bench_tuples,
    )
    assert all(0.0 <= row["precision_f"] <= 1.0 for row in result.rows)
    assert all(0.0 <= row["recall_f"] <= 1.0 for row in result.rows)
