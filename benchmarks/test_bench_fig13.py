"""Figure 13: RSC accuracy vs error percentage."""

from repro.experiments import fig13_rsc_error_rate


def test_fig13_rsc_error_rate(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig13_rsc_error_rate,
        datasets=("car", "hai"),
        error_rates=(0.05, 0.15, 0.30),
        tuples=bench_tuples,
    )
    assert all(0.0 <= row["precision_r"] <= 1.0 for row in result.rows)
    for dataset in ("car", "hai"):
        series = [row["recall_r"] for row in result.rows if row["dataset"] == dataset]
        assert series[0] >= series[-1] - 0.1
