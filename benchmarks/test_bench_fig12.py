"""Figure 12: AGP accuracy vs error percentage."""

from repro.experiments import fig12_agp_error_rate


def test_fig12_agp_error_rate(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig12_agp_error_rate,
        datasets=("car", "hai"),
        error_rates=(0.05, 0.15, 0.30),
        tuples=bench_tuples,
    )
    for dataset in ("car", "hai"):
        series = [row["recall_a"] for row in result.rows if row["dataset"] == dataset]
        # accuracy does not improve with more errors (paper: it declines)
        assert series[0] >= series[-1] - 0.05
