"""CI smoke driver for the cluster fabric.

Stands up one router plus two workers over a shared data directory, then
exercises the whole tentpole in one run:

1. fires N concurrent ``POST /clean`` requests through the router and
   asserts every response is byte-identical to a batch ``CleaningReport``
   computed locally,
2. streams delta micro-batches through the router, ``kill -9``'s the worker
   that owns the stream mid-way, keeps streaming through a retrying client
   (the failover is invisible to it), and asserts the surviving worker's
   recovered stream — masked report signature *and* cleaned table — is
   byte-identical to an uninterrupted in-process engine,
3. writes the router's merged ``/stats`` fan-in to a JSON artifact (worker
   traces land in ``--trace-dir`` for the CI upload).

Usage::

    python benchmarks/cluster_smoke.py --requests 24 \\
        --out cluster-stats.json --trace-dir cluster-traces
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.cluster.launch import spawn_router, spawn_worker, wait_for_workers
from repro.experiments.harness import prepare_instance
from repro.service import (
    ServiceClient,
    ServiceError,
    report_signature,
    report_signature_dict,
)
from repro.service.codec import canonical_json
from repro.session import CleaningSession
from repro.streaming import DeltaBatch, Insert, StreamingMLNClean
from repro.workloads.registry import get_workload_generator, recommended_config

CLEAN_WORKLOAD = "hospital-sample"
CLEAN_TUPLES = 48
CLEAN_ERROR_RATE = 0.1
STREAM_WORKLOAD = "hai"
STREAM_TUPLES = 32
STREAM_BATCH = 8


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def clean_reference():
    """The pre-service answer: one standalone batch session run."""
    instance = prepare_instance(
        CLEAN_WORKLOAD, tuples=CLEAN_TUPLES, error_rate=CLEAN_ERROR_RATE
    )
    session = CleaningSession(
        rules=instance.rules, config=recommended_config(CLEAN_WORKLOAD)
    )
    return session.run(table=instance.dirty, ground_truth=instance.ground_truth)


def stream_batches():
    """The delta stream: the workload's rows in arrival order, micro-batched."""
    instance = prepare_instance(STREAM_WORKLOAD, tuples=STREAM_TUPLES)
    schema = instance.dirty.attributes
    rows = list(instance.dirty.rows)
    return schema, [
        [
            Insert(values={a: r[a] for a in schema}, tid=r.tid)
            for r in rows[i:i + STREAM_BATCH]
        ]
        for i in range(0, len(rows), STREAM_BATCH)
    ]


def stream_reference(schema, batches):
    """An uninterrupted in-process engine over the same stream."""
    generator = get_workload_generator(STREAM_WORKLOAD, tuples=STREAM_TUPLES, seed=7)
    engine = StreamingMLNClean(
        generator.rules(),
        schema=schema,
        config=recommended_config(STREAM_WORKLOAD),
    )
    for deltas in batches:
        engine.apply_batch(DeltaBatch(list(deltas)))
    return engine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--out", default="cluster-stats.json")
    parser.add_argument("--trace-dir", default=None)
    args = parser.parse_args(argv)

    failures = 0
    data_dir = tempfile.mkdtemp(prefix="cluster-smoke-")
    router_port = free_port()
    worker_ports = {"w1": free_port(), "w2": free_port()}
    router = spawn_router(router_port, rebalance_interval=0.3, dead_after=1.5)
    workers = {
        worker_id: spawn_worker(
            port,
            worker_id,
            data_dir,
            router=f"127.0.0.1:{router_port}",
            snapshot_every=2,
            trace_dir=args.trace_dir,
        )
        for worker_id, port in worker_ports.items()
    }
    procs = [router, *workers.values()]
    try:
        wait_for_workers(router_port, 2)
        client = ServiceClient(
            port=router_port, timeout=600, retries=12, backoff=0.2, max_backoff=2.0
        )
        print(f"cluster up: router :{router_port}, workers {worker_ports}")

        # ------------------------------------------------------------------
        # phase 1: concurrent cleans through the router, byte-identical
        # ------------------------------------------------------------------
        reference = clean_reference()
        expected_signature = report_signature(reference)
        expected_masked = canonical_json(report_signature_dict(reference))

        def one_request(index: int) -> dict:
            try:
                return client.clean(
                    workload=CLEAN_WORKLOAD,
                    tuples=CLEAN_TUPLES,
                    error_rate=CLEAN_ERROR_RATE,
                    timeout=300,
                )
            except ServiceError as exc:
                return {
                    "id": f"request-{index}",
                    "status": f"http-{exc.status}",
                    "error": str(exc),
                }

        with ThreadPoolExecutor(max_workers=args.threads) as pool:
            jobs = list(pool.map(one_request, range(args.requests)))
        for job in jobs:
            if job["status"] != "done":
                print(f"FAIL: job {job['id']} ended {job['status']}: {job.get('error')}")
                failures += 1
                continue
            if ":" not in job["id"]:
                print(f"FAIL: job {job['id']} is not worker-namespaced")
                failures += 1
            result = job["result"]
            if result["signature"] != expected_signature:
                print(f"FAIL: job {job['id']} signature drifted from the batch report")
                failures += 1
            elif (
                canonical_json(report_signature_dict(result["report"]))
                != expected_masked
            ):
                print(f"FAIL: job {job['id']} report JSON differs from the batch report")
                failures += 1
        good = len(jobs) - failures
        print(
            f"{good}/{len(jobs)} routed clean responses byte-identical to the "
            f"batch CleaningReport (signature {expected_signature[:12]}…)"
        )

        # ------------------------------------------------------------------
        # phase 2: delta stream + kill -9 the owner mid-stream
        # ------------------------------------------------------------------
        schema, batches = stream_batches()
        ref_engine = stream_reference(schema, batches)
        ref_signature = report_signature(ref_engine.report())

        def send(deltas) -> dict:
            wire = [
                {"op": "insert", "values": dict(d.values), "tid": d.tid}
                for d in deltas
            ]
            return client.deltas(
                wire, workload=STREAM_WORKLOAD, seed=7, include_table=False
            )

        half = len(batches) // 2
        for deltas in batches[:half]:
            job = send(deltas)
            if job["status"] != "done":
                print(f"FAIL: delta job {job['id']} ended {job['status']}")
                failures += 1

        # the stream's owner is whichever worker answers /cluster/streams
        owner, stream_fp = None, None
        for worker_id, port in worker_ports.items():
            info = ServiceClient(port=port).request("GET", "/cluster/info")
            for fingerprint in info["shards"]:
                try:
                    ServiceClient(port=port).request(
                        "GET", f"/cluster/streams/{fingerprint}"
                    )
                except ServiceError:
                    continue
                owner, stream_fp = worker_id, fingerprint
        if owner is None:
            print("FAIL: no worker reports a live stream")
            return 1

        victim = workers[owner]
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        print(f"killed worker {owner} (SIGKILL) mid-stream; continuing the stream")

        for deltas in batches[half:]:
            job = send(deltas)
            if job["status"] != "done":
                print(f"FAIL: post-kill delta job {job['id']} ended {job['status']}")
                failures += 1

        survivor = next(w for w in worker_ports if w != owner)
        state = ServiceClient(port=worker_ports[survivor]).request(
            "GET", f"/cluster/streams/{stream_fp}"
        )
        if state["signature"] != ref_signature:
            print("FAIL: recovered stream signature differs from the reference")
            failures += 1
        else:
            print(
                f"recovered stream on {survivor} byte-identical after kill -9 "
                f"(signature {ref_signature[:12]}…, ticks={state['ticks']})"
            )
        from repro.core.report import table_to_json_dict

        if canonical_json(state["cleaned"]) != canonical_json(
            table_to_json_dict(ref_engine.cleaned)
        ):
            print("FAIL: recovered cleaned table differs from the reference")
            failures += 1

        # ------------------------------------------------------------------
        # artifacts: the router's merged fan-in
        # ------------------------------------------------------------------
        stats = client.stats()
        Path(args.out).write_text(json.dumps(stats, indent=1) + "\n", encoding="utf-8")
        print(f"merged /stats snapshot written to {args.out}")
        live = [w for w, info in stats["workers"].items() if info["live"]]
        print(
            f"membership after failover: live={live}, "
            f"pending_total={stats['pending_total']}, "
            f"shard_owners={ {w: len(s) for w, s in stats['shard_owners'].items()} }"
        )
        if owner in live:
            print(f"FAIL: killed worker {owner} still reported live")
            failures += 1
        return 1 if failures else 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            if proc.poll() is None:
                proc.wait()


if __name__ == "__main__":
    sys.exit(main())
