"""CI chaos driver: seeded fault injection against a real cluster.

The robustness acceptance criterion, end to end:

1. **Recoverable chaos.** A router plus two workers run under a *seeded*
   :class:`~repro.faults.FaultPlan` — a WAL fsync failure (degraded mode +
   probe recovery), dropped and duplicated router→worker delta calls (lost
   acks and retransmits, deduplicated through idempotency keys), stalled
   heartbeats (a network flap shorter than ``dead_after``) and slow-disk
   fsync delays.  All four registered workloads stream their delta
   micro-batches through a retrying client; every stream must end with a
   masked ``report_signature`` — and a cleaned table — byte-identical to an
   uninterrupted in-process engine.
2. **Unrecoverable damage fails loudly.** A standalone worker is
   ``kill -9``'d, one byte in the *middle* of its WAL is flipped, and the
   restarted worker must refuse to serve (non-zero exit), never silently
   continue from corrupt acknowledged history.

Artifacts: the fault schedule (``--plan-out``), the router's merged
``/stats`` fan-in (``--out``) and per-job traces (``--trace-dir``).

Usage::

    python benchmarks/chaos_smoke.py --seed 11 \\
        --out chaos-stats.json --plan-out chaos-plan.json \\
        --trace-dir chaos-traces
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import struct
import sys
import tempfile
from pathlib import Path

from repro.cluster.launch import (
    spawn_router,
    spawn_worker,
    wait_for_workers,
    wait_until_healthy,
)
from repro.experiments.harness import prepare_instance
from repro.faults import FaultPlan, FaultRule
from repro.service import ServiceClient, ServiceError, report_signature
from repro.service.codec import canonical_json
from repro.streaming import DeltaBatch, Insert, StreamingMLNClean
from repro.streaming.window import SlidingWindow
from repro.workloads.registry import get_workload_generator, recommended_config

#: every registered workload and the window (if any) its stream runs
WORKLOADS = {
    "hospital-sample": {"kind": "sliding", "size": 24},
    "hai": None,
    "car": None,
    "tpch": None,
}
TUPLES = 32
BATCH = 8


def build_plan(seed: int) -> FaultPlan:
    """The seeded schedule of *recoverable* faults (see the module doc)."""
    return FaultPlan(seed=seed, rules=(
        # one WAL fsync refused per worker: degraded mode + probe recovery
        FaultRule(point="wal.fsync", action="fail", nth=4, times=1),
        # a lost acknowledgement: the exchange happens, the response dies
        FaultRule(point="httpclient.request", action="drop",
                  match={"path": "/deltas"}, nth=3, times=1),
        # a retransmitted request: the worker must deduplicate it
        FaultRule(point="httpclient.request", action="duplicate",
                  match={"path": "/deltas"}, nth=6, times=1),
        # a network flap: two heartbeats swallowed (shorter than dead_after)
        FaultRule(point="worker.heartbeat", action="stall", nth=2, times=2),
        # a slow disk: periodic fsync latency, correctness unaffected
        FaultRule(point="wal.fsync", action="delay", delay_s=0.05, every=7),
    ))


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def workload_batches(workload: str):
    instance = prepare_instance(workload, tuples=TUPLES)
    schema = instance.dirty.attributes
    rows = list(instance.dirty.rows)
    return schema, [
        [
            Insert(values={a: r[a] for a in schema}, tid=r.tid)
            for r in rows[i:i + BATCH]
        ]
        for i in range(0, len(rows), BATCH)
    ]


def reference_state(workload: str, schema, batches) -> tuple:
    """(signature, canonical cleaned table) of an uninterrupted engine."""
    from repro.core.report import table_to_json_dict

    generator = get_workload_generator(workload, tuples=TUPLES, seed=7)
    window_spec = WORKLOADS[workload]
    engine = StreamingMLNClean(
        generator.rules(),
        schema=schema,
        config=recommended_config(workload),
        window=SlidingWindow(window_spec["size"]) if window_spec else None,
    )
    for deltas in batches:
        engine.apply_batch(DeltaBatch(list(deltas)))
    return (
        report_signature(engine.report()),
        canonical_json(table_to_json_dict(engine.cleaned)),
    )


def run_recoverable_phase(args, plan: FaultPlan) -> int:
    failures = 0
    data_dir = tempfile.mkdtemp(prefix="chaos-smoke-")
    router_port = free_port()
    worker_ports = {"w1": free_port(), "w2": free_port()}
    plan_json = plan.to_json()
    router = spawn_router(
        router_port, rebalance_interval=0.5, dead_after=2.0, fault_plan=plan_json
    )
    workers = {
        worker_id: spawn_worker(
            port,
            worker_id,
            data_dir,
            router=f"127.0.0.1:{router_port}",
            snapshot_every=100,
            trace_dir=args.trace_dir,
            fault_plan=plan_json,
        )
        for worker_id, port in worker_ports.items()
    }
    procs = [router, *workers.values()]
    try:
        wait_for_workers(router_port, 2)
        client = ServiceClient(
            port=router_port, timeout=600, retries=12, backoff=0.25, max_backoff=2.0
        )
        print(
            f"cluster up under fault plan (seed={plan.seed}, "
            f"{len(plan.rules)} rules): router :{router_port}, "
            f"workers {worker_ports}"
        )

        references = {}
        for workload, window in WORKLOADS.items():
            schema, batches = workload_batches(workload)
            references[workload] = reference_state(workload, schema, batches)
            for deltas in batches:
                wire = [
                    {"op": "insert", "values": dict(d.values), "tid": d.tid}
                    for d in deltas
                ]
                fields = {"workload": workload, "seed": 7, "include_table": False}
                if window:
                    fields["window"] = dict(window)
                # the retrying client generates idempotency keys, so the
                # injected drops/duplicates cannot double-apply a batch
                job = client.deltas(wire, **fields)
                if job["status"] != "done":
                    print(
                        f"FAIL: {workload} delta job {job['id']} ended "
                        f"{job['status']}: {job.get('error')}"
                    )
                    failures += 1
            print(f"streamed {len(batches)} micro-batches of {workload}")

        # collect every live stream's recovered state from both workers
        states = []
        for worker_id, port in worker_ports.items():
            worker_client = ServiceClient(port=port)
            info = worker_client.request("GET", "/cluster/info")
            for fingerprint in info["shards"]:
                try:
                    state = worker_client.request(
                        "GET", f"/cluster/streams/{fingerprint}"
                    )
                except ServiceError:
                    continue
                states.append(state)

        for workload, (signature, cleaned) in references.items():
            matches = [s for s in states if s["signature"] == signature]
            if not matches:
                print(
                    f"FAIL: no stream matches the fault-free signature of "
                    f"{workload} ({signature[:12]}…)"
                )
                failures += 1
                continue
            if any(canonical_json(s["cleaned"]) != cleaned for s in matches):
                print(f"FAIL: {workload} cleaned table drifted under faults")
                failures += 1
                continue
            print(
                f"{workload}: signature byte-identical under seeded faults "
                f"({signature[:12]}…)"
            )

        # prove the schedule actually fired: the merged metrics fan-in
        # carries each process's repro_faults_injected_total series
        import http.client as http_client

        conn = http_client.HTTPConnection("127.0.0.1", router_port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            metrics = conn.getresponse().read().decode("utf-8")
        finally:
            conn.close()
        fault_lines = [
            line for line in metrics.splitlines()
            if line.startswith("repro_faults_injected_total{")
        ]
        if not fault_lines:
            print("FAIL: no faults were injected — the plan never armed")
            failures += 1
        else:
            print("injected faults (merged metrics):")
            for line in sorted(fault_lines):
                print(f"  {line}")

        stats = client.stats()
        stats["chaos"] = {
            "plan": json.loads(plan.to_json()),
            "faults_fired": sorted(fault_lines),
        }
        Path(args.out).write_text(json.dumps(stats, indent=1) + "\n", encoding="utf-8")
        print(f"merged /stats snapshot written to {args.out}")
        return failures
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            if proc.poll() is None:
                proc.wait()


def run_unrecoverable_phase() -> int:
    """Mid-log WAL corruption must refuse recovery, loudly."""
    failures = 0
    data_dir = Path(tempfile.mkdtemp(prefix="chaos-corrupt-"))
    port = free_port()
    proc = spawn_worker(port, "w1", data_dir, snapshot_every=100)
    try:
        wait_until_healthy(port)
        client = ServiceClient(port=port)
        _schema, batches = workload_batches("hai")
        for deltas in batches[:3]:
            wire = [
                {"op": "insert", "values": dict(d.values), "tid": d.tid}
                for d in deltas
            ]
            job = client.deltas(wire, workload="hai", seed=7, include_table=False)
            if job["status"] != "done":
                print(f"FAIL: pre-corruption delta job ended {job['status']}")
                failures += 1
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    wal_path = next((data_dir / "shards").glob("*/wal.log"))
    raw = bytearray(wal_path.read_bytes())
    # flip one payload byte of the FIRST record: acknowledged history is
    # damaged while later frames stay intact — not a truncatable torn tail
    raw[len(b"RWAL1\n") + struct.calcsize(">II") + 4] ^= 0xFF
    wal_path.write_bytes(bytes(raw))
    print(f"flipped one mid-log byte in {wal_path}")

    proc = spawn_worker(free_port(), "w1", data_dir, snapshot_every=100)
    try:
        code = proc.wait(timeout=60)
    except Exception:
        proc.kill()
        proc.wait()
        print("FAIL: worker kept running over a corrupt WAL")
        return failures + 1
    if code == 0:
        print("FAIL: worker exited 0 despite a corrupt WAL")
        failures += 1
    else:
        print(f"worker refused the corrupt WAL (exit code {code}) — failing loudly")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default="chaos-stats.json")
    parser.add_argument("--plan-out", default="chaos-plan.json")
    parser.add_argument("--trace-dir", default=None)
    args = parser.parse_args(argv)

    plan = build_plan(args.seed)
    Path(args.plan_out).write_text(plan.to_json() + "\n", encoding="utf-8")
    print(f"fault schedule written to {args.plan_out}")

    failures = run_recoverable_phase(args, plan)
    failures += run_unrecoverable_phase()
    if failures:
        print(f"{failures} chaos check(s) FAILED")
    else:
        print("chaos smoke passed: recoverable faults converged byte-identically, "
              "unrecoverable corruption failed loudly")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
