"""Ablation: fusion score with and without the minimality factor."""

from repro.experiments import ablation_fscr_minimality


def test_ablation_fscr_minimality(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        ablation_fscr_minimality,
        datasets=("car", "hai"),
        tuples=bench_tuples,
    )
    rows = {(row["dataset"], row["variant"]): row["f1"] for row in result.rows}
    # the minimality factor never hurts HAI in this reproduction
    assert rows[("hai", "weights_and_minimality")] >= rows[("hai", "weights_only (Eq.5)")] - 0.02
