"""Table 6: distributed MLNClean runtime vs the number of workers."""

from repro.experiments import table06_worker_scaling


def test_table06_worker_scaling(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        table06_worker_scaling,
        dataset="tpch",
        worker_counts=(2, 4, 8),
        tuples=bench_tuples,
    )
    assert [row["workers"] for row in result.rows] == [2, 4, 8]
    assert all(row["runtime_s"] > 0 for row in result.rows)
    assert all(row["sequential_s"] >= row["runtime_s"] for row in result.rows)
