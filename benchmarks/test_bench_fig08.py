"""Figure 8: AGP precision/recall and #dag vs the threshold tau."""

from repro.experiments import fig08_agp_threshold


def test_fig08_agp_threshold(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig08_agp_threshold,
        datasets=("car", "hai"),
        thresholds={"car": (0, 1, 3, 5), "hai": (0, 10, 30, 50)},
        tuples=bench_tuples,
    )
    for dataset, optimal in (("car", 1), ("hai", 10)):
        rows = {row["threshold"]: row for row in result.rows if row["dataset"] == dataset}
        # tau = 0 detects nothing: #dag is 0 and recall collapses
        assert rows[0]["dag"] == 0
        # the tuned threshold performs at least as well as tau = 0
        assert rows[optimal]["recall_a"] >= rows[0]["recall_a"]
        # #dag grows with the threshold
        assert rows[max(rows)]["dag"] >= rows[optimal]["dag"]
