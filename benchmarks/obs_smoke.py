"""CI smoke driver for the observability layer.

Runs against an already-running ``python -m repro.service serve --trace-dir
DIR`` (the ``obs-smoke`` CI job boots one in the background) and checks the
three observable surfaces end to end:

1. **Requests** — fires concurrent ``POST /clean`` and ``POST /deltas``
   requests so the service has jobs to trace and meter;
2. **Metrics** — fetches ``GET /metrics`` raw, asserts the Prometheus
   content type, and feeds the body through the package's own *strict*
   :func:`repro.obs.parse_prometheus` (any malformed line fails the job),
   then checks the service-, stage- and distance-level series are present;
3. **Traces** — loads every ``trace-*.json`` the server exported and
   validates the Chrome ``trace_event`` schema: complete events only, one
   root per job, every parent id resolving inside the file;
4. **Overhead gate** — asserts that with tracing *off* the instrumentation
   costs at most ``--overhead-pct`` (default 2%) of a cleaning run: the
   number of spans a traced run records, times the measured cost of one
   no-op span on the null-tracer path, must stay under that share of the
   fastest of N untraced runs.

Usage::

    python -m repro.service serve --port 8736 --trace-dir traces &
    python benchmarks/obs_smoke.py --port 8736 --trace-dir traces \\
        --requests 8 --out obs-smoke.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path

from repro.experiments.harness import prepare_instance
from repro.obs import parse_prometheus, span
from repro.service import ServiceClient, ServiceError
from repro.session import CleaningSession
from repro.workloads.registry import recommended_config

WORKLOAD = "hospital-sample"
TUPLES = 48
ERROR_RATE = 0.1

#: the series every scrape of a served cleaning workload must carry
REQUIRED_METRIC_PREFIXES = (
    "repro_service_jobs_total",
    "repro_service_job_seconds_bucket",
    "repro_service_uptime_seconds",
    "repro_service_pending_jobs",
    "repro_stage_seconds_total",
    "repro_runs_total",
    "repro_distance_calls_total",
    "repro_distance_cache_hit_rate",
)


def fetch_metrics(host: str, port: int):
    """Raw ``GET /metrics``: (status, content type, body)."""
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read().decode("utf-8"),
        )
    finally:
        connection.close()


def drive_requests(client: ServiceClient, requests: int, threads: int) -> int:
    """Fire concurrent clean + delta requests; returns the failure count."""

    def one_clean(_index: int):
        return client.clean(
            workload=WORKLOAD, tuples=TUPLES, error_rate=ERROR_RATE, timeout=300
        )

    failures = 0
    with ThreadPoolExecutor(max_workers=threads) as pool:
        for job in pool.map(one_clean, range(requests)):
            if job["status"] != "done":
                print(f"FAIL: job {job['id']} ended {job['status']}: {job.get('error')}")
                failures += 1
    try:
        delta_job = client.deltas(
            [
                {
                    "op": "insert",
                    "values": {"HN": "H1", "CT": "DOTHAN", "ST": "AL", "PN": "1"},
                }
            ],
            workload=WORKLOAD,
        )
        if delta_job["status"] != "done":
            print(f"FAIL: delta job ended {delta_job['status']}")
            failures += 1
    except ServiceError as exc:
        print(f"FAIL: delta request answered {exc.status}: {exc}")
        failures += 1
    return failures


def check_metrics(host: str, port: int) -> "tuple[int, dict]":
    """Scrape and strictly parse /metrics; returns (failures, samples)."""
    failures = 0
    status, content_type, body = fetch_metrics(host, port)
    if status != 200:
        print(f"FAIL: GET /metrics answered {status}")
        return 1, {}
    if not (content_type or "").startswith("text/plain; version=0.0.4"):
        print(f"FAIL: /metrics content type is {content_type!r}")
        failures += 1
    try:
        samples = parse_prometheus(body)
    except ValueError as exc:
        print(f"FAIL: /metrics body is not valid Prometheus text: {exc}")
        return failures + 1, {}
    for prefix in REQUIRED_METRIC_PREFIXES:
        if not any(key.startswith(prefix) for key in samples):
            print(f"FAIL: /metrics is missing the {prefix} series")
            failures += 1
    hit_rate = samples.get("repro_distance_cache_hit_rate")
    if hit_rate is None or not 0.0 <= hit_rate <= 1.0:
        print(f"FAIL: distance cache hit rate {hit_rate!r} out of range")
        failures += 1
    print(f"/metrics: {len(samples)} samples parsed strictly")
    return failures, samples


def check_traces(trace_dir: Path, expected: int) -> int:
    """Validate every exported trace file as a connected trace_event tree."""
    failures = 0
    paths = sorted(trace_dir.glob("trace-*.json"))
    if len(paths) < expected:
        print(f"FAIL: only {len(paths)} trace files for {expected} finished jobs")
        failures += 1
    for path in paths:
        payload = json.loads(path.read_text(encoding="utf-8"))
        events = payload.get("traceEvents")
        if not events:
            print(f"FAIL: {path.name} carries no traceEvents")
            failures += 1
            continue
        ids = {event["args"]["span_id"] for event in events}
        roots = [e for e in events if e["args"]["parent_id"] is None]
        dangling = [
            e["name"]
            for e in events
            if e["args"]["parent_id"] is not None
            and e["args"]["parent_id"] not in ids
        ]
        if any(e.get("ph") != "X" for e in events):
            print(f"FAIL: {path.name} has non-complete events")
            failures += 1
        if len(roots) != 1:
            print(f"FAIL: {path.name} has {len(roots)} roots (want 1 per job)")
            failures += 1
        if dangling:
            print(f"FAIL: {path.name} has dangling parents on {dangling}")
            failures += 1
    print(f"traces: {len(paths)} files validated as connected span trees")
    return failures


def overhead_gate(max_share: float, rounds: int) -> "tuple[int, dict]":
    """Tracing OFF must cost <= ``max_share`` of a cleaning run's wall-clock.

    The off-path cost is spans-per-run (counted from one traced run) times
    the measured unit cost of a no-op span on the null-tracer path; the
    budget is ``max_share`` of the *fastest* of ``rounds`` untraced runs
    (min-of-N filters scheduler noise without hiding a real regression).
    """
    instance = prepare_instance(WORKLOAD, tuples=TUPLES * 4, error_rate=ERROR_RATE)
    config = recommended_config(WORKLOAD)

    def run_once(trace: bool):
        session = CleaningSession(
            rules=instance.rules, config=replace(config, trace=trace)
        )
        started = time.perf_counter()
        session.run(table=instance.dirty, ground_truth=instance.ground_truth)
        return time.perf_counter() - started, session

    _, traced_session = run_once(trace=True)
    spans_per_run = len(traced_session.last_trace.finished())
    baseline = min(run_once(trace=False)[0] for _ in range(rounds))

    probes = 20_000
    started = time.perf_counter()
    for _ in range(probes):
        with span("overhead-probe"):
            pass
    unit_cost = (time.perf_counter() - started) / probes

    off_path_cost = spans_per_run * unit_cost
    budget = max_share * baseline
    record = {
        "spans_per_run": spans_per_run,
        "null_span_unit_s": round(unit_cost, 9),
        "off_path_cost_s": round(off_path_cost, 9),
        "baseline_wall_s": round(baseline, 6),
        "budget_s": round(budget, 6),
        "share": round(off_path_cost / baseline, 6) if baseline else None,
    }
    print(
        f"overhead: {spans_per_run} spans x {unit_cost * 1e9:.0f}ns null-span "
        f"= {off_path_cost * 1e6:.1f}us against a {budget * 1e3:.2f}ms budget "
        f"({max_share:.0%} of a {baseline * 1e3:.1f}ms run)"
    )
    if off_path_cost > budget:
        print("FAIL: tracing-off instrumentation exceeds its overhead budget")
        return 1, record
    return 0, record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8736)
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--trace-dir", required=True)
    parser.add_argument("--overhead-pct", type=float, default=2.0)
    parser.add_argument("--overhead-rounds", type=int, default=3)
    parser.add_argument("--out", default="obs-smoke.json")
    args = parser.parse_args(argv)

    client = ServiceClient(host=args.host, port=args.port, timeout=600)
    health = client.wait_until_healthy(timeout=60)
    print(f"server healthy: {health}")

    failures = drive_requests(client, args.requests, args.threads)
    metric_failures, samples = check_metrics(args.host, args.port)
    failures += metric_failures
    failures += check_traces(Path(args.trace_dir), expected=args.requests + 1)
    gate_failures, overhead = overhead_gate(
        args.overhead_pct / 100.0, args.overhead_rounds
    )
    failures += gate_failures

    stats = client.stats()
    Path(args.out).write_text(
        json.dumps(
            {
                "metrics_samples": len(samples),
                "trace_files": len(sorted(Path(args.trace_dir).glob("trace-*.json"))),
                "overhead": overhead,
                "stats": stats,
            },
            indent=1,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"obs snapshot written to {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
