"""Figure 15: distributed MLNClean F1 and runtime vs error percentage."""

from repro.experiments import fig15_distributed


def test_fig15_distributed(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig15_distributed,
        datasets=("hai", "tpch"),
        error_rates=(0.05, 0.15, 0.30),
        workers=4,
        tuples=bench_tuples,
    )
    for dataset in ("hai", "tpch"):
        runtimes = [row["runtime_s"] for row in result.rows if row["dataset"] == dataset]
        # runtime grows with the error percentage (paper: same trend)
        assert runtimes[-1] >= runtimes[0] * 0.8
    assert all(row["speedup"] >= 1.0 for row in result.rows)
