"""Distance-budget gate for the batch API + q-gram filter + kernel (CI).

Runs the fig06 error-percentage experiment (both datasets, all error rates,
MLNClean and the HoloClean comparison) at a fixed 300 tuples and compares
against ``benchmarks/baselines/fig06_distance_budget.json``, which holds the
**scalar-era** budget measured before the batch candidate-set API landed.
The gate asserts two things:

* the pruned run performs at most ``1/MIN_DROP_FACTOR`` of the baseline's
  raw (pure-python) edit-distance evaluations — the sub-quadratic distance
  core must actually displace scalar DP work, whether onto the q-gram
  filter or onto the vectorized kernel,
* every F1 cell is *exactly* equal to the scalar-era value — the filter and
  the kernel are exactness-preserving by construction, so any drift is a
  correctness bug, not noise.

The baseline file is the pre-batch-API measurement and should not be
regenerated from a current (kernel-enabled) run — that would gate the drop
against itself.  ``--write`` exists only to re-capture the F1 map and budget
after an *intentional* workload or semantics change, with the scalar
backend forced::

    python benchmarks/check_fig06_budget.py           # gate
    python benchmarks/check_fig06_budget.py --write   # recalibrate baseline
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments import fig06_error_percentage
from repro.perf import global_distance_stats

BASELINE_PATH = Path(__file__).parent / "baselines" / "fig06_distance_budget.json"

#: the gated improvement: measured raw evaluations must be at most
#: ``baseline / MIN_DROP_FACTOR``
MIN_DROP_FACTOR = 5

#: fixed scale so the counts and F1 cells are reproducible run to run
TUPLES = 300
SEED = 7


def measure() -> dict:
    before = global_distance_stats()
    result = fig06_error_percentage(tuples=TUPLES, seed=SEED)
    delta = global_distance_stats().diff(before)
    f1: dict = {}
    for row in result.rows:
        dataset = f1.setdefault(row["dataset"], {})
        system = dataset.setdefault(row["system"], {})
        system[str(row["error_rate"])] = row["f1"]
    return {
        "tuples": TUPLES,
        "seed": SEED,
        "distance_calls": delta.calls,
        "raw_evaluations": delta.raw_evaluations,
        "kernel_evaluations": delta.kernel_evaluations,
        "qgram_filtered": delta.qgram_filtered,
        "f1": f1,
    }


def main(argv: list) -> int:
    measured = measure()
    print(
        "measured:",
        json.dumps({k: v for k, v in measured.items() if k != "f1"}, sort_keys=True),
    )
    if "--write" in argv:
        payload = dict(measured)
        payload.pop("kernel_evaluations", None)
        payload.pop("qgram_filtered", None)
        payload["comment"] = (
            "regenerated baseline; only meaningful when measured with "
            "distance_kernel='python' and qgram filtering representative "
            "of the era being gated against"
        )
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []

    budget = baseline["raw_evaluations"] / MIN_DROP_FACTOR
    drop = (
        baseline["raw_evaluations"] / measured["raw_evaluations"]
        if measured["raw_evaluations"]
        else float("inf")
    )
    print(
        f"raw_evaluations: baseline {baseline['raw_evaluations']} -> "
        f"measured {measured['raw_evaluations']} ({drop:.1f}x drop, "
        f"gate requires >= {MIN_DROP_FACTOR}x)"
    )
    if measured["raw_evaluations"] > budget:
        failures.append(
            f"raw_evaluations {measured['raw_evaluations']} exceeds the "
            f"budget {budget:.0f} (baseline {baseline['raw_evaluations']} / "
            f"{MIN_DROP_FACTOR})"
        )

    for dataset, systems in baseline["f1"].items():
        for system, cells in systems.items():
            for rate, expected in cells.items():
                got = measured["f1"].get(dataset, {}).get(system, {}).get(rate)
                if got != expected:
                    failures.append(
                        f"F1 drifted: {dataset}/{system}@{rate}: "
                        f"expected {expected}, measured {got}"
                    )
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print(
        f"ok: raw-evaluation budget met and all "
        f"{sum(len(c) for s in baseline['f1'].values() for c in s.values())} "
        f"F1 cells unchanged"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
