"""CI smoke driver for the cleaning service.

Fires N concurrent ``POST /clean`` requests against an already-running
``python -m repro.service serve`` (the ``service-smoke`` CI job boots one in
the background), asserts every response is byte-identical to a batch
``CleaningReport`` computed locally through a standalone session, and writes
the server's ``/stats`` snapshot to a JSON artifact.

Usage::

    python -m repro.service serve --port 8735 &
    python benchmarks/service_smoke.py --port 8735 --requests 24 \\
        --out service-stats.json
"""

from __future__ import annotations

import argparse
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.experiments.harness import prepare_instance
from repro.service import (
    ServiceClient,
    ServiceError,
    report_signature,
    report_signature_dict,
)
from repro.service.codec import canonical_json
from repro.session import CleaningSession
from repro.workloads.registry import recommended_config

WORKLOAD = "hospital-sample"
TUPLES = 48
ERROR_RATE = 0.1


def batch_reference():
    """The pre-service answer: one standalone session run."""
    instance = prepare_instance(WORKLOAD, tuples=TUPLES, error_rate=ERROR_RATE)
    session = CleaningSession(
        rules=instance.rules, config=recommended_config(WORKLOAD)
    )
    return session.run(table=instance.dirty, ground_truth=instance.ground_truth)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8735)
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--out", default="service-stats.json")
    args = parser.parse_args(argv)

    client = ServiceClient(host=args.host, port=args.port, timeout=600)
    health = client.wait_until_healthy(timeout=60)
    print(f"server healthy: {health}")

    reference = batch_reference()
    expected_signature = report_signature(reference)
    expected_masked = canonical_json(report_signature_dict(reference))

    def one_request(index: int) -> dict:
        # a server-side failure answers 4xx/5xx; count it instead of letting
        # one bad job crash the driver before the /stats artifact is written
        try:
            return client.clean(
                workload=WORKLOAD, tuples=TUPLES, error_rate=ERROR_RATE, timeout=300
            )
        except ServiceError as exc:
            return {
                "id": f"request-{index}",
                "status": f"http-{exc.status}",
                "error": str(exc),
            }

    with ThreadPoolExecutor(max_workers=args.threads) as pool:
        jobs = list(pool.map(one_request, range(args.requests)))

    failures = 0
    for job in jobs:
        if job["status"] != "done":
            print(f"FAIL: job {job['id']} ended {job['status']}: {job.get('error')}")
            failures += 1
            continue
        result = job["result"]
        if result["signature"] != expected_signature:
            print(f"FAIL: job {job['id']} signature drifted from the batch report")
            failures += 1
        elif canonical_json(report_signature_dict(result["report"])) != expected_masked:
            print(f"FAIL: job {job['id']} report JSON differs from the batch report")
            failures += 1
    print(
        f"{len(jobs) - failures}/{len(jobs)} concurrent responses byte-identical "
        f"to the batch CleaningReport (signature {expected_signature[:12]}…)"
    )

    stats = client.stats()
    Path(args.out).write_text(json.dumps(stats, indent=1) + "\n", encoding="utf-8")
    print(f"/stats snapshot written to {args.out}")
    print(
        f"latency: p50={stats['latency']['p50_s']}s p95={stats['latency']['p95_s']}s "
        f"over {stats['latency']['count']} jobs; "
        f"shards={len(stats['shards'])}, "
        f"distance cache hit rate={stats['distance']['hit_rate']}"
    )

    shard_jobs = sum(shard["jobs_done"] for shard in stats["shards"])
    if shard_jobs < args.requests:
        print(f"FAIL: shards report only {shard_jobs} completed jobs")
        failures += 1
    if stats["jobs"]["failed"] > 0:
        print(f"FAIL: server reports {stats['jobs']['failed']} failed jobs")
        failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
