"""Shared configuration of the benchmark suite.

Every benchmark regenerates one figure or table of the paper through the
corresponding harness in :mod:`repro.experiments` and prints the resulting
rows, so running ``pytest benchmarks/ --benchmark-only`` produces both the
timing numbers and the accuracy tables.

The workload sizes are scaled down (hundreds of tuples instead of the paper's
30 k-6 M) so the full suite finishes in minutes; pass ``--repro-tuples`` to
scale them up.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: rendered experiment tables are also written here so the figures/tables can
#: be inspected after a quiet benchmark run
RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-tuples",
        action="store",
        type=int,
        default=700,
        help="workload size (tuples) used by the figure/table benchmarks",
    )


@pytest.fixture(scope="session")
def bench_tuples(request) -> int:
    return request.config.getoption("--repro-tuples")


def run_and_report(benchmark, harness, **kwargs):
    """Run one experiment harness under pytest-benchmark and print its table."""
    result = benchmark.pedantic(lambda: harness(**kwargs), rounds=1, iterations=1)
    rendered = result.render()
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(rendered + "\n")
    return result


@pytest.fixture
def report_experiment():
    return run_and_report
