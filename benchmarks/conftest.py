"""Shared configuration of the benchmark suite.

Every benchmark regenerates one figure or table of the paper through the
corresponding harness in :mod:`repro.experiments` and prints the resulting
rows, so running ``pytest benchmarks/ --benchmark-only`` produces both the
timing numbers and the accuracy tables.

The workload sizes are scaled down (hundreds of tuples instead of the paper's
30 k-6 M) so the full suite finishes in minutes; pass ``--repro-tuples`` to
scale them up.

Alongside the rendered ``results/*.txt`` tables, the suite writes
``results/BENCH_perf.json``: per-figure wall-clock, distance-call counts,
raw metric evaluations, cache hit rate, and a per-stage wall-clock
breakdown, measured by diffing the process-global
:class:`repro.perf.DistanceStats` and the ``repro_stage_seconds_total``
metric around each harness run.  CI archives the file so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.obs import stage_seconds_snapshot
from repro.perf import global_distance_stats

#: rendered experiment tables are also written here so the figures/tables can
#: be inspected after a quiet benchmark run
RESULTS_DIR = Path(__file__).parent / "results"

#: experiment name → perf record collected while the suite runs
_PERF_RECORDS: dict = {}


def pytest_addoption(parser):
    parser.addoption(
        "--repro-tuples",
        action="store",
        type=int,
        default=700,
        help="workload size (tuples) used by the figure/table benchmarks",
    )


@pytest.fixture(scope="session")
def bench_tuples(request) -> int:
    return request.config.getoption("--repro-tuples")


def run_and_report(benchmark, harness, **kwargs):
    """Run one experiment harness under pytest-benchmark and print its table."""
    stats_before = global_distance_stats()
    stages_before = stage_seconds_snapshot()
    started = time.perf_counter()
    result = benchmark.pedantic(lambda: harness(**kwargs), rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - started
    delta = global_distance_stats().diff(stats_before)
    stages_after = stage_seconds_snapshot()
    _PERF_RECORDS[result.experiment] = {
        "wall_seconds": round(wall_seconds, 4),
        "distance_calls": delta.calls,
        "raw_evaluations": delta.raw_evaluations,
        "cache_hits": delta.cache_hits,
        "cache_hit_rate": round(delta.hit_rate, 4),
        "length_prunes": delta.length_prunes,
        "band_prunes": delta.band_prunes,
        "value_short_circuits": delta.value_short_circuits,
        "batch_queries": delta.batch_queries,
        "qgram_candidates": delta.qgram_candidates,
        "qgram_filtered": delta.qgram_filtered,
        "kernel_batches": delta.kernel_batches,
        "kernel_evaluations": delta.kernel_evaluations,
        # per-stage wall-clock attributed by the repro_stage_seconds_total
        # counter ("<backend>.<stage>" keys), diffed around the harness run
        "stage_seconds": {
            key: round(seconds - stages_before.get(key, 0.0), 4)
            for key, seconds in sorted(stages_after.items())
            if seconds - stages_before.get(key, 0.0) > 0.0
        },
    }
    rendered = result.render()
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(rendered + "\n")
    return result


@pytest.fixture
def report_experiment():
    return run_and_report


def pytest_sessionfinish(session, exitstatus):
    """Write the machine-readable perf summary once the suite is done."""
    if not _PERF_RECORDS:
        return
    totals = {
        key: sum(record[key] for record in _PERF_RECORDS.values())
        for key in (
            "wall_seconds",
            "distance_calls",
            "raw_evaluations",
            "cache_hits",
            "qgram_candidates",
            "qgram_filtered",
            "kernel_evaluations",
        )
    }
    totals["wall_seconds"] = round(totals["wall_seconds"], 4)
    totals["cache_hit_rate"] = round(
        totals["cache_hits"] / totals["distance_calls"], 4
    ) if totals["distance_calls"] else 0.0
    payload = {
        "tuples": session.config.getoption("--repro-tuples", default=700),
        "experiments": dict(sorted(_PERF_RECORDS.items())),
        "totals": totals,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_perf.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
