"""Figure 6: F1 and runtime vs error percentage, MLNClean vs HoloClean."""

from repro.experiments import fig06_error_percentage


def test_fig06_error_percentage(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig06_error_percentage,
        datasets=("car", "hai"),
        error_rates=(0.05, 0.15, 0.30),
        tuples=bench_tuples,
    )
    mlnclean_rows = [row for row in result.rows if row["system"] == "MLNClean"]
    assert all(0.0 <= row["f1"] <= 1.0 for row in result.rows)
    # accuracy does not improve as the data gets dirtier (paper: slight decline)
    for dataset in ("car", "hai"):
        series = [row["f1"] for row in mlnclean_rows if row["dataset"] == dataset]
        assert series[0] >= series[-1] - 0.05
