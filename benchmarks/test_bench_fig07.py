"""Figure 7: F1 vs the error type ratio Rret."""

from repro.experiments import fig07_error_type_ratio


def test_fig07_error_type_ratio(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        fig07_error_type_ratio,
        datasets=("car", "hai"),
        ratios=(0.0, 0.5, 1.0),
        tuples=bench_tuples,
    )
    # the paper's key qualitative claim: on sparse CAR with typo-only errors
    # (Rret = 0) MLNClean beats HoloClean
    car_typos = {
        row["system"]: row["f1"]
        for row in result.rows
        if row["dataset"] == "car" and row["replacement_ratio"] == 0.0
    }
    assert car_typos["MLNClean"] > car_typos["HoloClean"]
