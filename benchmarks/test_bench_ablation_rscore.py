"""Ablation: reliability score vs its weight-only / distance-only variants."""

from repro.experiments import ablation_reliability_score


def test_ablation_reliability_score(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        ablation_reliability_score,
        datasets=("car", "hai"),
        tuples=bench_tuples,
    )
    full = {row["dataset"]: row["precision_r"] for row in result.rows if row["variant"] == "full"}
    assert all(0.0 <= value <= 1.0 for value in full.values())
