"""Ablation: Algorithm-3 partitioning vs round-robin partitioning."""

from repro.experiments import ablation_partitioner


def test_ablation_partitioner(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        ablation_partitioner,
        dataset="tpch",
        workers=4,
        tuples=bench_tuples,
    )
    assert {row["partitioner"] for row in result.rows} == {"algorithm3", "round_robin"}
    assert all(row["runtime_s"] > 0 for row in result.rows)
