"""Table 5: MLNClean F1 under the Levenshtein vs cosine distance."""

from repro.experiments import table05_distance_metrics


def test_table05_distance_metrics(benchmark, bench_tuples, report_experiment):
    result = report_experiment(
        benchmark,
        table05_distance_metrics,
        datasets=("car", "hai"),
        tuples=bench_tuples,
    )
    by_key = {(row["dataset"], row["metric"]): row["f1"] for row in result.rows}
    # the paper finds the Levenshtein distance at least as good as cosine
    assert by_key[("hai", "levenshtein")] >= by_key[("hai", "cosine")] - 0.05
