"""Distance-call regression gate for CI (the bench-smoke job).

Cleans the hospital-sample workload with the batch pipeline and compares the
distance-engine counters against the checked-in baseline
(``benchmarks/baselines/hospital_sample_distance.json``).  The counts are
deterministic for a fixed workload — every best-so-far search iterates its
candidates in a canonical order — so a count creeping up means a fast path
stopped firing.  The job fails when ``distance_calls`` or
``exact_evaluations`` (scalar + kernel exact distance computations)
regress by more than 20 %.

Usage::

    python benchmarks/check_perf_baseline.py          # gate (installed pkg,
    python benchmarks/check_perf_baseline.py --write  # or PYTHONPATH=src)
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.errors.injector import ErrorSpec
from repro.experiments.harness import session_for_instance
from repro.perf import global_distance_stats
from repro.workloads.registry import get_workload_generator

BASELINE_PATH = Path(__file__).parent / "baselines" / "hospital_sample_distance.json"

#: counters gated against the baseline, with the allowed regression factor
#: (raw + kernel are gated as one exactness-preserving evaluation budget so
#: the gate is insensitive to which backend performed the work)
GATED = {"distance_calls": 1.2, "exact_evaluations": 1.2}

#: fixed workload so the counts are reproducible run to run
TUPLES = 120
WORKLOAD_SEED = 7
ERROR_RATE = 0.10
ERROR_SEED = 13


def measure() -> dict:
    """Clean the fixed hospital-sample instance and return engine counters."""
    workload = get_workload_generator(
        "hospital-sample", tuples=TUPLES, seed=WORKLOAD_SEED
    ).build()
    instance = workload.make_instance(
        ErrorSpec(error_rate=ERROR_RATE, seed=ERROR_SEED)
    )
    before = global_distance_stats()
    report = session_for_instance(instance, backend="batch").run()
    delta = global_distance_stats().diff(before)
    return {
        "workload": "hospital-sample",
        "tuples": TUPLES,
        "error_rate": ERROR_RATE,
        "f1": round(report.f1, 4),
        "distance_calls": delta.calls,
        "raw_evaluations": delta.raw_evaluations,
        "kernel_evaluations": delta.kernel_evaluations,
        "exact_evaluations": delta.exact_evaluations,
        "cache_hit_rate": round(delta.hit_rate, 4),
    }


def main(argv: list) -> int:
    measured = measure()
    print("measured:", json.dumps(measured, sort_keys=True))
    if "--write" in argv:
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(measured, indent=1, sort_keys=True) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --write first", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    print("baseline:", json.dumps(baseline, sort_keys=True))
    failures = []
    for counter, allowed_factor in GATED.items():
        limit = baseline[counter] * allowed_factor
        if measured[counter] > limit:
            failures.append(
                f"{counter} regressed: {measured[counter]} > "
                f"{limit:.0f} ({allowed_factor:.0%} of baseline {baseline[counter]})"
            )
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("ok: distance-call counts within 20% of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
