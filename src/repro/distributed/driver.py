"""The distributed MLNClean driver (Section 6 of the paper).

The pipeline mirrors the Spark deployment:

1. **Partition** the dirty table into ``k`` capacity-bounded parts
   (Algorithm 3).
2. **Worker phase 1 — learn**: each worker builds the MLN index of its part,
   runs AGP and learns the Markov weights of its local γs.
3. **Global weight fusion**: the driver combines the per-part weights with
   Eq. 6 so every γ has a single global weight.
4. **Worker phase 2 — clean**: each worker overwrites its local weights with
   the global ones, runs RSC and FSCR on its part and emits the repaired
   part.
5. **Gather**: the driver concatenates the repaired parts, eliminates
   duplicates globally and (optionally) evaluates accuracy against the
   ground truth.

Workers are simulated (run in-process); both the sequential total and the
parallel makespan are reported, which is what Figure 15 and Table 6 need.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.rules import Rule
from repro.core.agp import AbnormalGroupProcessor, AGPOutcome
from repro.core.config import MLNCleanConfig
from repro.core.dedup import DeduplicationResult, remove_duplicates
from repro.core.fscr import FusionScoreResolver
from repro.core.index import Block, MLNIndex
from repro.core.report import CleaningReport
from repro.core.rsc import ReliabilityScoreCleaner, RSCOutcome
from repro.dataset.table import Table
from repro.distributed.executor import SimulatedCluster
from repro.distributed.partition import DataPartitioner, PartitionResult
from repro.distributed.weights import GammaKey, GlobalWeightStore, fuse_weights
from repro.errors.groundtruth import GroundTruth
from repro.metrics.accuracy import RepairAccuracy, evaluate_repair
from repro.metrics.timing import TimingBreakdown
from repro.obs import ensure_tracer, span, stage_scope
from repro.perf.engine import DistanceEngine


def merge_stage_outcomes(
    agp_outcomes: Iterable[AGPOutcome],
    rsc_outcomes: Iterable[RSCOutcome],
) -> tuple[AGPOutcome, RSCOutcome]:
    """Deterministically fold per-worker / per-block Stage-I outcomes.

    The fold order is the iteration order of the inputs, which callers keep
    at partition order (distributed driver) or block order (the batch
    backend's ``parallelism=N`` mode), so merged ``StageCounts``, merge lists
    and repair lists are identical to what a serial run accumulates.
    """
    agp_total = AGPOutcome()
    for outcome in agp_outcomes:
        agp_total.extend(outcome)
    rsc_total = RSCOutcome()
    for outcome in rsc_outcomes:
        rsc_total.extend(outcome)
    return agp_total, rsc_total


@dataclass
class _LearnPhaseOutput:
    """What worker phase 1 ships back to the driver."""

    part_index: int
    blocks: list[Block]
    local_weights: dict[GammaKey, tuple[int, float]]
    agp: AGPOutcome = field(default_factory=AGPOutcome)


@dataclass
class _CleanPhaseOutput:
    """What worker phase 2 ships back to the driver."""

    part_index: int
    blocks: list[Block]
    rsc: RSCOutcome = field(default_factory=RSCOutcome)


@dataclass
class DistributedReport:
    """The outcome of one distributed run."""

    dirty: Table
    repaired: Table
    cleaned: Table
    partition: PartitionResult
    workers: int
    driver_timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    sequential_seconds: float = 0.0
    makespan_seconds: float = 0.0
    dedup: Optional[DeduplicationResult] = None
    accuracy: Optional[RepairAccuracy] = None
    #: merged Stage-I drill-down across all partitions (uninstrumented: the
    #: workers run without a ground truth, so the counts stay zero but the
    #: merge / repair listings are populated)
    agp: Optional[AGPOutcome] = None
    rsc: Optional[RSCOutcome] = None
    #: counters of the run's shared distance engine
    distance_stats: Optional[dict] = None

    @property
    def runtime(self) -> float:
        """Simulated parallel runtime: driver phases plus the worker makespan."""
        return self.driver_timings.total + self.makespan_seconds

    @property
    def sequential_runtime(self) -> float:
        """Single-machine runtime: driver phases plus all worker compute."""
        return self.driver_timings.total + self.sequential_seconds

    @property
    def speedup(self) -> float:
        """Sequential runtime over simulated parallel runtime."""
        if self.runtime == 0.0:
            return 1.0
        return self.sequential_runtime / self.runtime

    @property
    def f1(self) -> float:
        return self.accuracy.f1 if self.accuracy is not None else 0.0

    def as_dict(self) -> dict:
        """JSON-safe summary (how serialized reports carry this drill-down)."""
        return {
            "workers": self.workers,
            "partitions": self.partition.sizes,
            "runtime": self.runtime,
            "sequential_runtime": self.sequential_runtime,
            "speedup": self.speedup,
            "makespan_seconds": self.makespan_seconds,
            "sequential_seconds": self.sequential_seconds,
            "f1": self.f1,
            "distance_stats": dict(self.distance_stats)
            if self.distance_stats is not None
            else None,
        }

    def as_cleaning_report(self) -> "CleaningReport":
        """This run in the unified :class:`~repro.core.report.CleaningReport` shape.

        Driver phases keep their names; the simulated worker makespan is
        recorded as one ``workers`` phase so ``report.runtime`` equals the
        simulated parallel runtime.  The full distributed drill-down
        (partitioning, speedup, per-worker numbers) stays reachable through
        ``report.details``.
        """
        timings = TimingBreakdown(dict(self.driver_timings.phases))
        timings.record("workers", self.makespan_seconds)
        return CleaningReport(
            dirty=self.dirty,
            repaired=self.repaired,
            cleaned=self.cleaned,
            timings=timings,
            dedup=self.dedup,
            accuracy=self.accuracy,
            backend="distributed",
            details=self,
        )


class DistributedMLNClean:
    """Partitioned MLNClean over a simulated worker pool."""

    def __init__(
        self,
        workers: int = 4,
        config: Optional[MLNCleanConfig] = None,
        partitioner: Optional[DataPartitioner] = None,
    ):
        if workers < 1:
            raise ValueError("the distributed driver needs at least one worker")
        self.workers = workers
        self.config = config or MLNCleanConfig()
        #: when no partitioner is supplied, one is built per clean() call so
        #: it can restrict the tuple distance to the rule attributes (rows of
        #: the same entity then co-locate even in small partitions)
        self.partitioner = partitioner

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def clean(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        ground_truth: Optional[GroundTruth] = None,
    ) -> DistributedReport:
        """Run the distributed pipeline on ``dirty``."""
        if not rules:
            raise ValueError("distributed MLNClean needs at least one rule")
        with ensure_tracer(self.config.trace), span(
            "driver.clean", workers=self.workers, tuples=len(dirty)
        ):
            return self._clean(dirty, rules, ground_truth)

    def _clean(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        ground_truth: Optional[GroundTruth],
    ) -> DistributedReport:
        driver_timings = TimingBreakdown()
        cluster = SimulatedCluster(self.workers)
        # One engine for the whole run: the simulated workers execute
        # in-process, so partitioning, both worker phases and the gather step
        # share a single distance cache (value pairs recur across partitions).
        engine = self.config.engine()
        partitioner = self.partitioner or self._default_partitioner(
            dirty, rules, engine
        )

        with stage_scope(driver_timings, "distributed", "partition"):
            partition = partitioner.partition(dirty)
            part_tables = partition.tables(dirty)

        # The worker phases do not contribute to driver_timings: the report
        # accounts them through the cluster's makespan (one "workers" phase),
        # so adding them here would double-count the simulated runtime.  They
        # still get spans — one per phase, one per partition.
        with span("phase:learn", partitions=len(part_tables)):
            learn_results = cluster.map(
                "learn",
                lambda part: self._learn_phase(part[0], part[1], rules, engine),
                list(enumerate(part_tables)),
            )
        learn_outputs = [result.value for result in learn_results]

        with stage_scope(driver_timings, "distributed", "weight_fusion"):
            store = fuse_weights(output.local_weights for output in learn_outputs)

        with span("phase:clean", partitions=len(learn_outputs)):
            clean_results = cluster.map(
                "clean",
                lambda output: self._clean_phase(output, store, engine),
                learn_outputs,
            )
        clean_outputs = [result.value for result in clean_results]

        # Gather: the per-part data versions are combined and the conflicts
        # among them are eliminated "in the same way to stand-alone MLNClean"
        # (Section 6), i.e. FSCR runs over all blocks with a global candidate
        # pool, followed by global duplicate elimination.
        with stage_scope(driver_timings, "distributed", "gather"):
            all_blocks = [
                block for output in clean_outputs for block in output.blocks
            ]
            fscr = FusionScoreResolver(self.config, engine=engine)
            fscr_outcome = fscr.resolve(dirty, all_blocks)
            repaired = fscr_outcome.repaired
            repaired.name = f"{dirty.name}-distributed"
            dedup_result = None
            cleaned = repaired
            if self.config.remove_duplicates:
                dedup_result = remove_duplicates(repaired, engine)
                cleaned = dedup_result.deduplicated
            agp_total, rsc_total = merge_stage_outcomes(
                (output.agp for output in learn_outputs),
                (output.rsc for output in clean_outputs),
            )

        accuracy = None
        if ground_truth is not None:
            accuracy = evaluate_repair(dirty, repaired, ground_truth)

        return DistributedReport(
            dirty=dirty,
            repaired=repaired,
            cleaned=cleaned,
            partition=partition,
            workers=self.workers,
            driver_timings=driver_timings,
            sequential_seconds=cluster.sequential_seconds,
            makespan_seconds=cluster.makespan_seconds,
            dedup=dedup_result,
            accuracy=accuracy,
            agp=agp_total,
            rsc=rsc_total,
            distance_stats=engine.stats.as_dict(),
        )

    def _default_partitioner(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        engine: Optional[DistanceEngine] = None,
    ) -> DataPartitioner:
        """Algorithm-3 partitioner measuring distance on the rule attributes.

        Restricting the distance to the attributes the rules constrain keeps
        tuples of the same real-world entity (same provider, same customer)
        together even when partitions are small, which is what the Spark
        deployment relies on for per-partition cleaning quality.
        """
        attributes = []
        for rule in rules:
            for attribute in rule.attributes:
                if attribute in dirty.schema and attribute not in attributes:
                    attributes.append(attribute)
        return DataPartitioner(
            parts=self.workers,
            # the engine duck-types as a metric (values_distance) and caches
            # the centroid comparisons the heap maintenance keeps re-asking
            metric=engine if engine is not None else self.config.metric(),
            sample_attributes=attributes or None,
        )

    # ------------------------------------------------------------------
    # worker phases
    # ------------------------------------------------------------------
    def _learn_phase(
        self,
        part_index: int,
        part: Table,
        rules: Sequence[Rule],
        engine: Optional[DistanceEngine] = None,
    ) -> _LearnPhaseOutput:
        """Index construction, AGP and local weight learning on one part.

        The AGP threshold τ is tuned against whole-dataset group sizes; inside
        a partition every group only holds ~1/k of its tuples, so τ is scaled
        down proportionally (never below 1) before the per-partition AGP runs.
        Without this adaptation a τ tuned for the full HAI dataset would
        declare most partition-level groups abnormal.
        """
        with span("worker.learn", partition=part_index, tuples=len(part)):
            index = MLNIndex.build(part, rules)
            partition_threshold = max(
                1, self.config.abnormal_threshold // self.workers
            )
            partition_config = self.config.with_threshold(partition_threshold)
            agp = AbnormalGroupProcessor(partition_config, engine=engine)
            agp_outcome = agp.process_index(index.block_list)
            rsc = ReliabilityScoreCleaner(self.config, engine=engine)
            local_weights: dict[GammaKey, tuple[int, float]] = {}
            for block in index.block_list:
                rsc.learn_block_weights(block)
                for piece in block.pieces:
                    key: GammaKey = (
                        block.name,
                        piece.reason_values,
                        piece.result_values,
                    )
                    support, weight = local_weights.get(key, (0, 0.0))
                    local_weights[key] = (support + piece.support, piece.weight)
            return _LearnPhaseOutput(
                part_index, index.block_list, local_weights, agp=agp_outcome
            )

    def _clean_phase(
        self,
        learn_output: _LearnPhaseOutput,
        store: GlobalWeightStore,
        engine: Optional[DistanceEngine] = None,
    ) -> _CleanPhaseOutput:
        """RSC with the Eq.-6 global weights on one part's blocks."""
        with span("worker.clean", partition=learn_output.part_index):
            blocks = learn_output.blocks
            for block in blocks:
                for piece in block.pieces:
                    key: GammaKey = (
                        block.name,
                        piece.reason_values,
                        piece.result_values,
                    )
                    piece.weight = store.weight(key)
            rsc = ReliabilityScoreCleaner(self.config, engine=engine)
            rsc_outcome = rsc.clean_index(blocks, relearn_weights=False)
            return _CleanPhaseOutput(
                learn_output.part_index, blocks, rsc=rsc_outcome
            )
