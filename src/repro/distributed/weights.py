"""Global weight adjustment across partitions (Eq. 6 of the paper).

With only a slice of the data on each worker, the locally learned weight of a
γ "might not be very reliable".  The paper therefore combines the per-part
weights into a single global weight per γ:

    w(γ) = Σ_i n_i · w_i  /  Σ_i n_i

where ``n_i`` is the number of tuples supporting γ in part ``P_i`` and
``w_i`` the weight learned there.  Every γ then carries one global weight for
the remaining cleaning steps.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

#: a γ is identified globally by its rule and its reason/result values
GammaKey = tuple[str, tuple[str, ...], tuple[str, ...]]


@dataclass
class _Accumulator:
    weighted_sum: float = 0.0
    support: int = 0

    @property
    def weight(self) -> float:
        if self.support == 0:
            return 0.0
        return self.weighted_sum / self.support


class GlobalWeightStore:
    """Accumulates per-partition (support, weight) observations per γ."""

    def __init__(self) -> None:
        self._accumulators: dict[GammaKey, _Accumulator] = {}

    def record(self, key: GammaKey, support: int, weight: float) -> None:
        """Add one partition's observation of a γ."""
        if support < 0:
            raise ValueError("support must be non-negative")
        accumulator = self._accumulators.setdefault(key, _Accumulator())
        accumulator.weighted_sum += support * weight
        accumulator.support += support

    def weight(self, key: GammaKey) -> float:
        """The Eq.-6 global weight of a γ (0.0 for unknown γs)."""
        accumulator = self._accumulators.get(key)
        return accumulator.weight if accumulator is not None else 0.0

    def support(self, key: GammaKey) -> int:
        accumulator = self._accumulators.get(key)
        return accumulator.support if accumulator is not None else 0

    def __len__(self) -> int:
        return len(self._accumulators)

    def __contains__(self, key: object) -> bool:
        return key in self._accumulators

    def items(self) -> Iterable[tuple[GammaKey, float]]:
        return ((key, acc.weight) for key, acc in self._accumulators.items())


def fuse_weights(
    partition_weights: Iterable[Mapping[GammaKey, tuple[int, float]]]
) -> GlobalWeightStore:
    """Build a :class:`GlobalWeightStore` from per-partition observations.

    ``partition_weights`` is one mapping per partition of
    ``γ key → (support in the partition, learned weight in the partition)``.
    """
    store = GlobalWeightStore()
    for mapping in partition_weights:
        for key, (support, weight) in mapping.items():
            store.record(key, support, weight)
    return store
