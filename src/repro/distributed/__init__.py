"""Distributed MLNClean (Section 6 of the paper).

The paper deploys MLNClean on an 11-node Spark cluster.  Offline, this
package reproduces the *algorithmic* content of that deployment on a
simulated cluster:

* :mod:`repro.distributed.partition` — the capacity-bounded centroid
  partitioner of Algorithm 3,
* :mod:`repro.distributed.weights` — the Eq.-6 global weight adjustment that
  combines per-partition learned weights,
* :mod:`repro.distributed.executor` — a worker pool that runs the
  stand-alone Stage I on each partition and reports per-worker timings,
* :mod:`repro.distributed.driver` — the end-to-end distributed pipeline:
  partition → per-worker Stage I → global weight fusion → Stage II
  (FSCR + dedup) on the gathered result.

Workers run in-process (sequentially), so reported *parallel* runtimes are
the simulated makespan (the slowest worker plus the driver phases); the
sequential total is also reported so the speedup shape of Table 6 can be
reproduced without a physical cluster.
"""

from repro.distributed.partition import DataPartitioner, PartitionResult
from repro.distributed.weights import GlobalWeightStore, fuse_weights
from repro.distributed.executor import SimulatedCluster, WorkerResult
from repro.distributed.driver import DistributedMLNClean, DistributedReport

__all__ = [
    "DataPartitioner",
    "PartitionResult",
    "GlobalWeightStore",
    "fuse_weights",
    "SimulatedCluster",
    "WorkerResult",
    "DistributedMLNClean",
    "DistributedReport",
]
