"""Algorithm 3: capacity-bounded, centroid-based data partitioning.

Data skew "may lead the overall process to delay" on a cluster, so the paper
partitions the dataset into ``k`` parts of (almost) equal size while keeping
similar tuples together: each part has a randomly chosen centroid tuple and a
maximum capacity ``s = ⌈|T|/k⌉``; every remaining tuple goes to the part with
the closest centroid, and when that part is full either the new tuple or the
part's farthest member (the top of the part's max-heap) is displaced to its
closest non-full part.

The per-part max-heaps keyed by distance-to-centroid give the
``O(|T| · lg s)`` insertion cost the paper quotes.
"""

from __future__ import annotations

import heapq
import math
import random
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.dataset.table import Table
from repro.distance.base import DistanceMetric, get_metric


@dataclass
class Partition:
    """One part: its centroid tuple id and its member tuple ids."""

    index: int
    centroid_tid: int
    member_tids: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.member_tids)


@dataclass
class PartitionResult:
    """The outcome of partitioning a table into ``k`` parts."""

    partitions: list[Partition]
    capacity: int

    def tables(self, table: Table) -> list[Table]:
        """Materialise each part as its own :class:`Table` (tids preserved)."""
        return [
            table.subset(partition.member_tids, name=f"{table.name}-part{partition.index}")
            for partition in self.partitions
        ]

    @property
    def sizes(self) -> list[int]:
        return [partition.size for partition in self.partitions]

    def assignment(self) -> dict[int, int]:
        """tid → partition index."""
        mapping: dict[int, int] = {}
        for partition in self.partitions:
            for tid in partition.member_tids:
                mapping[tid] = partition.index
        return mapping


class DataPartitioner:
    """Partitions a table into ``k`` capacity-bounded parts (Algorithm 3)."""

    def __init__(
        self,
        parts: int,
        metric: Optional[DistanceMetric] = None,
        seed: int = 13,
        sample_attributes: Optional[Sequence[str]] = None,
    ):
        if parts < 1:
            raise ValueError("the number of parts must be >= 1")
        self.parts = parts
        self.metric = metric or get_metric("levenshtein")
        self.seed = seed
        #: attributes used in the tuple distance (all attributes by default);
        #: restricting them speeds up partitioning of wide tables
        self.sample_attributes = list(sample_attributes) if sample_attributes else None

    def partition(self, table: Table) -> PartitionResult:
        """Split ``table`` into ``min(parts, |T|)`` parts."""
        tids = table.tids
        if not tids:
            return PartitionResult(partitions=[], capacity=0)
        parts = min(self.parts, len(tids))
        capacity = math.ceil(len(tids) / parts)
        rng = random.Random(self.seed)

        attributes = self.sample_attributes or table.schema.attributes
        values = {tid: table.row(tid).values_for(attributes) for tid in tids}

        centroid_tids = rng.sample(tids, parts)
        centroids = {index: values[tid] for index, tid in enumerate(centroid_tids)}
        partitions = [
            Partition(index=index, centroid_tid=tid, member_tids=[tid])
            for index, tid in enumerate(centroid_tids)
        ]
        # Per-part max-heap of (-distance, tid): the root is the member
        # farthest from the centroid, the eviction candidate of Algorithm 3.
        heaps: list[list[tuple[float, int]]] = [[(0.0, tid)] for tid in centroid_tids]

        remaining = [tid for tid in tids if tid not in set(centroid_tids)]
        for tid in remaining:
            distances = [
                self.metric.values_distance(values[tid], centroids[index])
                for index in range(parts)
            ]
            closest = min(range(parts), key=lambda index: distances[index])
            if partitions[closest].size < capacity:
                self._insert(partitions[closest], heaps[closest], tid, distances[closest])
                continue
            # The closest part is full: either displace its farthest member or
            # send the new tuple elsewhere, whichever keeps members closer.
            top_negative, top_tid = heaps[closest][0]
            top_distance = -top_negative
            if distances[closest] < top_distance:
                heapq.heapreplace(heaps[closest], (-distances[closest], tid))
                partitions[closest].member_tids.remove(top_tid)
                partitions[closest].member_tids.append(tid)
                displaced = top_tid
            else:
                displaced = tid
            self._place_in_closest_open(
                displaced, values, centroids, partitions, heaps, capacity
            )
        return PartitionResult(partitions=partitions, capacity=capacity)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _insert(
        partition: Partition,
        heap: list[tuple[float, int]],
        tid: int,
        distance: float,
    ) -> None:
        partition.member_tids.append(tid)
        heapq.heappush(heap, (-distance, tid))

    def _place_in_closest_open(
        self,
        tid: int,
        values: dict[int, tuple[str, ...]],
        centroids: dict[int, tuple[str, ...]],
        partitions: list[Partition],
        heaps: list[list[tuple[float, int]]],
        capacity: int,
    ) -> None:
        """Insert a displaced tuple into its closest part that still has room."""
        open_parts = [p.index for p in partitions if p.size < capacity]
        if not open_parts:
            # All parts are at capacity (can only happen through rounding on
            # the very last tuple); relax the bound for the closest part.
            open_parts = [p.index for p in partitions]
        nearest = getattr(self.metric, "nearest", None)
        if nearest is not None:
            # A DistanceEngine: one batch query with best-so-far pruning
            # (the smallest-position tie-break equals min()'s first-minimal
            # pick because open_parts is ascending).
            offset, distance = nearest(
                values[tid], [centroids[index] for index in open_parts]
            )
            best = open_parts[offset]
        else:
            best = min(
                open_parts,
                key=lambda index: self.metric.values_distance(
                    values[tid], centroids[index]
                ),
            )
            distance = self.metric.values_distance(values[tid], centroids[best])
        self._insert(partitions[best], heaps[best], tid, distance)


def hash_partition(table: Table, parts: int) -> PartitionResult:
    """A trivial round-robin partitioner, used as the ablation baseline."""
    if parts < 1:
        raise ValueError("the number of parts must be >= 1")
    tids = table.tids
    parts = min(parts, max(len(tids), 1))
    capacity = math.ceil(len(tids) / parts) if tids else 0
    partitions = [Partition(index=i, centroid_tid=-1) for i in range(parts)]
    for position, tid in enumerate(tids):
        partitions[position % parts].member_tids.append(tid)
    for partition in partitions:
        if partition.member_tids:
            partition.centroid_tid = partition.member_tids[0]
    return PartitionResult(partitions=partitions, capacity=capacity)
