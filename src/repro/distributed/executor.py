"""A simulated worker pool.

The paper runs MLNClean on a Spark cluster with up to ten workers; offline,
the same *algorithm* is exercised by running each worker's task in-process
and recording its wall-clock time separately.  Two aggregate runtimes are
derived from the per-task timings:

* ``sequential_seconds`` — the plain sum (what a single machine pays), and
* ``makespan_seconds`` — the slowest worker of each phase (what a cluster
  with one task per worker would pay, ignoring network shuffle cost).

Table 6 of the paper (runtime vs. number of workers) is reproduced with the
makespan figure.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Generic, TypeVar

TaskInput = TypeVar("TaskInput")
TaskOutput = TypeVar("TaskOutput")


@dataclass
class WorkerResult(Generic[TaskOutput]):
    """The output and wall-clock time of one worker task."""

    worker_index: int
    value: TaskOutput
    elapsed_seconds: float


@dataclass
class PhaseTiming:
    """Aggregate timing of one map phase across all workers."""

    name: str
    per_worker_seconds: list[float] = field(default_factory=list)

    @property
    def sequential_seconds(self) -> float:
        return sum(self.per_worker_seconds)

    @property
    def makespan_seconds(self) -> float:
        return max(self.per_worker_seconds, default=0.0)


class SimulatedCluster:
    """Runs map phases over partitions, one task per (simulated) worker."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.workers = workers
        self.phases: list[PhaseTiming] = []

    def map(
        self,
        name: str,
        task: Callable[[TaskInput], TaskOutput],
        inputs: Sequence[TaskInput],
    ) -> list[WorkerResult[TaskOutput]]:
        """Apply ``task`` to every input, timing each application.

        Inputs beyond the worker count still run (they model multiple tasks
        queued on the same worker); the makespan accounts for that by summing
        the times of tasks assigned to the same worker slot round-robin.
        """
        results: list[WorkerResult[TaskOutput]] = []
        slot_times = [0.0] * self.workers
        for index, item in enumerate(inputs):
            started = time.perf_counter()
            value = task(item)
            elapsed = time.perf_counter() - started
            slot_times[index % self.workers] += elapsed
            results.append(WorkerResult(index, value, elapsed))
        self.phases.append(PhaseTiming(name, per_worker_seconds=list(slot_times)))
        return results

    # ------------------------------------------------------------------
    # aggregate timings
    # ------------------------------------------------------------------
    @property
    def sequential_seconds(self) -> float:
        """Total compute across all phases and workers."""
        return sum(phase.sequential_seconds for phase in self.phases)

    @property
    def makespan_seconds(self) -> float:
        """Simulated parallel runtime: per-phase slowest worker, summed."""
        return sum(phase.makespan_seconds for phase in self.phases)

    def phase(self, name: str) -> PhaseTiming:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r}")

    def reset(self) -> None:
        self.phases = []
