"""Synthetic error injection.

Reproduces the error model of Section 7.1 of the paper:

* the error rate is the fraction of erroneous attribute values over all
  attribute values of the table (5 % by default, up to 30 % in the sweeps),
* errors are injected only on attributes involved in the integrity
  constraints,
* a *typo* deletes one randomly chosen character of the value,
* a *replacement error* swaps the value for a different value drawn from the
  same attribute domain,
* the error type ratio ``Rret`` controls the fraction of replacement errors
  (0.5 by default: "a half fraction of typos and another half fraction of
  replacement errors").
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.rules import Rule
from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import ErrorType, GroundTruth, InjectedError


@dataclass
class ErrorSpec:
    """Configuration of one injection run."""

    #: fraction of dirty attribute values over all attribute values
    error_rate: float = 0.05
    #: fraction of replacement errors among injected errors (Rret)
    replacement_ratio: float = 0.5
    #: attributes eligible for corruption; ``None`` means "derive from rules"
    attributes: Optional[Sequence[str]] = None
    #: random seed for reproducibility
    seed: int = 42

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")
        if not 0.0 <= self.replacement_ratio <= 1.0:
            raise ValueError("replacement_ratio must be within [0, 1]")


@dataclass
class InjectionResult:
    """The outcome of an injection: the dirty table plus the ledger."""

    dirty: Table
    ground_truth: GroundTruth
    spec: ErrorSpec
    target_attributes: list[str] = field(default_factory=list)

    @property
    def injected_count(self) -> int:
        return len(self.ground_truth)

    @property
    def achieved_error_rate(self) -> float:
        return self.ground_truth.error_rate(self.dirty)


class ErrorInjector:
    """Injects typos and replacement errors into a clean table."""

    def __init__(self, spec: Optional[ErrorSpec] = None):
        self.spec = spec or ErrorSpec()

    def inject(
        self, clean: Table, rules: Optional[Sequence[Rule]] = None
    ) -> InjectionResult:
        """Corrupt a copy of ``clean`` and return it with its ground truth.

        When ``rules`` is given the corrupted attributes are restricted to
        those appearing in some rule, matching the paper's setup ("we add
        errors ... on attributes related to integrity constraints"); otherwise
        the attributes from the spec (or all attributes) are used.
        """
        spec = self.spec
        rng = random.Random(spec.seed)
        target_attributes = self._target_attributes(clean, rules)
        dirty = clean.copy(name=f"{clean.name}-dirty")
        domains = {a: clean.domain(a) for a in target_attributes}

        eligible_cells = [
            Cell(tid, attribute)
            for tid in clean.tids
            for attribute in target_attributes
        ]
        target_count = round(spec.error_rate * clean.cell_count)
        target_count = min(target_count, len(eligible_cells))
        chosen = rng.sample(eligible_cells, target_count) if target_count else []

        replacement_count = round(spec.replacement_ratio * len(chosen))
        ground_truth = GroundTruth()
        for index, cell in enumerate(chosen):
            clean_value = dirty.cell_value(cell)
            wants_replacement = index < replacement_count
            if wants_replacement:
                dirty_value, error_type = self._replace(
                    clean_value, domains[cell.attribute], rng
                )
            else:
                dirty_value, error_type = self._typo(clean_value, rng)
            if dirty_value == clean_value:
                # The value could not be corrupted (e.g. single-value domain
                # and a one-character string); skip it rather than record a
                # phantom error.
                continue
            dirty.set_cell(cell, dirty_value)
            ground_truth.add(
                InjectedError(cell, clean_value, dirty_value, error_type)
            )
        return InjectionResult(dirty, ground_truth, spec, target_attributes)

    # ------------------------------------------------------------------
    # corruption primitives
    # ------------------------------------------------------------------
    def _typo(self, value: str, rng: random.Random) -> tuple[str, ErrorType]:
        """Delete one random character ("we randomly delete any letter")."""
        if len(value) <= 1:
            # Deleting the only character would produce an empty value that the
            # string metrics cannot distinguish from a missing value; fall back
            # to appending a character instead so the cell is still corrupted.
            return value + "x", ErrorType.TYPO
        position = rng.randrange(len(value))
        return value[:position] + value[position + 1 :], ErrorType.TYPO

    def _replace(
        self, value: str, domain, rng: random.Random
    ) -> tuple[str, ErrorType]:
        """Swap the value for a different value of the same domain."""
        try:
            replacement = domain.sample(rng, exclude=value)
        except ValueError:
            # Single-value domain: fall back to a typo so the target error rate
            # is still met.
            return self._typo(value, rng)
        return replacement, ErrorType.REPLACEMENT

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _target_attributes(
        self, table: Table, rules: Optional[Sequence[Rule]]
    ) -> list[str]:
        if self.spec.attributes is not None:
            attributes = list(self.spec.attributes)
        elif rules:
            attributes = []
            for rule in rules:
                for attribute in rule.attributes:
                    if attribute not in attributes:
                        attributes.append(attribute)
        else:
            attributes = table.schema.attributes
        table.schema.validate_attributes(attributes)
        return attributes
