"""Error injection and ground-truth tracking.

The paper evaluates on datasets into which errors are injected synthetically
(Section 7.1): typos (a randomly chosen character of the value is deleted) and
replacement errors (the value is swapped for a different value of the same
domain), on the attributes touched by the integrity constraints, at a
configurable error rate (fraction of dirty cells over all cells) and error
type ratio ``Rret`` (fraction of replacement errors among the injected
errors).

:class:`ErrorInjector` performs the injection and returns a
:class:`GroundTruth` ledger recording the original value of every corrupted
cell, which the accuracy metrics consume.
"""

from repro.errors.injector import ErrorInjector, ErrorSpec, InjectionResult
from repro.errors.groundtruth import GroundTruth, InjectedError, ErrorType

__all__ = [
    "ErrorInjector",
    "ErrorSpec",
    "InjectionResult",
    "GroundTruth",
    "InjectedError",
    "ErrorType",
]
