"""Ground-truth ledger of injected errors.

Every corrupted cell is recorded with its original (correct) value, its dirty
value and the type of error injected, so that:

* the repair metrics can decide whether a repaired cell was restored to its
  correct value,
* the HoloClean baseline can be run in the paper's "100 % detection accuracy"
  mode (the detector is simply handed the dirty cells), and
* the component metrics (Precision-A/R/F) can attribute errors to the stage
  that should have fixed them.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Optional

from repro.dataset.table import Cell, Table


class ErrorType(enum.Enum):
    """The two instance-level error processes of Section 7.1."""

    TYPO = "typo"
    REPLACEMENT = "replacement"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


@dataclass(frozen=True)
class InjectedError:
    """One corrupted cell: where, what it was, what it became, and how."""

    cell: Cell
    clean_value: str
    dirty_value: str
    error_type: ErrorType


class GroundTruth:
    """The ledger of all injected errors for one dirty table."""

    def __init__(self, errors: Optional[Iterable[InjectedError]] = None):
        self._by_cell: dict[Cell, InjectedError] = {}
        if errors is not None:
            for error in errors:
                self.add(error)

    def add(self, error: InjectedError) -> None:
        """Record one injected error (one record per cell)."""
        if error.cell in self._by_cell:
            raise ValueError(f"cell {error.cell} already has an injected error")
        self._by_cell[error.cell] = error

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def errors(self) -> list[InjectedError]:
        return list(self._by_cell.values())

    @property
    def dirty_cells(self) -> set[Cell]:
        """All cells that were corrupted."""
        return set(self._by_cell)

    def is_dirty(self, cell: Cell) -> bool:
        return cell in self._by_cell

    def clean_value(self, cell: Cell) -> str:
        """The correct value of a corrupted cell."""
        return self._by_cell[cell].clean_value

    def error(self, cell: Cell) -> InjectedError:
        return self._by_cell[cell]

    def errors_of_type(self, error_type: ErrorType) -> list[InjectedError]:
        return [e for e in self._by_cell.values() if e.error_type is error_type]

    def __len__(self) -> int:
        return len(self._by_cell)

    def __iter__(self) -> Iterator[InjectedError]:
        return iter(self._by_cell.values())

    def __contains__(self, cell: object) -> bool:
        return cell in self._by_cell

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroundTruth({len(self)} injected errors)"

    # ------------------------------------------------------------------
    # derived artefacts
    # ------------------------------------------------------------------
    def clean_table(self, dirty: Table) -> Table:
        """Reconstruct the clean table by undoing every injected error."""
        restored = dirty.copy(name=f"{dirty.name}-restored")
        for error in self._by_cell.values():
            if restored.has_tid(error.cell.tid):
                restored.set_cell(error.cell, error.clean_value)
        return restored

    def error_rate(self, table: Table) -> float:
        """Injected errors over total attribute values of ``table``."""
        if table.cell_count == 0:
            return 0.0
        return len(self._by_cell) / table.cell_count

    def type_counts(self) -> dict[ErrorType, int]:
        """Number of injected errors per error type."""
        counts = {error_type: 0 for error_type in ErrorType}
        for error in self._by_cell.values():
            counts[error.error_type] += 1
        return counts

    def merge(self, other: "GroundTruth") -> "GroundTruth":
        """Combine two ledgers over disjoint cells."""
        merged = GroundTruth(self._by_cell.values())
        for error in other:
            merged.add(error)
        return merged
