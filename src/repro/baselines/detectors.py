"""Error detectors for the HoloClean-style baseline.

HoloClean "adopts external modules for error detection and it can only fix
errors caught by the error detection phase" (Section 7.2).  The paper sets
the detection accuracy to 100 % for a fair comparison; :class:`PerfectDetector`
reproduces that setting by reading the injected-error ledger.
:class:`ViolationDetector` is the realistic alternative: it flags the cells
implicated by integrity-constraint violations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.constraints.rules import Rule
from repro.constraints.violations import violating_cells
from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import GroundTruth


class ErrorDetector(ABC):
    """Interface of the detection phase: which cells are considered noisy."""

    @abstractmethod
    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        """The set of cells the repair phase is allowed to change."""


class PerfectDetector(ErrorDetector):
    """Returns exactly the injected cells (the paper's 100 %-accuracy setting)."""

    def __init__(self, ground_truth: GroundTruth):
        self.ground_truth = ground_truth

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        del rules
        return {cell for cell in self.ground_truth.dirty_cells if table.has_tid(cell.tid)}


class ViolationDetector(ErrorDetector):
    """Flags the cells implicated by at least one constraint violation."""

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        return violating_cells(table, rules)


class UnionDetector(ErrorDetector):
    """The union of several detectors (e.g. violations plus outliers)."""

    def __init__(self, detectors: Sequence[ErrorDetector]):
        if not detectors:
            raise ValueError("UnionDetector needs at least one detector")
        self.detectors = list(detectors)

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        cells: set[Cell] = set()
        for detector in self.detectors:
            cells.update(detector.detect(table, rules))
        return cells
