"""Error detectors for the HoloClean-style baseline (back-compat shim).

.. deprecated::
    The detectors moved to :mod:`repro.detect`, which adds the registry
    (``register_detector`` / ``available_detectors`` / ``get_detector``),
    the ``null`` / ``fixed`` / ``outlier`` / ``all-cells`` built-ins, the
    :class:`~repro.detect.DirtyCells` provenance type, and HoloClean-format
    denial-constraint ingestion.  This module re-exports the historical
    names — ``ErrorDetector``, ``PerfectDetector``, ``ViolationDetector``,
    ``UnionDetector`` — so existing imports and subclasses keep working
    unchanged; new code should import from :mod:`repro.detect`.

HoloClean "adopts external modules for error detection and it can only fix
errors caught by the error detection phase" (Section 7.2).  The paper sets
the detection accuracy to 100 % for a fair comparison; ``PerfectDetector``
reproduces that setting by reading the injected-error ledger.
``ViolationDetector`` is the realistic alternative: it flags the cells
implicated by integrity-constraint violations.
"""

from __future__ import annotations

from repro.detect.base import Detector as ErrorDetector
from repro.detect.builtin import (
    PerfectDetector,
    UnionDetector,
    ViolationDetector,
)

__all__ = [
    "ErrorDetector",
    "PerfectDetector",
    "ViolationDetector",
    "UnionDetector",
]
