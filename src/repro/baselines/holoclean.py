"""The HoloClean-style probabilistic repair baseline.

HoloClean (the paper's state-of-the-art comparator) repairs one cell at a
time: an external detector marks noisy cells, a statistical model is trained
on the clean partition, and every noisy cell is assigned its most probable
candidate value.  The paper runs it with a 100 %-accuracy detector so only
repair quality is compared; :class:`HoloCleanBaseline` defaults to the same
setting via :class:`~repro.baselines.detectors.PerfectDetector` when a ground
truth is supplied.

Two properties of the original system — both discussed in Section 7.2 of the
paper — are deliberately preserved:

* the minimum repair unit is a single attribute value (MLNClean repairs a
  whole γ at once, which is one source of its speed advantage), and
* the model is trained only on the clean partition, so error types that never
  appear among clean values (typos) are harder to fix than replacement
  errors, especially on sparse data such as CAR.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.detectors import ErrorDetector, PerfectDetector, ViolationDetector
from repro.baselines.factor_graph import CellFactorGraph
from repro.constraints.rules import Rule
from repro.core.report import CleaningReport
from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import GroundTruth
from repro.metrics.accuracy import RepairAccuracy, evaluate_repair
from repro.metrics.timing import TimingBreakdown


@dataclass
class HoloCleanConfig:
    """Tunable parameters of the baseline."""

    #: maximum number of repair candidates per noisy cell after pruning
    max_candidates: int = 20
    #: SGD epochs for feature-weight training
    training_epochs: int = 10
    #: number of clean cells sampled as training examples
    training_sample: int = 2000
    #: SGD learning rate
    learning_rate: float = 0.5
    #: random seed (sampling of training cells, SGD shuffling)
    seed: int = 11


@dataclass
class HoloCleanReport:
    """The outcome of one baseline run."""

    dirty: Table
    repaired: Table
    detected_cells: set[Cell] = field(default_factory=set)
    repairs: dict[Cell, str] = field(default_factory=dict)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    accuracy: Optional[RepairAccuracy] = None

    @property
    def runtime(self) -> float:
        return self.timings.total

    @property
    def f1(self) -> float:
        return self.accuracy.f1 if self.accuracy is not None else 0.0

    def as_dict(self) -> dict:
        """JSON-safe summary (how serialized reports carry this drill-down)."""
        return {
            "detected_cells": len(self.detected_cells),
            "repaired_cells": len(self.repairs),
        }

    def as_cleaning_report(self) -> CleaningReport:
        """This run in the unified :class:`~repro.core.report.CleaningReport` shape.

        HoloClean neither deduplicates nor removes tuples, so ``cleaned`` is
        the repaired table itself; the full baseline drill-down (detected
        cells, per-cell repairs) stays reachable through ``report.details``.
        """
        return CleaningReport(
            dirty=self.dirty,
            repaired=self.repaired,
            cleaned=self.repaired,
            timings=self.timings,
            accuracy=self.accuracy,
            backend="holoclean",
            details=self,
        )


class HoloCleanBaseline:
    """Detect-then-repair probabilistic cleaning, one cell at a time."""

    def __init__(self, config: Optional[HoloCleanConfig] = None):
        self.config = config or HoloCleanConfig()

    def clean(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        ground_truth: Optional[GroundTruth] = None,
        detector: Optional[ErrorDetector] = None,
    ) -> HoloCleanReport:
        """Run detection, training and repair on ``dirty``.

        When ``detector`` is omitted, a :class:`PerfectDetector` is used if a
        ground truth is available (the paper's comparison setting) and a
        :class:`ViolationDetector` otherwise.
        """
        timings = TimingBreakdown()
        if detector is None:
            detector = (
                PerfectDetector(ground_truth)
                if ground_truth is not None
                else ViolationDetector()
            )

        with timings.time("detect"):
            noisy_cells = detector.detect(dirty, rules)

        repaired = dirty.copy(name=f"{dirty.name}-holoclean")
        report = HoloCleanReport(
            dirty=dirty,
            repaired=repaired,
            detected_cells=set(noisy_cells),
            timings=timings,
        )
        if noisy_cells:
            with timings.time("compile"):
                graph = CellFactorGraph(
                    dirty,
                    rules,
                    noisy_cells,
                    max_candidates=self.config.max_candidates,
                    seed=self.config.seed,
                )
            with timings.time("train"):
                examples = graph.training_examples(self.config.training_sample)
                graph.train(
                    examples,
                    epochs=self.config.training_epochs,
                    learning_rate=self.config.learning_rate,
                )
            with timings.time("repair"):
                for cell in sorted(noisy_cells, key=lambda c: (c.tid, c.attribute)):
                    best = graph.map_repair(cell)
                    if best.value != dirty.cell_value(cell):
                        repaired.set_cell(cell, best.value)
                        report.repairs[cell] = best.value

        if ground_truth is not None:
            report.accuracy = evaluate_repair(dirty, repaired, ground_truth)
        return report
