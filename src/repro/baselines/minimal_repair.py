"""A purely qualitative minimality-based repairer.

The introduction of the paper describes how classic qualitative techniques
repair constraint violations "with the principle of minimality (i.e.,
minimizing the impact on the dataset by trying to preserve as many tuples as
possible)": in a group of tuples that agree on a rule's reason part but
disagree on its result part, the minority values are overwritten by the
majority value.  The paper also points out the limits of this approach — it
cannot fix values that violate no rule (t2's typo) and cannot recover
replacement errors in the reason part (t3) — which is exactly why MLNClean
exists.  This repairer is kept as an ablation baseline so those limits are
measurable.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.rules import (
    ConditionalFunctionalDependency,
    Rule,
)
from repro.core.report import CleaningReport
from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import GroundTruth
from repro.metrics.accuracy import RepairAccuracy, evaluate_repair
from repro.metrics.timing import TimingBreakdown


@dataclass
class MinimalRepairReport:
    """Outcome of the minimality-only repairer."""

    dirty: Table
    repaired: Table
    repairs: dict[Cell, str] = field(default_factory=dict)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    accuracy: Optional[RepairAccuracy] = None

    @property
    def f1(self) -> float:
        return self.accuracy.f1 if self.accuracy is not None else 0.0

    def as_dict(self) -> dict:
        """JSON-safe summary (how serialized reports carry this drill-down)."""
        return {"repaired_cells": len(self.repairs)}

    def as_cleaning_report(self) -> CleaningReport:
        """This run in the unified :class:`~repro.core.report.CleaningReport` shape.

        The repairer only overwrites values (no tuple removal), so
        ``cleaned`` equals the repaired table; the per-cell repair listing
        stays reachable through ``report.details``.
        """
        return CleaningReport(
            dirty=self.dirty,
            repaired=self.repaired,
            cleaned=self.repaired,
            timings=self.timings,
            accuracy=self.accuracy,
            backend="minimal-repair",
            details=self,
        )


class MinimalityRepairer:
    """Majority-vote repair of constraint violations, one rule at a time."""

    def clean(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        ground_truth: Optional[GroundTruth] = None,
    ) -> MinimalRepairReport:
        repaired = dirty.copy(name=f"{dirty.name}-minimal")
        report = MinimalRepairReport(dirty=dirty, repaired=repaired)
        with report.timings.time("repair"):
            for rule in rules:
                self._repair_rule(repaired, rule, report)
        if ground_truth is not None:
            report.accuracy = evaluate_repair(dirty, repaired, ground_truth)
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _repair_rule(self, table: Table, rule: Rule, report: MinimalRepairReport) -> None:
        if isinstance(rule, ConditionalFunctionalDependency):
            self._repair_cfd(table, rule, report)
            return
        self._repair_dependency(table, rule, report)

    def _repair_dependency(
        self, table: Table, rule: Rule, report: MinimalRepairReport
    ) -> None:
        """FD / DC repair: within a reason-value group, impose the majority result."""
        reason_attrs = rule.reason_attributes
        result_attrs = rule.result_attributes
        groups: dict[tuple[str, ...], list[int]] = {}
        for row in table:
            values = row.as_dict()
            if not rule.covers(values):
                continue
            groups.setdefault(tuple(values[a] for a in reason_attrs), []).append(row.tid)
        for tids in groups.values():
            if len(tids) < 2:
                continue
            results = Counter(
                table.row(tid).values_for(result_attrs) for tid in tids
            )
            if len(results) <= 1:
                continue
            majority = results.most_common(1)[0][0]
            for tid in tids:
                current = table.row(tid).values_for(result_attrs)
                if current == majority:
                    continue
                for attribute, value in zip(result_attrs, majority):
                    table.set_value(tid, attribute, value)
                    report.repairs[Cell(tid, attribute)] = value

    def _repair_cfd(
        self,
        table: Table,
        rule: ConditionalFunctionalDependency,
        report: MinimalRepairReport,
    ) -> None:
        """CFD repair: force the constant consequent on pattern-matching tuples."""
        constant_consequents = rule.constant_consequents
        if not constant_consequents:
            self._repair_dependency(table, rule, report)
            return
        for row in table:
            if not rule.matches_pattern(row.as_dict()):
                continue
            for attribute, value in constant_consequents.items():
                if row[attribute] != value:
                    table.set_value(row.tid, attribute, value)
                    report.repairs[Cell(row.tid, attribute)] = value
