"""Comparison baselines.

The paper's experimental comparator is HoloClean (Rekatsinas et al., VLDB
2017), configured with a perfect (100 %-accuracy) external error detector so
only its repair quality is measured.  HoloClean itself is built on DeepDive
and is not available offline, so :mod:`repro.baselines.holoclean` implements a
faithful simplification: probabilistic per-cell repair over a factor graph
with co-occurrence, constraint and minimality features, trained on the clean
partition of the data (Section 7.2 describes exactly this regime and its
weaknesses, which the reproduction preserves).

A second, purely qualitative baseline (:mod:`repro.baselines.minimal_repair`)
applies the classic minimality principle the paper describes in its
introduction; it is used by the ablation benchmarks.
"""

from repro.baselines.detectors import ErrorDetector, PerfectDetector, ViolationDetector
from repro.baselines.factor_graph import (
    CellFactorGraph,
    FactorGraphRepairer,
    FactorGraphReport,
    RepairCandidate,
)
from repro.baselines.holoclean import HoloCleanBaseline, HoloCleanConfig, HoloCleanReport
from repro.baselines.minimal_repair import MinimalityRepairer, MinimalRepairReport

__all__ = [
    "ErrorDetector",
    "PerfectDetector",
    "ViolationDetector",
    "CellFactorGraph",
    "RepairCandidate",
    "FactorGraphRepairer",
    "FactorGraphReport",
    "HoloCleanBaseline",
    "HoloCleanConfig",
    "HoloCleanReport",
    "MinimalityRepairer",
    "MinimalRepairReport",
]
