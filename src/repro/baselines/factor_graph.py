"""A lightweight factor graph for per-cell probabilistic repair.

HoloClean compiles repair signals (integrity constraints, co-occurrence
statistics, minimality priors) into a factor graph whose random variables are
the noisy cells and whose factor weights are learned from the clean part of
the data.  This module implements the same construction at the granularity
the baseline needs:

* every noisy cell becomes a variable whose domain is a pruned candidate set,
* every candidate is scored by a feature vector (co-occurrence with the
  tuple's other values, raw frequency, minimality, constraint compatibility),
* feature weights are trained with softmax regression (SGD) on the clean
  cells — each clean cell is a labelled example whose observed value is the
  correct assignment,
* inference assigns every noisy cell the candidate with the highest
  probability under the learned weights.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.rules import (
    ConditionalFunctionalDependency,
    DenialConstraint,
    FunctionalDependency,
    Rule,
)
from repro.core.report import CleaningReport
from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import GroundTruth
from repro.metrics.accuracy import RepairAccuracy, evaluate_repair
from repro.metrics.timing import TimingBreakdown

#: names of the candidate features, in vector order
FEATURE_NAMES = (
    "cooccurrence",
    "frequency",
    "minimality",
    "constraint",
)


@dataclass
class RepairCandidate:
    """One candidate value for a noisy cell, with its feature vector."""

    cell: Cell
    value: str
    features: tuple[float, ...]
    probability: float = 0.0


@dataclass
class TrainingExample:
    """A clean cell used as a labelled example during weight learning."""

    candidates: list[RepairCandidate]
    correct_index: int


class CooccurrenceModel:
    """Pairwise co-occurrence and frequency statistics of the clean cells.

    Statistics are collected only from tuples/cells that the detector did not
    flag, mirroring HoloClean's clean/noisy split: "it uses clean values which
    are picked by error detection methods to learn the statistical model
    parameters" (Section 7.2).
    """

    def __init__(self) -> None:
        #: (attribute, value) -> count over clean cells
        self.value_counts: dict[tuple[str, str], int] = Counter()
        #: (given_attr, given_value) -> target_attr -> Counter(target_value)
        self.cooccurrence_index: dict[tuple[str, str], dict[str, Counter]] = {}
        #: attribute -> number of clean observations
        self.attribute_totals: dict[str, int] = Counter()
        #: attribute -> Counter(value), for frequency-ranked candidate padding
        self.per_attribute_counts: dict[str, Counter] = defaultdict(Counter)

    @classmethod
    def fit(cls, table: Table, noisy_cells: set[Cell]) -> "CooccurrenceModel":
        model = cls()
        for row in table:
            values = row.as_dict()
            clean_attrs = [
                a for a in values if Cell(row.tid, a) not in noisy_cells
            ]
            for attribute in clean_attrs:
                value = values[attribute]
                model.value_counts[(attribute, value)] += 1
                model.attribute_totals[attribute] += 1
                model.per_attribute_counts[attribute][value] += 1
            for attr_a in clean_attrs:
                key = (attr_a, values[attr_a])
                targets = model.cooccurrence_index.setdefault(key, {})
                for attr_b in clean_attrs:
                    if attr_a == attr_b:
                        continue
                    targets.setdefault(attr_b, Counter())[values[attr_b]] += 1
        return model

    def frequency(self, attribute: str, value: str) -> float:
        total = self.attribute_totals.get(attribute, 0)
        if total == 0:
            return 0.0
        return self.value_counts.get((attribute, value), 0) / total

    def conditional(
        self, attribute: str, value: str, given_attribute: str, given_value: str
    ) -> float:
        """P(attribute = value | given_attribute = given_value) on clean data."""
        targets = self.cooccurrence_index.get((given_attribute, given_value))
        if not targets:
            return 0.0
        counts = targets.get(attribute)
        if not counts:
            return 0.0
        marginal = self.value_counts.get((given_attribute, given_value), 0)
        if marginal == 0:
            return 0.0
        return counts.get(value, 0) / marginal

    def candidate_values(
        self, attribute: str, context: dict[str, str], limit: int
    ) -> list[str]:
        """Domain pruning: values of ``attribute`` that co-occur with the context.

        Candidates are ranked by their summed conditional probability given
        the tuple's other (clean) values; the overall most frequent values
        pad the list when co-occurrence evidence is thin.
        """
        scores: dict[str, float] = defaultdict(float)
        for given_attribute, given_value in context.items():
            if given_attribute == attribute:
                continue
            targets = self.cooccurrence_index.get((given_attribute, given_value))
            if not targets:
                continue
            counts = targets.get(attribute)
            if not counts:
                continue
            marginal = self.value_counts.get((given_attribute, given_value), 1)
            for value, count in counts.items():
                scores[value] += count / marginal
        ranked = sorted(scores, key=lambda v: scores[v], reverse=True)
        if len(ranked) < limit:
            frequent = [
                value
                for value, _ in self.per_attribute_counts.get(attribute, Counter()).most_common()
                if value not in scores
            ]
            ranked.extend(frequent[: limit - len(ranked)])
        return ranked[:limit]


class CellFactorGraph:
    """The factor graph: candidate generation, training and inference."""

    def __init__(
        self,
        table: Table,
        rules: Sequence[Rule],
        noisy_cells: set[Cell],
        max_candidates: int = 20,
        seed: int = 11,
    ):
        self.table = table
        self.rules = list(rules)
        self.noisy_cells = set(noisy_cells)
        self.max_candidates = max_candidates
        self.seed = seed
        self.statistics = CooccurrenceModel.fit(table, noisy_cells)
        self.weights: list[float] = [1.0] * len(FEATURE_NAMES)
        self._constraint_index = _ConstraintIndex(table, self.rules, self.noisy_cells)

    # ------------------------------------------------------------------
    # candidate generation and features
    # ------------------------------------------------------------------
    def candidates_for(self, cell: Cell) -> list[RepairCandidate]:
        """The pruned, featurised candidate set of one cell."""
        row = self.table.row(cell.tid).as_dict()
        current_value = row[cell.attribute]
        context = {
            attribute: value
            for attribute, value in row.items()
            if attribute != cell.attribute
            and Cell(cell.tid, attribute) not in self.noisy_cells
        }
        values = self.statistics.candidate_values(
            cell.attribute, context, self.max_candidates
        )
        if current_value not in values:
            values = [current_value, *values]
        is_noisy = cell in self.noisy_cells
        candidates = [
            RepairCandidate(
                cell=cell,
                value=value,
                features=self._features(cell, value, current_value, context, is_noisy),
            )
            for value in values
        ]
        return candidates

    def _features(
        self,
        cell: Cell,
        value: str,
        current_value: str,
        context: dict[str, str],
        is_noisy: bool,
    ) -> tuple[float, ...]:
        cooccurrence = 0.0
        if context:
            cooccurrence = sum(
                self.statistics.conditional(cell.attribute, value, attr, ctx_value)
                for attr, ctx_value in context.items()
            ) / len(context)
        frequency = self.statistics.frequency(cell.attribute, value)
        # The initial-value prior only applies to cells the detector trusts:
        # a detected-noisy cell's current value is suspect, so keeping it gets
        # no bonus (otherwise the prior, learned on clean cells where the
        # current value is always correct, would freeze every noisy cell).
        minimality = 0.0 if is_noisy else (1.0 if value == current_value else 0.0)
        constraint = self._constraint_index.compatibility(cell, value)
        return (cooccurrence, frequency, minimality, constraint)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def training_examples(self, sample_size: int = 2000) -> list[TrainingExample]:
        """Labelled examples built from clean cells on constrained attributes."""
        rng = random.Random(self.seed)
        # Sorted so the candidate list (and therefore the seeded sample) is
        # identical across processes; a plain set comprehension would make
        # the training sample depend on the interpreter's hash seed.
        constrained_attributes = sorted(
            {attribute for rule in self.rules for attribute in rule.attributes}
        )
        clean_cells = [
            Cell(tid, attribute)
            for tid in self.table.tids
            for attribute in constrained_attributes
            if Cell(tid, attribute) not in self.noisy_cells
        ]
        if len(clean_cells) > sample_size:
            clean_cells = rng.sample(clean_cells, sample_size)
        examples: list[TrainingExample] = []
        for cell in clean_cells:
            candidates = self.candidates_for(cell)
            if len(candidates) < 2:
                continue
            observed = self.table.cell_value(cell)
            correct_index = next(
                (i for i, c in enumerate(candidates) if c.value == observed), None
            )
            if correct_index is None:
                continue
            examples.append(TrainingExample(candidates, correct_index))
        return examples

    def train(
        self,
        examples: Sequence[TrainingExample] | None = None,
        epochs: int = 10,
        learning_rate: float = 0.5,
        l2: float = 1e-3,
    ) -> list[float]:
        """Softmax-regression training of the feature weights via SGD."""
        if examples is None:
            examples = self.training_examples()
        if not examples:
            return self.weights
        rng = random.Random(self.seed)
        weights = list(self.weights)
        example_list = list(examples)
        for _ in range(epochs):
            rng.shuffle(example_list)
            for example in example_list:
                scores = [
                    _dot(weights, candidate.features)
                    for candidate in example.candidates
                ]
                probabilities = _softmax(scores)
                for index, candidate in enumerate(example.candidates):
                    indicator = 1.0 if index == example.correct_index else 0.0
                    error = indicator - probabilities[index]
                    for j, feature in enumerate(candidate.features):
                        weights[j] += learning_rate * (error * feature - l2 * weights[j])
        self.weights = weights
        return weights

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def infer_cell(self, cell: Cell) -> list[RepairCandidate]:
        """Candidates of one cell with their posterior probabilities filled in."""
        candidates = self.candidates_for(cell)
        scores = [_dot(self.weights, candidate.features) for candidate in candidates]
        probabilities = _softmax(scores)
        for candidate, probability in zip(candidates, probabilities):
            candidate.probability = probability
        candidates.sort(key=lambda c: c.probability, reverse=True)
        return candidates

    def map_repair(self, cell: Cell) -> RepairCandidate:
        """The most probable candidate of one noisy cell."""
        return self.infer_cell(cell)[0]


class _ConstraintIndex:
    """Fast compatibility checks of a candidate value against the rules.

    A candidate value of a cell is *compatible* when assigning it does not
    contradict any FD / CFD / DC evidence built from the clean part of the
    table.  The score is the fraction of applicable rules the candidate
    agrees with (1.0 when no rule applies).
    """

    def __init__(self, table: Table, rules: Sequence[Rule], noisy_cells: set[Cell]):
        self.table = table
        self.rules = list(rules)
        self.noisy_cells = noisy_cells
        # FD evidence: rule name -> reason values -> Counter of result values.
        self._fd_evidence: dict[str, dict[tuple[str, ...], Counter]] = {}
        for rule in self.rules:
            if isinstance(rule, (FunctionalDependency, DenialConstraint)) or (
                isinstance(rule, ConditionalFunctionalDependency)
            ):
                self._fd_evidence[rule.name] = self._collect_evidence(rule)

    def _collect_evidence(self, rule: Rule) -> dict[tuple[str, ...], Counter]:
        evidence: dict[tuple[str, ...], Counter] = defaultdict(Counter)
        reason_attrs = rule.reason_attributes
        result_attrs = rule.result_attributes
        for row in self.table:
            values = row.as_dict()
            if not rule.covers(values):
                continue
            if any(
                Cell(row.tid, attribute) in self.noisy_cells
                for attribute in (*reason_attrs, *result_attrs)
            ):
                continue
            reason = tuple(values[a] for a in reason_attrs)
            result = tuple(values[a] for a in result_attrs)
            evidence[reason][result] += 1
        return dict(evidence)

    def compatibility(self, cell: Cell, value: str) -> float:
        row = self.table.row(cell.tid).as_dict()
        hypothetical = dict(row)
        hypothetical[cell.attribute] = value
        applicable = 0
        compatible = 0
        for rule in self.rules:
            if cell.attribute not in rule.attributes:
                continue
            if not rule.covers(hypothetical):
                continue
            evidence = self._fd_evidence.get(rule.name)
            if not evidence:
                continue
            reason = tuple(hypothetical[a] for a in rule.reason_attributes)
            observed_results = evidence.get(reason)
            if not observed_results:
                continue
            applicable += 1
            result = tuple(hypothetical[a] for a in rule.result_attributes)
            if result in observed_results:
                compatible += 1
        if applicable == 0:
            return 1.0
        return compatible / applicable


@dataclass
class FactorGraphReport:
    """Outcome of one stand-alone (untrained) factor-graph repair run."""

    dirty: Table
    repaired: Table
    detected_cells: set[Cell] = field(default_factory=set)
    repairs: dict[Cell, str] = field(default_factory=dict)
    weights: list[float] = field(default_factory=list)
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    accuracy: Optional[RepairAccuracy] = None

    @property
    def runtime(self) -> float:
        return self.timings.total

    @property
    def f1(self) -> float:
        return self.accuracy.f1 if self.accuracy is not None else 0.0

    def as_dict(self) -> dict:
        """JSON-safe summary (how serialized reports carry this drill-down)."""
        return {
            "detected_cells": len(self.detected_cells),
            "repaired_cells": len(self.repairs),
            "weights": list(self.weights),
        }

    def as_cleaning_report(self) -> CleaningReport:
        """This run in the unified :class:`~repro.core.report.CleaningReport` shape."""
        return CleaningReport(
            dirty=self.dirty,
            repaired=self.repaired,
            cleaned=self.repaired,
            timings=self.timings,
            accuracy=self.accuracy,
            backend="factor-graph",
            details=self,
        )


class FactorGraphRepairer:
    """Per-cell MAP repair over the factor graph *without* weight training.

    The ablation that separates HoloClean's model structure from its learned
    weights: every detected cell is assigned the candidate maximising the
    uniform-prior score (all feature weights at 1.0, or after
    ``training_epochs > 0`` SGD epochs when a partially trained variant is
    wanted).  Everything else — detection, candidate pruning, features —
    matches :class:`~repro.baselines.holoclean.HoloCleanBaseline`.
    """

    def __init__(
        self,
        max_candidates: int = 20,
        seed: int = 11,
        training_epochs: int = 0,
        training_sample: int = 2000,
        learning_rate: float = 0.5,
    ):
        if training_epochs < 0:
            raise ValueError("training_epochs must be >= 0")
        self.max_candidates = max_candidates
        self.seed = seed
        self.training_epochs = training_epochs
        self.training_sample = training_sample
        self.learning_rate = learning_rate

    def clean(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        ground_truth: Optional[GroundTruth] = None,
        detector=None,
    ) -> FactorGraphReport:
        """Detect noisy cells and repair each with the MAP candidate.

        ``detector`` defaults like the HoloClean baseline: perfect detection
        when a ground truth is supplied, violation-based detection otherwise.
        """
        from repro.baselines.detectors import PerfectDetector, ViolationDetector

        timings = TimingBreakdown()
        if detector is None:
            detector = (
                PerfectDetector(ground_truth)
                if ground_truth is not None
                else ViolationDetector()
            )
        with timings.time("detect"):
            noisy_cells = detector.detect(dirty, rules)

        repaired = dirty.copy(name=f"{dirty.name}-factorgraph")
        report = FactorGraphReport(
            dirty=dirty,
            repaired=repaired,
            detected_cells=set(noisy_cells),
            timings=timings,
        )
        if noisy_cells:
            with timings.time("compile"):
                graph = CellFactorGraph(
                    dirty,
                    rules,
                    noisy_cells,
                    max_candidates=self.max_candidates,
                    seed=self.seed,
                )
            if self.training_epochs:
                with timings.time("train"):
                    graph.train(
                        graph.training_examples(self.training_sample),
                        epochs=self.training_epochs,
                        learning_rate=self.learning_rate,
                    )
            with timings.time("repair"):
                for cell in sorted(noisy_cells, key=lambda c: (c.tid, c.attribute)):
                    best = graph.map_repair(cell)
                    if best.value != dirty.cell_value(cell):
                        repaired.set_cell(cell, best.value)
                        report.repairs[cell] = best.value
            report.weights = list(graph.weights)

        if ground_truth is not None:
            report.accuracy = evaluate_repair(dirty, repaired, ground_truth)
        return report


def _dot(weights: Sequence[float], features: Sequence[float]) -> float:
    return sum(w * f for w, f in zip(weights, features))


def _softmax(scores: Sequence[float]) -> list[float]:
    peak = max(scores)
    exponentials = [math.exp(s - peak) for s in scores]
    total = sum(exponentials)
    return [e / total for e in exponentials]
