"""Figures 8-11: the effect of the AGP threshold τ, as a spec + renderers.

The paper sweeps τ (0-5 on CAR, 0-50 on HAI) and reports, per value:

* Figure 8 — AGP Precision-A, Recall-A and the number of detected abnormal
  data pieces (#dag),
* Figure 9 — RSC Precision-R and Recall-R,
* Figure 10 — FSCR Precision-F and Recall-F,
* Figure 11 — the overall F1 and runtime of MLNClean.

All four figures come from the same instrumented runs: one checked-in spec
(``specs/threshold_sweep.json``, whose per-workload ``config_grid`` holds
the τ grids) feeds four thin renderers that project the columns each figure
plots.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from repro.experiments.harness import ExperimentResult, default_thresholds
from repro.experiments.spec import (
    ConfigCell,
    ExperimentRunner,
    RunArtifact,
    load_spec,
)


def threshold_grid(thresholds: Sequence[int]) -> list[ConfigCell]:
    """A τ grid as configuration cells."""
    return [
        ConfigCell(overrides={"abnormal_threshold": int(threshold)})
        for threshold in thresholds
    ]


def threshold_sweep(
    datasets: Sequence[str] = ("car", "hai"),
    thresholds: Optional[dict[str, Sequence[int]]] = None,
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> RunArtifact:
    """Instrumented MLNClean runs over the τ grid of every dataset."""
    spec = load_spec("threshold_sweep")
    grid = {
        dataset: threshold_grid(
            thresholds[dataset]
            if thresholds is not None and dataset in thresholds
            else default_thresholds(dataset)
        )
        for dataset in datasets
    }
    spec = replace(
        spec,
        workloads=list(datasets),
        error_rates=[error_rate],
        config_grid=grid,
        tuples=tuples,
        seed=seed,
    )
    return ExperimentRunner(spec).run()


def _project(
    artifact: RunArtifact,
    experiment: str,
    description: str,
    columns: Sequence[str],
) -> ExperimentResult:
    """Keep only the columns a specific figure plots."""
    projected = ExperimentResult(experiment=experiment, description=description)
    for cell in artifact.cells:
        row: dict = {
            "dataset": cell.coords["workload"],
            "threshold": cell.coords["config"]["overrides"]["abnormal_threshold"],
        }
        for column in columns:
            if column in cell.metrics:
                row[column] = cell.metrics[column]
        projected.add(row)
    return projected


def fig08_agp_threshold(**kwargs) -> ExperimentResult:
    """AGP Precision-A / Recall-A / #dag vs τ (Figure 8)."""
    return _project(
        threshold_sweep(**kwargs),
        "fig08",
        "AGP precision/recall and #dag vs threshold",
        ["precision_a", "recall_a", "dag"],
    )


def fig09_rsc_threshold(**kwargs) -> ExperimentResult:
    """RSC Precision-R / Recall-R vs τ (Figure 9)."""
    return _project(
        threshold_sweep(**kwargs),
        "fig09",
        "RSC precision/recall vs threshold",
        ["precision_r", "recall_r"],
    )


def fig10_fscr_threshold(**kwargs) -> ExperimentResult:
    """FSCR Precision-F / Recall-F vs τ (Figure 10)."""
    return _project(
        threshold_sweep(**kwargs),
        "fig10",
        "FSCR precision/recall vs threshold",
        ["precision_f", "recall_f"],
    )


def fig11_overall_threshold(**kwargs) -> ExperimentResult:
    """Overall MLNClean F1 and runtime vs τ (Figure 11)."""
    return _project(
        threshold_sweep(**kwargs),
        "fig11",
        "MLNClean F1 and runtime vs threshold",
        ["f1", "runtime_s"],
    )
