"""Figures 8-11: the effect of the AGP threshold τ.

The paper sweeps τ (0-5 on CAR, 0-50 on HAI) and reports, per value:

* Figure 8 — AGP Precision-A, Recall-A and the number of detected abnormal
  data pieces (#dag),
* Figure 9 — RSC Precision-R and Recall-R,
* Figure 10 — FSCR Precision-F and Recall-F,
* Figure 11 — the overall F1 and runtime of MLNClean.

All four figures come from the same instrumented runs, so the shared sweep
lives in :func:`threshold_sweep` and the per-figure functions project the
columns the corresponding figure plots.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from repro.experiments.harness import (
    ExperimentResult,
    default_thresholds,
    prepare_instance,
    run_mlnclean,
)


def threshold_sweep(
    datasets: Sequence[str] = ("car", "hai"),
    thresholds: Optional[dict[str, Sequence[int]]] = None,
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Instrumented MLNClean runs over the τ grid of every dataset."""
    result = ExperimentResult(
        experiment="threshold_sweep",
        description="MLNClean component metrics vs AGP threshold",
    )
    for dataset in datasets:
        grid = (
            thresholds[dataset]
            if thresholds is not None and dataset in thresholds
            else default_thresholds(dataset)
        )
        instance = prepare_instance(
            dataset, tuples=tuples, error_rate=error_rate, seed=seed
        )
        for threshold in grid:
            run = run_mlnclean(instance, threshold=threshold)
            row = run.as_row()
            row["threshold"] = threshold
            result.add(row)
    return result


def _project(
    sweep: ExperimentResult, experiment: str, description: str, columns: Sequence[str]
) -> ExperimentResult:
    """Keep only the columns a specific figure plots."""
    projected = ExperimentResult(experiment=experiment, description=description)
    keep = ["dataset", "threshold", *columns]
    for row in sweep.rows:
        projected.add({key: row[key] for key in keep if key in row})
    return projected


def fig08_agp_threshold(**kwargs) -> ExperimentResult:
    """AGP Precision-A / Recall-A / #dag vs τ (Figure 8)."""
    sweep = threshold_sweep(**kwargs)
    return _project(
        sweep,
        "fig08",
        "AGP precision/recall and #dag vs threshold",
        ["precision_a", "recall_a", "dag"],
    )


def fig09_rsc_threshold(**kwargs) -> ExperimentResult:
    """RSC Precision-R / Recall-R vs τ (Figure 9)."""
    sweep = threshold_sweep(**kwargs)
    return _project(
        sweep, "fig09", "RSC precision/recall vs threshold", ["precision_r", "recall_r"]
    )


def fig10_fscr_threshold(**kwargs) -> ExperimentResult:
    """FSCR Precision-F / Recall-F vs τ (Figure 10)."""
    sweep = threshold_sweep(**kwargs)
    return _project(
        sweep, "fig10", "FSCR precision/recall vs threshold", ["precision_f", "recall_f"]
    )


def fig11_overall_threshold(**kwargs) -> ExperimentResult:
    """Overall MLNClean F1 and runtime vs τ (Figure 11)."""
    sweep = threshold_sweep(**kwargs)
    return _project(
        sweep, "fig11", "MLNClean F1 and runtime vs threshold", ["f1", "runtime_s"]
    )
