"""Streaming experiments: incremental cleaning vs batch re-cleaning.

Not figures of the paper — the paper's pipeline is batch-only — but the
natural next question for a deployed cleaner: when data keeps arriving, how
much does incremental maintenance save over re-running MLNClean from
scratch on every micro-batch, and does it give the same answer?

Two harnesses:

* :func:`streaming_replay` — declarative (``specs/streaming_replay.json``):
  the same workload through the batch and streaming backends as one
  :class:`~repro.experiments.spec.ExperimentSpec` grid, with the renderer
  checking the cleaned tables agree cell for cell (the artifact round-trips
  the tables, so the check also works on a deserialized artifact),
* :func:`streaming_incremental` — imperative by necessity: it interleaves
  the incremental engine and a naive full re-clean batch by batch and times
  both paths per micro-batch, a time-series the per-cell grid model does
  not express.

The harness drives one stream through both paths:

1. a *load phase* replays the dirty workload table in insert micro-batches
   (every block is affected, so this phase bounds the worst case), then
2. a *steady-state phase* applies batches of localized updates — value
   corrections touching one rule's attribute, the regime where the
   block-granular re-cleaning pays off.

After each batch the naive path re-cleans the entire current table with
batch :class:`~repro.core.pipeline.MLNClean`; the incremental path applies
the same batch through :class:`~repro.streaming.cleaner.StreamingMLNClean`.
Both cleaned tables are compared for equality at every step, so the
reported speedup is for *identical output*.
"""

from __future__ import annotations

import random
import time
from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from repro.core.config import MLNCleanConfig
from repro.core.pipeline import MLNClean
from repro.errors.injector import ErrorSpec
from repro.experiments.harness import ExperimentResult
from repro.experiments.spec import ExperimentRunner, RunArtifact, load_spec
from repro.streaming.cleaner import StreamingMLNClean
from repro.streaming.delta import DeltaBatch, Update
from repro.streaming.source import WorkloadStreamSource


def _replay_grid_key(cell) -> tuple:
    """The full non-cleaner grid position of a cell (what "same run" means)."""
    coords = cell.coords
    return (
        coords["workload"],
        coords["error_rate"],
        coords["replacement_ratio"],
        repr(sorted(coords["config"]["overrides"].items())),
    )


def _is_batch_reference(cell) -> bool:
    """True for the MLNClean-on-batch cell every other cell is checked against."""
    coords = cell.coords
    return (
        coords["cleaner"] == "mlnclean"
        and coords.get("options", {}).get("backend") in (None, "batch")
    )


def render_streaming_replay(artifact: RunArtifact) -> ExperimentResult:
    """Per-backend rows, plus an exact-equality check against the batch run.

    The equality column is derived from the artifact's round-tripped cleaned
    tables, so re-rendering a deserialized artifact re-verifies it.  Batch
    references are matched on the *full* grid position (workload, error
    rate, ratio, config overrides), so multi-rate grids compare each
    streaming cell against the batch run of the same cell.
    """
    result = ExperimentResult(
        experiment="streaming_replay",
        description="batch vs streaming-replay MLNClean (same workload)",
    )
    batch_cleaned: dict[tuple, object] = {}
    for cell in artifact.cells:
        if _is_batch_reference(cell) and cell.report is not None:
            batch_cleaned[_replay_grid_key(cell)] = cell.report.cleaned
    for cell in artifact.cells:
        row = {
            "dataset": cell.coords["workload"],
            "system": cell.metrics["system"],
            "f1": cell.metrics["f1"],
            "runtime_s": cell.metrics["runtime_s"],
        }
        if not _is_batch_reference(cell):
            reference = batch_cleaned.get(_replay_grid_key(cell))
            if reference is not None and cell.report is not None:
                row["matches_batch"] = cell.report.cleaned.equals(reference)
        result.add(row)
    return result


def streaming_replay(
    datasets: Sequence[str] = ("hai",),
    error_rate: float = 0.05,
    batch_size: int = 100,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Batch vs streaming-replay equivalence and runtime, declaratively."""
    spec = load_spec("streaming_replay")
    cleaners = list(spec.cleaners)
    for cleaner in cleaners:
        if cleaner.options.get("backend") == "streaming":
            cleaner.options = {**cleaner.options, "batch_size": int(batch_size)}
    spec = replace(
        spec,
        workloads=list(datasets),
        error_rates=[error_rate],
        cleaners=cleaners,
        tuples=tuples,
        seed=seed,
    )
    return render_streaming_replay(ExperimentRunner(spec).run())


def _update_attribute(source: WorkloadStreamSource) -> str:
    """The rule attribute involved in the fewest rules (most localized)."""
    involvement: dict[str, int] = {}
    for rule in source.rules:
        for attribute in rule.attributes:
            involvement[attribute] = involvement.get(attribute, 0) + 1
    return min(involvement, key=lambda attribute: (involvement[attribute], attribute))


def streaming_incremental(
    dataset: str = "hai",
    tuples: int = 400,
    batch_size: int = 100,
    update_batches: int = 4,
    updates_per_batch: int = 10,
    error_rate: float = 0.05,
    seed: int = 7,
    error_seed: int = 42,
    config: Optional[MLNCleanConfig] = None,
) -> ExperimentResult:
    """Wall-clock of incremental vs naive full re-clean, batch by batch."""
    result = ExperimentResult(
        experiment="streaming",
        description=(
            f"incremental vs full re-clean on a {dataset} stream "
            f"({tuples} tuples loaded in batches of {batch_size}, then "
            f"{update_batches} x {updates_per_batch} localized updates)"
        ),
    )
    source = WorkloadStreamSource(
        dataset,
        tuples=tuples,
        batch_size=batch_size,
        error_spec=ErrorSpec(error_rate=error_rate, seed=error_seed),
        seed=seed,
    )
    if config is None:
        config = MLNCleanConfig.for_dataset(dataset)
    engine = StreamingMLNClean(source.rules, source.schema, config=config)
    naive = MLNClean(config)
    rng = random.Random(seed)

    incremental_total = 0.0
    full_total = 0.0

    def measure(phase: str, batch: DeltaBatch) -> None:
        nonlocal incremental_total, full_total
        started = time.perf_counter()
        report = engine.apply_batch(batch)
        incremental_seconds = time.perf_counter() - started
        started = time.perf_counter()
        reference = naive.clean(engine.dirty.copy(), source.rules)
        full_seconds = time.perf_counter() - started
        incremental_total += incremental_seconds
        full_total += full_seconds
        result.add(
            {
                "phase": phase,
                "batch": report.sequence,
                "tuples": report.tuples_total,
                "deltas": len(batch),
                "blocks_recleaned": len(report.affected_blocks),
                "tuples_refused": len(report.resolved_tids),
                "incremental_s": round(incremental_seconds, 4),
                "full_reclean_s": round(full_seconds, 4),
                "speedup": round(full_seconds / incremental_seconds, 2)
                if incremental_seconds > 0
                else float("inf"),
                "output_equal": engine.cleaned.equals(reference.cleaned),
            }
        )

    for stream_batch in source:
        measure("load", stream_batch.deltas)

    update_attribute = _update_attribute(source)
    domain = [v for v in source.dirty.domain(update_attribute).values]
    for _ in range(update_batches):
        tids = rng.sample(engine.dirty.tids, min(updates_per_batch, len(engine.dirty)))
        batch = DeltaBatch(
            [Update(tid, {update_attribute: rng.choice(domain)}) for tid in tids]
        )
        measure("steady", batch)

    result.add(
        {
            "phase": "total",
            "incremental_s": round(incremental_total, 4),
            "full_reclean_s": round(full_total, 4),
            "speedup": round(full_total / incremental_total, 2)
            if incremental_total > 0
            else float("inf"),
            "output_equal": all(
                row["output_equal"] for row in result.rows if "output_equal" in row
            ),
        }
    )
    return result
