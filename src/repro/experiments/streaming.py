"""Streaming experiment: incremental micro-batch cleaning vs full re-clean.

Not a figure of the paper — the paper's pipeline is batch-only — but the
natural next question for a deployed cleaner: when data keeps arriving, how
much does incremental maintenance save over re-running MLNClean from
scratch on every micro-batch, and does it give the same answer?

The harness drives one stream through both paths:

1. a *load phase* replays the dirty workload table in insert micro-batches
   (every block is affected, so this phase bounds the worst case), then
2. a *steady-state phase* applies batches of localized updates — value
   corrections touching one rule's attribute, the regime where the
   block-granular re-cleaning pays off.

After each batch the naive path re-cleans the entire current table with
batch :class:`~repro.core.pipeline.MLNClean`; the incremental path applies
the same batch through :class:`~repro.streaming.cleaner.StreamingMLNClean`.
Both cleaned tables are compared for equality at every step, so the
reported speedup is for *identical output*.
"""

from __future__ import annotations

import random
import time
from typing import Optional

from repro.core.config import MLNCleanConfig
from repro.core.pipeline import MLNClean
from repro.errors.injector import ErrorSpec
from repro.experiments.harness import ExperimentResult
from repro.streaming.cleaner import StreamingMLNClean
from repro.streaming.delta import DeltaBatch, Update
from repro.streaming.source import WorkloadStreamSource


def _update_attribute(source: WorkloadStreamSource) -> str:
    """The rule attribute involved in the fewest rules (most localized)."""
    involvement: dict[str, int] = {}
    for rule in source.rules:
        for attribute in rule.attributes:
            involvement[attribute] = involvement.get(attribute, 0) + 1
    return min(involvement, key=lambda attribute: (involvement[attribute], attribute))


def streaming_incremental(
    dataset: str = "hai",
    tuples: int = 400,
    batch_size: int = 100,
    update_batches: int = 4,
    updates_per_batch: int = 10,
    error_rate: float = 0.05,
    seed: int = 7,
    error_seed: int = 42,
    config: Optional[MLNCleanConfig] = None,
) -> ExperimentResult:
    """Wall-clock of incremental vs naive full re-clean, batch by batch."""
    result = ExperimentResult(
        experiment="streaming",
        description=(
            f"incremental vs full re-clean on a {dataset} stream "
            f"({tuples} tuples loaded in batches of {batch_size}, then "
            f"{update_batches} x {updates_per_batch} localized updates)"
        ),
    )
    source = WorkloadStreamSource(
        dataset,
        tuples=tuples,
        batch_size=batch_size,
        error_spec=ErrorSpec(error_rate=error_rate, seed=error_seed),
        seed=seed,
    )
    if config is None:
        config = MLNCleanConfig.for_dataset(dataset)
    engine = StreamingMLNClean(source.rules, source.schema, config=config)
    naive = MLNClean(config)
    rng = random.Random(seed)

    incremental_total = 0.0
    full_total = 0.0

    def measure(phase: str, batch: DeltaBatch) -> None:
        nonlocal incremental_total, full_total
        started = time.perf_counter()
        report = engine.apply_batch(batch)
        incremental_seconds = time.perf_counter() - started
        started = time.perf_counter()
        reference = naive.clean(engine.dirty.copy(), source.rules)
        full_seconds = time.perf_counter() - started
        incremental_total += incremental_seconds
        full_total += full_seconds
        result.add(
            {
                "phase": phase,
                "batch": report.sequence,
                "tuples": report.tuples_total,
                "deltas": len(batch),
                "blocks_recleaned": len(report.affected_blocks),
                "tuples_refused": len(report.resolved_tids),
                "incremental_s": round(incremental_seconds, 4),
                "full_reclean_s": round(full_seconds, 4),
                "speedup": round(full_seconds / incremental_seconds, 2)
                if incremental_seconds > 0
                else float("inf"),
                "output_equal": engine.cleaned.equals(reference.cleaned),
            }
        )

    for stream_batch in source:
        measure("load", stream_batch.deltas)

    update_attribute = _update_attribute(source)
    domain = [v for v in source.dirty.domain(update_attribute).values]
    for _ in range(update_batches):
        tids = rng.sample(engine.dirty.tids, min(updates_per_batch, len(engine.dirty)))
        batch = DeltaBatch(
            [Update(tid, {update_attribute: rng.choice(domain)}) for tid in tids]
        )
        measure("steady", batch)

    result.add(
        {
            "phase": "total",
            "incremental_s": round(incremental_total, 4),
            "full_reclean_s": round(full_total, 4),
            "speedup": round(full_total / incremental_total, 2)
            if incremental_total > 0
            else float("inf"),
            "output_equal": all(
                row["output_equal"] for row in result.rows if "output_equal" in row
            ),
        }
    )
    return result
