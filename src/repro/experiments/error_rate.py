"""Figures 12-14: component accuracy vs error percentage, spec + renderers.

With τ fixed at its per-dataset optimum, the paper sweeps the error rate from
5 % to 30 % and reports the precision/recall of AGP (Figure 12), RSC
(Figure 13) and FSCR (Figure 14).  As in :mod:`repro.experiments.threshold`,
the three figures share one instrumented sweep — the checked-in
``specs/error_rate_sweep.json`` — and project different columns.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from repro.experiments.harness import ExperimentResult, default_error_rates
from repro.experiments.spec import ExperimentRunner, RunArtifact, load_spec


def error_rate_sweep(
    datasets: Sequence[str] = ("car", "hai"),
    error_rates: Optional[Sequence[float]] = None,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> RunArtifact:
    """Instrumented MLNClean runs over the error-rate grid."""
    rates = error_rates if error_rates is not None else default_error_rates()
    spec = replace(
        load_spec("error_rate_sweep"),
        workloads=list(datasets),
        error_rates=list(rates),
        tuples=tuples,
        seed=seed,
    )
    return ExperimentRunner(spec).run()


def _project(
    artifact: RunArtifact,
    experiment: str,
    description: str,
    columns: Sequence[str],
) -> ExperimentResult:
    projected = ExperimentResult(experiment=experiment, description=description)
    for cell in artifact.cells:
        row: dict = {
            "dataset": cell.coords["workload"],
            "error_rate": cell.coords["error_rate"],
        }
        for column in columns:
            if column in cell.metrics:
                row[column] = cell.metrics[column]
        projected.add(row)
    return projected


def fig12_agp_error_rate(**kwargs) -> ExperimentResult:
    """AGP Precision-A / Recall-A / #dag vs error percentage (Figure 12)."""
    return _project(
        error_rate_sweep(**kwargs),
        "fig12",
        "AGP precision/recall and #dag vs error percentage",
        ["precision_a", "recall_a", "dag"],
    )


def fig13_rsc_error_rate(**kwargs) -> ExperimentResult:
    """RSC Precision-R / Recall-R vs error percentage (Figure 13)."""
    return _project(
        error_rate_sweep(**kwargs),
        "fig13",
        "RSC precision/recall vs error percentage",
        ["precision_r", "recall_r"],
    )


def fig14_fscr_error_rate(**kwargs) -> ExperimentResult:
    """FSCR Precision-F / Recall-F vs error percentage (Figure 14)."""
    return _project(
        error_rate_sweep(**kwargs),
        "fig14",
        "FSCR precision/recall vs error percentage",
        ["precision_f", "recall_f"],
    )
