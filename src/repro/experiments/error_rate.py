"""Figures 12-14: component accuracy vs the error percentage.

With τ fixed at its per-dataset optimum, the paper sweeps the error rate from
5 % to 30 % and reports the precision/recall of AGP (Figure 12), RSC
(Figure 13) and FSCR (Figure 14).  As in :mod:`repro.experiments.threshold`,
the three figures share one instrumented sweep.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from repro.experiments.harness import (
    ExperimentResult,
    default_error_rates,
    prepare_instance,
    run_mlnclean,
)


def error_rate_sweep(
    datasets: Sequence[str] = ("car", "hai"),
    error_rates: Optional[Sequence[float]] = None,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Instrumented MLNClean runs over the error-rate grid."""
    rates = error_rates if error_rates is not None else default_error_rates()
    result = ExperimentResult(
        experiment="error_rate_sweep",
        description="MLNClean component metrics vs error percentage",
    )
    for dataset in datasets:
        for rate in rates:
            instance = prepare_instance(
                dataset, tuples=tuples, error_rate=rate, seed=seed
            )
            run = run_mlnclean(instance)
            row = run.as_row()
            row["error_rate"] = rate
            result.add(row)
    return result


def _project(
    sweep: ExperimentResult, experiment: str, description: str, columns: Sequence[str]
) -> ExperimentResult:
    projected = ExperimentResult(experiment=experiment, description=description)
    keep = ["dataset", "error_rate", *columns]
    for row in sweep.rows:
        projected.add({key: row[key] for key in keep if key in row})
    return projected


def fig12_agp_error_rate(**kwargs) -> ExperimentResult:
    """AGP Precision-A / Recall-A / #dag vs error percentage (Figure 12)."""
    sweep = error_rate_sweep(**kwargs)
    return _project(
        sweep,
        "fig12",
        "AGP precision/recall and #dag vs error percentage",
        ["precision_a", "recall_a", "dag"],
    )


def fig13_rsc_error_rate(**kwargs) -> ExperimentResult:
    """RSC Precision-R / Recall-R vs error percentage (Figure 13)."""
    sweep = error_rate_sweep(**kwargs)
    return _project(
        sweep,
        "fig13",
        "RSC precision/recall vs error percentage",
        ["precision_r", "recall_r"],
    )


def fig14_fscr_error_rate(**kwargs) -> ExperimentResult:
    """FSCR Precision-F / Recall-F vs error percentage (Figure 14)."""
    sweep = error_rate_sweep(**kwargs)
    return _project(
        sweep,
        "fig14",
        "FSCR precision/recall vs error percentage",
        ["precision_f", "recall_f"],
    )
