"""Experiment harnesses: declarative specs, one renderer per figure/table.

Every experiment is an :class:`~repro.experiments.spec.ExperimentSpec` — a
pure-data grid of cleaner × workload × error model × configuration — checked
in under ``specs/`` and executed by the
:class:`~repro.experiments.spec.ExperimentRunner` into a JSON-serializable
:class:`~repro.experiments.spec.RunArtifact`.  The per-figure functions in
this package load the corresponding spec, apply any keyword overrides, run
it, and render the artifact's rows; the benchmarks under ``benchmarks/``
call them with scaled-down workload sizes, and
``python -m repro.experiments run <spec>`` does the same from the command
line.

Registry keys follow the paper's numbering::

    fig06  F1 and runtime vs error percentage (MLNClean vs HoloClean)
    fig07  F1 vs error type ratio Rret
    fig08  AGP precision/recall/#dag vs threshold τ
    fig09  RSC precision/recall vs τ
    fig10  FSCR precision/recall vs τ
    fig11  MLNClean F1 and runtime vs τ
    fig12  AGP accuracy vs error percentage
    fig13  RSC accuracy vs error percentage
    fig14  FSCR accuracy vs error percentage
    fig15  distributed MLNClean vs error percentage
    table05  F1 under different distance metrics
    table06  distributed runtime vs number of workers

plus post-paper capability studies::

    streaming          incremental micro-batch cleaning vs naive full re-clean
    streaming_replay   batch vs streaming-backend equivalence (declarative)
    service_replay     batch vs the repro.service queue/shard path (declarative)
"""

from repro.experiments.harness import (
    ExperimentResult,
    SystemRun,
    run_holoclean,
    run_mlnclean,
    prepare_instance,
    session_for_instance,
)
from repro.experiments.spec import (
    CellResult,
    CleanerSpec,
    ConfigCell,
    ExperimentRunner,
    ExperimentSpec,
    RunArtifact,
    available_specs,
    load_spec,
)
from repro.experiments.comparison import (
    fig06_error_percentage,
    fig07_error_type_ratio,
    render_fig06,
    render_fig07,
)
from repro.experiments.threshold import (
    fig08_agp_threshold,
    fig09_rsc_threshold,
    fig10_fscr_threshold,
    fig11_overall_threshold,
)
from repro.experiments.error_rate import (
    fig12_agp_error_rate,
    fig13_rsc_error_rate,
    fig14_fscr_error_rate,
)
from repro.experiments.distributed import (
    fig15_distributed,
    render_fig15,
    render_table06,
    table06_worker_scaling,
)
from repro.experiments.distance import render_table05, table05_distance_metrics
from repro.experiments.ablation import (
    ablation_fscr_minimality,
    ablation_partitioner,
    ablation_pruning,
    ablation_reliability_score,
    render_ablation_fscr,
    render_ablation_partition,
    render_ablation_pruning,
    render_ablation_rscore,
)
from repro.experiments.streaming import (
    render_streaming_replay,
    streaming_incremental,
    streaming_replay,
)
from repro.experiments.service_replay import (
    render_service_replay,
    service_replay,
)

#: experiment id -> harness callable (all accept ``tuples`` and ``seed``)
EXPERIMENTS = {
    "fig06": fig06_error_percentage,
    "fig07": fig07_error_type_ratio,
    "fig08": fig08_agp_threshold,
    "fig09": fig09_rsc_threshold,
    "fig10": fig10_fscr_threshold,
    "fig11": fig11_overall_threshold,
    "fig12": fig12_agp_error_rate,
    "fig13": fig13_rsc_error_rate,
    "fig14": fig14_fscr_error_rate,
    "fig15": fig15_distributed,
    "table05": table05_distance_metrics,
    "table06": table06_worker_scaling,
    "ablation_rscore": ablation_reliability_score,
    "ablation_fscr": ablation_fscr_minimality,
    "ablation_partition": ablation_partitioner,
    "streaming": streaming_incremental,
    "streaming_replay": streaming_replay,
    "service_replay": service_replay,
}

#: spec name -> renderer for artifacts produced from that (shaped) spec;
#: sweeps feeding several figures (threshold_sweep, error_rate_sweep) have
#: no single figure and fall back to the CLI's generic rendering
RENDERERS = {
    "fig06": render_fig06,
    "fig07": render_fig07,
    "fig15": render_fig15,
    "table05": render_table05,
    "table06": render_table06,
    "ablation_fscr": render_ablation_fscr,
    "ablation_rscore": render_ablation_rscore,
    "ablation_partition": render_ablation_partition,
    "pruning_ablation": render_ablation_pruning,
    "streaming_replay": render_streaming_replay,
    "service_replay": render_service_replay,
}

__all__ = [
    "EXPERIMENTS",
    "RENDERERS",
    "ExperimentResult",
    "SystemRun",
    "ExperimentSpec",
    "ExperimentRunner",
    "RunArtifact",
    "CellResult",
    "CleanerSpec",
    "ConfigCell",
    "load_spec",
    "available_specs",
    "prepare_instance",
    "session_for_instance",
    "run_mlnclean",
    "run_holoclean",
    "fig06_error_percentage",
    "fig07_error_type_ratio",
    "render_fig06",
    "render_fig07",
    "fig08_agp_threshold",
    "fig09_rsc_threshold",
    "fig10_fscr_threshold",
    "fig11_overall_threshold",
    "fig12_agp_error_rate",
    "fig13_rsc_error_rate",
    "fig14_fscr_error_rate",
    "fig15_distributed",
    "table05_distance_metrics",
    "table06_worker_scaling",
    "ablation_reliability_score",
    "ablation_fscr_minimality",
    "ablation_partitioner",
    "ablation_pruning",
    "streaming_incremental",
    "streaming_replay",
    "service_replay",
    "render_service_replay",
]
