"""Experiment harnesses: one entry per figure/table of the paper's Section 7.

Every harness function returns an :class:`~repro.experiments.harness.ExperimentResult`
whose rows are the series the corresponding figure plots (or the cells of the
corresponding table).  The benchmarks under ``benchmarks/`` call these
functions with scaled-down workload sizes and print the resulting tables; the
examples call them with the defaults.

Registry keys follow the paper's numbering::

    fig06  F1 and runtime vs error percentage (MLNClean vs HoloClean)
    fig07  F1 vs error type ratio Rret
    fig08  AGP precision/recall/#dag vs threshold τ
    fig09  RSC precision/recall vs τ
    fig10  FSCR precision/recall vs τ
    fig11  MLNClean F1 and runtime vs τ
    fig12  AGP accuracy vs error percentage
    fig13  RSC accuracy vs error percentage
    fig14  FSCR accuracy vs error percentage
    fig15  distributed MLNClean vs error percentage
    table05  F1 under different distance metrics
    table06  distributed runtime vs number of workers

plus post-paper capability studies::

    streaming  incremental micro-batch cleaning vs naive full re-clean
"""

from repro.experiments.harness import (
    ExperimentResult,
    SystemRun,
    run_holoclean,
    run_mlnclean,
    prepare_instance,
    session_for_instance,
)
from repro.experiments.comparison import fig06_error_percentage, fig07_error_type_ratio
from repro.experiments.threshold import (
    fig08_agp_threshold,
    fig09_rsc_threshold,
    fig10_fscr_threshold,
    fig11_overall_threshold,
)
from repro.experiments.error_rate import (
    fig12_agp_error_rate,
    fig13_rsc_error_rate,
    fig14_fscr_error_rate,
)
from repro.experiments.distributed import fig15_distributed, table06_worker_scaling
from repro.experiments.distance import table05_distance_metrics
from repro.experiments.ablation import (
    ablation_fscr_minimality,
    ablation_partitioner,
    ablation_reliability_score,
)
from repro.experiments.streaming import streaming_incremental

#: experiment id -> harness callable (all accept ``tuples`` and ``seed``)
EXPERIMENTS = {
    "fig06": fig06_error_percentage,
    "fig07": fig07_error_type_ratio,
    "fig08": fig08_agp_threshold,
    "fig09": fig09_rsc_threshold,
    "fig10": fig10_fscr_threshold,
    "fig11": fig11_overall_threshold,
    "fig12": fig12_agp_error_rate,
    "fig13": fig13_rsc_error_rate,
    "fig14": fig14_fscr_error_rate,
    "fig15": fig15_distributed,
    "table05": table05_distance_metrics,
    "table06": table06_worker_scaling,
    "ablation_rscore": ablation_reliability_score,
    "ablation_fscr": ablation_fscr_minimality,
    "ablation_partition": ablation_partitioner,
    "streaming": streaming_incremental,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "SystemRun",
    "prepare_instance",
    "session_for_instance",
    "run_mlnclean",
    "run_holoclean",
    "fig06_error_percentage",
    "fig07_error_type_ratio",
    "fig08_agp_threshold",
    "fig09_rsc_threshold",
    "fig10_fscr_threshold",
    "fig11_overall_threshold",
    "fig12_agp_error_rate",
    "fig13_rsc_error_rate",
    "fig14_fscr_error_rate",
    "fig15_distributed",
    "table05_distance_metrics",
    "table06_worker_scaling",
    "ablation_reliability_score",
    "ablation_fscr_minimality",
    "ablation_partitioner",
    "streaming_incremental",
]
