"""Shared machinery of the experiment harnesses.

The harness keeps every run reproducible (explicit seeds), caches generated
workloads so a sweep over error rates does not regenerate the clean table on
every step, and renders results as fixed-width text tables — the same rows
the paper's figures plot.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.holoclean import HoloCleanConfig
from repro.core.config import MLNCleanConfig
from repro.errors.injector import ErrorSpec
from repro.session import CleaningSession
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.registry import get_workload_generator, recommended_config

#: default scaled-down workload sizes used when the caller does not override
#: them; the paper's datasets are orders of magnitude larger, but the shapes
#: of the curves only need enough tuples for stable statistics.
DEFAULT_TUPLES = {"car": 1200, "hai": 1600, "tpch": 1800}


@dataclass
class SystemRun:
    """One (system, configuration) measurement."""

    dataset: str
    system: str
    f1: float
    precision: float
    recall: float
    runtime_seconds: float
    extras: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "dataset": self.dataset,
            "system": self.system,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "runtime_s": round(self.runtime_seconds, 4),
        }
        row.update({key: round(value, 4) for key, value in self.extras.items()})
        return row


@dataclass
class ExperimentResult:
    """Rows of one figure/table plus a plain-text rendering."""

    experiment: str
    description: str
    rows: list[dict[str, object]] = field(default_factory=list)

    def add(self, row: dict[str, object]) -> None:
        self.rows.append(row)

    def columns(self) -> list[str]:
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def render(self) -> str:
        """A fixed-width table with one line per row (the figure's series)."""
        columns = self.columns()
        if not columns:
            return f"{self.experiment}: no rows"
        cells = [[str(row.get(column, "")) for column in columns] for row in self.rows]
        widths = [
            max(len(columns[i]), *(len(row[i]) for row in cells)) if cells else len(columns[i])
            for i in range(len(columns))
        ]
        lines = [
            f"# {self.experiment}: {self.description}",
            "  ".join(columns[i].ljust(widths[i]) for i in range(len(columns))),
            "  ".join("-" * widths[i] for i in range(len(columns))),
        ]
        lines.extend(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in cells
        )
        return "\n".join(lines)

    def series(self, key: str) -> list[object]:
        """The values of one column across all rows."""
        return [row.get(key) for row in self.rows]


# ----------------------------------------------------------------------
# workload caching
# ----------------------------------------------------------------------
_WORKLOAD_CACHE: dict[tuple[str, int, int], Workload] = {}


def load_workload(dataset: str, tuples: Optional[int] = None, seed: int = 7) -> Workload:
    """A (cached) clean workload of the requested dataset and size."""
    size = tuples if tuples is not None else DEFAULT_TUPLES.get(dataset.lower(), 1500)
    key = (dataset.lower(), size, seed)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = get_workload_generator(dataset, tuples=size, seed=seed).build()
    return _WORKLOAD_CACHE[key]


def prepare_instance(
    dataset: str,
    tuples: Optional[int] = None,
    error_rate: float = 0.05,
    replacement_ratio: float = 0.5,
    seed: int = 7,
    error_seed: int = 42,
) -> WorkloadInstance:
    """A dirty instance of ``dataset`` with the requested error profile."""
    workload = load_workload(dataset, tuples, seed)
    spec = ErrorSpec(
        error_rate=error_rate, replacement_ratio=replacement_ratio, seed=error_seed
    )
    return workload.make_instance(spec)


# ----------------------------------------------------------------------
# system runners
# ----------------------------------------------------------------------
def session_for_instance(
    instance: WorkloadInstance,
    config: Optional[MLNCleanConfig] = None,
    backend: str = "batch",
    cleaner: Optional[str] = None,
    cleaner_options: Optional[dict] = None,
    **backend_options,
) -> CleaningSession:
    """A ready-to-run :class:`CleaningSession` over a workload instance.

    The session carries the instance's rules, dirty table and ground truth;
    ``config`` defaults to the workload's recommended configuration from the
    registry.  ``cleaner`` selects a registered cleaning algorithm (the
    default is MLNClean on ``backend``); ``backend``/``backend_options``
    only apply to the MLNClean cleaner.
    """
    if config is None:
        config = recommended_config(instance.name)
    builder = (
        CleaningSession.builder()
        .with_rules(instance.rules)
        .with_config(config)
        .with_table(instance.dirty)
        .with_ground_truth(instance.ground_truth)
    )
    if cleaner is not None:
        builder = builder.with_cleaner(cleaner, **(cleaner_options or {}))
        if backend != "batch" or backend_options:
            # the builder rejects the combination for non-mlnclean cleaners
            # and for doubly-selected backends
            builder = builder.with_backend(backend, **backend_options)
    else:
        builder = builder.with_backend(backend, **backend_options)
    return builder.build()


def run_mlnclean(
    instance: WorkloadInstance,
    threshold: Optional[int] = None,
    config: Optional[MLNCleanConfig] = None,
    backend: str = "batch",
    **backend_options,
) -> SystemRun:
    """Run MLNClean on an instance and collect the headline metrics.

    The run goes through the unified session API, so ``backend`` can swap in
    any registered execution backend ("batch" by default).
    """
    if config is None:
        if threshold is not None:
            config = MLNCleanConfig(abnormal_threshold=threshold)
    elif threshold is not None:
        config = config.with_threshold(threshold)
    session = session_for_instance(
        instance, config=config, backend=backend, **backend_options
    )
    started = time.perf_counter()
    report = session.run()
    elapsed = time.perf_counter() - started
    # Component metrics only exist when the backend ran the instrumented
    # stages (the distributed driver reports no per-stage outcomes);
    # emitting all-zero columns would read as "measured: 0".
    extras: dict[str, float] = {}
    if any(o is not None for o in (report.agp, report.rsc, report.fscr)):
        extras.update(report.component_accuracy.as_dict())
    extras["duplicates_removed"] = float(
        report.dedup.removed_count if report.dedup is not None else 0
    )
    system = "MLNClean" if backend == "batch" else f"MLNClean[{backend}]"
    return SystemRun(
        dataset=instance.name,
        system=system,
        f1=report.accuracy.f1 if report.accuracy else 0.0,
        precision=report.accuracy.precision if report.accuracy else 0.0,
        recall=report.accuracy.recall if report.accuracy else 0.0,
        runtime_seconds=elapsed,
        extras=extras,
    )


def run_holoclean(
    instance: WorkloadInstance, config: Optional[HoloCleanConfig] = None
) -> SystemRun:
    """Run the HoloClean baseline (perfect detection, as in the paper).

    Goes through the unified session/cleaner path, so the run is exactly
    ``CleaningSession.builder().with_cleaner("holoclean")`` on the
    instance's table, rules and ground truth.
    """
    session = session_for_instance(
        instance, cleaner="holoclean", cleaner_options={"config": config}
    )
    started = time.perf_counter()
    report = session.run()
    elapsed = time.perf_counter() - started
    return SystemRun(
        dataset=instance.name,
        system="HoloClean",
        f1=report.accuracy.f1 if report.accuracy else 0.0,
        precision=report.accuracy.precision if report.accuracy else 0.0,
        recall=report.accuracy.recall if report.accuracy else 0.0,
        runtime_seconds=elapsed,
        extras={"detected_cells": float(len(report.details.detected_cells))},
    )


def default_error_rates() -> Sequence[float]:
    """The error percentages of the paper's sweeps (5 % ... 30 %)."""
    return (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


def default_thresholds(dataset: str) -> Sequence[int]:
    """The τ sweep used for a dataset (CAR 0-5, HAI/TPC-H 0-50)."""
    if dataset.lower() == "car":
        return (0, 1, 2, 3, 4, 5)
    return (0, 10, 20, 30, 40, 50)
