"""Command-line entry point for the declarative experiment API.

Usage (with ``PYTHONPATH=src`` or the package installed)::

    python -m repro.experiments list
    python -m repro.experiments run fig06 --tuples 300 --out fig06.json
    python -m repro.experiments render fig06.json
    python -m repro.experiments check-metrics fig06.json schema.json [--write]

``run`` executes a checked-in spec (by name) or a spec JSON file (by path)
and writes the :class:`~repro.experiments.spec.RunArtifact`;
``render`` re-renders a previously saved artifact — no cleaning is re-run;
``check-metrics`` compares the artifact's metric keys against a checked-in
schema file (a sorted JSON list) and exits non-zero on drift, which is how
CI's ``experiments-smoke`` job gates the metric surface.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.cli import common_parent, configure_logging
from repro.experiments import RENDERERS, available_specs
from repro.experiments.harness import ExperimentResult
from repro.experiments.spec import ExperimentRunner, RunArtifact, load_spec


def _render(artifact: RunArtifact) -> str:
    """Render an artifact: its spec's dedicated renderer, else generic rows."""
    renderer = RENDERERS.get(artifact.spec.name)
    if renderer is not None:
        return renderer(artifact).render()
    result = ExperimentResult(
        experiment=artifact.spec.name, description=artifact.spec.description
    )
    for cell in artifact.cells:
        row = {
            "dataset": cell.coords["workload"],
            "error_rate": cell.coords["error_rate"],
            "config": cell.coords["config"]["label"]
            or ",".join(
                f"{k}={v}" for k, v in cell.coords["config"]["overrides"].items()
            )
            or "default",
            **cell.metrics,
        }
        result.add(row)
    return result.render()


def cmd_list(_args) -> int:
    for name in available_specs():
        spec = load_spec(name)
        print(f"{name:20s} {spec.description}")
    return 0


def cmd_run(args) -> int:
    spec = load_spec(args.spec)
    if args.tuples is not None:
        spec = replace(spec, tuples=args.tuples)
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    runner = ExperimentRunner(spec)
    if args.trace:
        from repro.obs import Tracer, to_chrome, use_tracer

        tracer = Tracer(max_spans=1_000_000)
        with use_tracer(tracer):
            artifact = runner.run()
        trace_path = Path(args.trace)
        trace_path.write_text(
            json.dumps(to_chrome(tracer.finished())), encoding="utf-8"
        )
        print(
            f"trace written to {trace_path} "
            f"({len(tracer.finished())} spans; open in chrome://tracing)"
        )
    else:
        artifact = runner.run()
    if args.out:
        path = artifact.save(args.out)
        print(f"artifact written to {path} ({len(artifact.cells)} cells)")
    if args.render or not args.out:
        print(_render(artifact))
    return 0


def cmd_render(args) -> int:
    print(_render(RunArtifact.load(args.artifact)))
    return 0


def cmd_check_metrics(args) -> int:
    artifact = RunArtifact.load(args.artifact)
    measured = artifact.metric_keys()
    schema_path = Path(args.schema)
    if args.write:
        schema_path.parent.mkdir(parents=True, exist_ok=True)
        schema_path.write_text(json.dumps(measured, indent=1) + "\n")
        print(f"schema written to {schema_path}")
        return 0
    if not schema_path.is_file():
        print(f"no schema at {schema_path}; run with --write first", file=sys.stderr)
        return 2
    expected = json.loads(schema_path.read_text())
    if measured != expected:
        missing = sorted(set(expected) - set(measured))
        extra = sorted(set(measured) - set(expected))
        print("FAIL: artifact metric keys drifted from the schema", file=sys.stderr)
        if missing:
            print(f"  missing: {missing}", file=sys.stderr)
        if extra:
            print(f"  unexpected: {extra}", file=sys.stderr)
        return 1
    print(f"ok: {len(measured)} metric keys match {schema_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="run, render and gate declarative cleaning experiments",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # the operational flags (--log-level, --seed) are shared with
    # `python -m repro.service` through repro.cli
    commands.add_parser(
        "list", parents=[common_parent()], help="list the checked-in experiment specs"
    )

    run = commands.add_parser(
        "run", parents=[common_parent()], help="run a spec into a RunArtifact"
    )
    run.add_argument("spec", help="checked-in spec name or spec JSON path")
    run.add_argument("--tuples", type=int, default=None, help="override workload size")
    run.add_argument("--out", default=None, help="write the artifact JSON here")
    run.add_argument(
        "--render", action="store_true", help="also print the rendered table"
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="OUT_JSON",
        help="trace every cell and write one Chrome trace_event JSON here",
    )

    render = commands.add_parser(
        "render", parents=[common_parent()], help="re-render a saved artifact"
    )
    render.add_argument("artifact", help="RunArtifact JSON path")

    check = commands.add_parser(
        "check-metrics",
        parents=[common_parent()],
        help="gate an artifact's metric keys against a schema",
    )
    check.add_argument("artifact", help="RunArtifact JSON path")
    check.add_argument("schema", help="schema JSON path (sorted key list)")
    check.add_argument(
        "--write", action="store_true", help="(re)write the schema from the artifact"
    )

    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "render": cmd_render,
        "check-metrics": cmd_check_metrics,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
