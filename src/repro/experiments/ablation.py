"""Ablation studies of the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation:

* :func:`ablation_reliability_score` — what happens when the reliability
  score drops its distance factor (weight-only) or its weight factor
  (distance-only, i.e. pure minimality),
* :func:`ablation_fscr_minimality` — the fusion score with and without the
  minimality factor this reproduction adds (and with FSCR disabled entirely,
  i.e. Stage I only),
* :func:`ablation_partitioner` — Algorithm-3 partitioning vs naive
  round-robin partitioning for the distributed runner.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from repro.core.config import MLNCleanConfig
from repro.core.index import MLNIndex
from repro.core.agp import AbnormalGroupProcessor
from repro.core.rsc import ReliabilityScoreCleaner
from repro.distributed.driver import DistributedMLNClean
from repro.distributed.partition import DataPartitioner, hash_partition
from repro.experiments.harness import ExperimentResult, prepare_instance, run_mlnclean


def ablation_fscr_minimality(
    datasets: Sequence[str] = ("car", "hai"),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Fusion score with / without the minimality factor."""
    result = ExperimentResult(
        experiment="ablation_fscr",
        description="FSCR minimality factor ablation",
    )
    for dataset in datasets:
        instance = prepare_instance(
            dataset, tuples=tuples, error_rate=error_rate, seed=seed
        )
        base = MLNCleanConfig.for_dataset(dataset)
        variants = {
            "weights_and_minimality": base,
            "weights_only (Eq.5)": replace(base, fscr_minimality_bias=0.0),
        }
        for label, config in variants.items():
            run = run_mlnclean(instance, config=config)
            result.add(
                {
                    "dataset": dataset,
                    "variant": label,
                    "f1": round(run.f1, 4),
                    "precision": round(run.precision, 4),
                    "recall": round(run.recall, 4),
                }
            )
    return result


def ablation_reliability_score(
    datasets: Sequence[str] = ("car", "hai"),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Reliability score vs its two degenerate forms, measured on Stage I.

    The full pipeline is kept identical except for how the winning γ of each
    group is chosen: by the full r-score, by weight alone (pure statistics) or
    by support×distance alone (pure minimality).  The reported figures are the
    Stage-I RSC precision/recall.
    """
    result = ExperimentResult(
        experiment="ablation_rscore",
        description="reliability-score factor ablation (RSC precision/recall)",
    )
    for dataset in datasets:
        instance = prepare_instance(
            dataset, tuples=tuples, error_rate=error_rate, seed=seed
        )
        config = MLNCleanConfig.for_dataset(dataset)
        clean_reference = instance.ground_truth.clean_table(instance.dirty)
        lookup = clean_reference.row  # used via .as_dict below

        for variant in ("full", "weight_only", "distance_only"):
            index = MLNIndex.build(instance.dirty, instance.rules)
            AbnormalGroupProcessor(config).process_index(index.block_list)
            cleaner = _variant_cleaner(config, variant)
            outcome = cleaner.clean_index(
                index.block_list, lambda tid: lookup(tid).as_dict()
            )
            counts = outcome.counts
            precision = (
                counts.correctly_repaired_gammas / counts.repaired_gammas
                if counts.repaired_gammas
                else 1.0
            )
            recall = (
                counts.correctly_repaired_gammas / counts.erroneous_gammas
                if counts.erroneous_gammas
                else 1.0
            )
            result.add(
                {
                    "dataset": dataset,
                    "variant": variant,
                    "precision_r": round(precision, 4),
                    "recall_r": round(recall, 4),
                }
            )
    return result


def _variant_cleaner(config: MLNCleanConfig, variant: str) -> ReliabilityScoreCleaner:
    """A cleaner whose reliability score ignores one of its two factors."""
    cleaner = ReliabilityScoreCleaner(config)
    if variant == "full":
        return cleaner
    original_scores = cleaner.reliability_scores

    if variant == "weight_only":

        def weight_only(group):
            return {piece: float(piece.weight) for piece in group.gammas}

        cleaner.reliability_scores = weight_only  # type: ignore[method-assign]
    elif variant == "distance_only":
        # the cleaner's shared engine keeps the variant's distance calls
        # cached and pruned like the full score's
        engine = cleaner.engine

        def distance_only(group):
            gammas = group.gammas
            if len(gammas) < 2:
                return {piece: 1.0 for piece in gammas}
            return {
                piece: piece.support
                * min(
                    engine.values_distance(piece.values, other.values)
                    for other in gammas
                    if other is not piece
                )
                for piece in gammas
            }

        cleaner.reliability_scores = distance_only  # type: ignore[method-assign]
    else:
        raise ValueError(f"unknown reliability-score variant {variant!r}")
    del original_scores
    return cleaner


def ablation_partitioner(
    dataset: str = "tpch",
    workers: int = 4,
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Algorithm-3 partitioning vs round-robin partitioning."""
    result = ExperimentResult(
        experiment="ablation_partition",
        description="distributed partitioning strategy ablation",
    )
    instance = prepare_instance(dataset, tuples=tuples, error_rate=error_rate, seed=seed)
    config = MLNCleanConfig.for_dataset(dataset)

    algorithm3 = DistributedMLNClean(workers=workers, config=config)
    report = algorithm3.clean(instance.dirty, instance.rules, instance.ground_truth)
    result.add(
        {
            "dataset": dataset,
            "partitioner": "algorithm3",
            "workers": workers,
            "f1": round(report.f1, 4),
            "runtime_s": round(report.runtime, 4),
        }
    )

    class _RoundRobinPartitioner(DataPartitioner):
        def partition(self, table):  # type: ignore[override]
            return hash_partition(table, self.parts)

    round_robin = DistributedMLNClean(
        workers=workers,
        config=config,
        partitioner=_RoundRobinPartitioner(parts=workers),
    )
    report = round_robin.clean(instance.dirty, instance.rules, instance.ground_truth)
    result.add(
        {
            "dataset": dataset,
            "partitioner": "round_robin",
            "workers": workers,
            "f1": round(report.f1, 4),
            "runtime_s": round(report.runtime, 4),
        }
    )
    return result
