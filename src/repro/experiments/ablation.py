"""Ablation studies of the design choices DESIGN.md calls out.

These go beyond the paper's own evaluation:

* :func:`ablation_reliability_score` — what happens when the reliability
  score drops its distance factor (weight-only) or its weight factor
  (distance-only, i.e. pure minimality),
* :func:`ablation_fscr_minimality` — the fusion score with and without the
  minimality factor this reproduction adds,
* :func:`ablation_partitioner` — Algorithm-3 partitioning vs naive
  round-robin partitioning for the distributed runner.

Each ablation is a checked-in spec over registered cleaners: the score
variants are the ``"rscore-ablation"`` cleaner (one per ``variant`` option)
and the partitioner ablation pits the stock distributed backend against the
``"roundrobin-distributed"`` cleaner.  Registering experiment-specific
cleaners is the intended extension path — a new ablation is a
:func:`~repro.session.register_cleaner` call plus a spec, not a new loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from repro.core.config import MLNCleanConfig
from repro.core.index import MLNIndex
from repro.core.agp import AbnormalGroupProcessor
from repro.core.report import CleaningReport
from repro.core.rsc import ReliabilityScoreCleaner
from repro.distributed.driver import DistributedMLNClean
from repro.distributed.partition import DataPartitioner, hash_partition
from repro.experiments.harness import ExperimentResult
from repro.experiments.spec import (
    CleanerSpec,
    ConfigCell,
    ExperimentRunner,
    RunArtifact,
    load_spec,
)
from repro.session import register_cleaner
from repro.session.backends import CleaningRequest
from repro.session.cleaners import _reject_custom_stages


# ----------------------------------------------------------------------
# variant cleaners
# ----------------------------------------------------------------------
class RScoreAblationCleaner:
    """Stage-I-only runs scoring γs by a degenerate reliability score.

    The pipeline is kept identical up to RSC except for how the winning γ of
    each group is chosen: by the full r-score (``variant="full"``), by
    weight alone (``"weight_only"``, pure statistics) or by support×distance
    alone (``"distance_only"``, pure minimality).  The cleaner reports the
    Stage-I RSC precision/recall as numeric ``details`` so the experiment
    runner surfaces them as cell metrics.
    """

    name = "rscore-ablation"

    def __init__(self, variant: str = "full"):
        if variant not in ("full", "weight_only", "distance_only"):
            raise ValueError(f"unknown reliability-score variant {variant!r}")
        self.variant = variant

    def run(self, request: CleaningRequest) -> CleaningReport:
        _reject_custom_stages(request, self.name)
        if request.ground_truth is None:
            raise ValueError(
                "the rscore-ablation cleaner measures RSC accuracy and "
                "therefore needs a ground truth"
            )
        clean_reference = request.ground_truth.clean_table(request.dirty)
        lookup = clean_reference.row  # used via .as_dict below

        index = MLNIndex.build(request.dirty, request.rules)
        AbnormalGroupProcessor(request.config).process_index(index.block_list)
        cleaner = _variant_cleaner(request.config, self.variant)
        outcome = cleaner.clean_index(
            index.block_list, lambda tid: lookup(tid).as_dict()
        )
        counts = outcome.counts
        precision = (
            counts.correctly_repaired_gammas / counts.repaired_gammas
            if counts.repaired_gammas
            else 1.0
        )
        recall = (
            counts.correctly_repaired_gammas / counts.erroneous_gammas
            if counts.erroneous_gammas
            else 1.0
        )
        # Stage-I only: no repaired table is derived, so the report carries
        # the dirty table and the measured scores ride in `details`
        return CleaningReport(
            dirty=request.dirty,
            repaired=request.dirty,
            cleaned=request.dirty,
            rsc=outcome,
            backend=self.name,
            details={
                "variant": self.variant,
                "precision_r": round(precision, 4),
                "recall_r": round(recall, 4),
            },
        )


def _variant_cleaner(config: MLNCleanConfig, variant: str) -> ReliabilityScoreCleaner:
    """A cleaner whose reliability score ignores one of its two factors."""
    cleaner = ReliabilityScoreCleaner(config)
    if variant == "full":
        return cleaner

    if variant == "weight_only":

        def weight_only(group):
            return {piece: float(piece.weight) for piece in group.gammas}

        cleaner.reliability_scores = weight_only  # type: ignore[method-assign]
    elif variant == "distance_only":
        # the cleaner's shared engine keeps the variant's distance calls
        # cached and pruned like the full score's
        engine = cleaner.engine

        def distance_only(group):
            gammas = group.gammas
            if len(gammas) < 2:
                return {piece: 1.0 for piece in gammas}
            neighbors = engine.pairwise([piece.values for piece in gammas])
            return {
                piece: piece.support * neighbors[index][1]
                for index, piece in enumerate(gammas)
            }

        cleaner.reliability_scores = distance_only  # type: ignore[method-assign]
    else:
        raise ValueError(f"unknown reliability-score variant {variant!r}")
    return cleaner


class _RoundRobinPartitioner(DataPartitioner):
    def partition(self, table):  # type: ignore[override]
        return hash_partition(table, self.parts)


class RoundRobinDistributedCleaner:
    """Distributed MLNClean with naive round-robin partitioning.

    The counterfactual for the Algorithm-3 partitioner: same driver, same
    workers, but tuples are dealt to parts round-robin instead of being
    co-located by rule-attribute similarity.
    """

    name = "roundrobin-distributed"

    def __init__(self, workers: int = 4):
        self.workers = workers

    def run(self, request: CleaningRequest) -> CleaningReport:
        _reject_custom_stages(request, self.name)
        driver = DistributedMLNClean(
            workers=self.workers,
            config=request.config,
            partitioner=_RoundRobinPartitioner(parts=self.workers),
        )
        report = driver.clean(request.dirty, request.rules, request.ground_truth)
        return report.as_cleaning_report()


register_cleaner("rscore-ablation", RScoreAblationCleaner)
register_cleaner("roundrobin-distributed", RoundRobinDistributedCleaner)


# ----------------------------------------------------------------------
# the ablation experiments (spec + renderer each)
# ----------------------------------------------------------------------
def render_ablation_fscr(artifact: RunArtifact) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation_fscr",
        description="FSCR minimality factor ablation",
    )
    for cell in artifact.cells:
        result.add(
            {
                "dataset": cell.coords["workload"],
                "variant": cell.coords["config"]["label"],
                "f1": cell.metrics["f1"],
                "precision": cell.metrics["precision"],
                "recall": cell.metrics["recall"],
            }
        )
    return result


def ablation_fscr_minimality(
    datasets: Sequence[str] = ("car", "hai"),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Fusion score with / without the minimality factor."""
    spec = replace(
        load_spec("ablation_fscr"),
        workloads=list(datasets),
        error_rates=[error_rate],
        tuples=tuples,
        seed=seed,
    )
    return render_ablation_fscr(ExperimentRunner(spec).run())


def render_ablation_rscore(artifact: RunArtifact) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation_rscore",
        description="reliability-score factor ablation (RSC precision/recall)",
    )
    for cell in artifact.cells:
        result.add(
            {
                "dataset": cell.coords["workload"],
                "variant": cell.coords["system"],
                "precision_r": cell.metrics["precision_r"],
                "recall_r": cell.metrics["recall_r"],
            }
        )
    return result


def ablation_reliability_score(
    datasets: Sequence[str] = ("car", "hai"),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Reliability score vs its two degenerate forms, measured on Stage I."""
    spec = replace(
        load_spec("ablation_rscore"),
        workloads=list(datasets),
        error_rates=[error_rate],
        tuples=tuples,
        seed=seed,
    )
    return render_ablation_rscore(ExperimentRunner(spec).run())


def render_ablation_partition(artifact: RunArtifact) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation_partition",
        description="distributed partitioning strategy ablation",
    )
    for cell in artifact.cells:
        result.add(
            {
                "dataset": cell.coords["workload"],
                "partitioner": cell.coords["system"],
                "workers": cell.metrics["workers"],
                "f1": cell.metrics["f1"],
                "runtime_s": cell.metrics["sim_runtime_s"],
            }
        )
    return result


def ablation_partitioner(
    dataset: str = "tpch",
    workers: int = 4,
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Algorithm-3 partitioning vs round-robin partitioning."""
    spec = replace(
        load_spec("ablation_partition"),
        workloads=[dataset],
        error_rates=[error_rate],
        cleaners=[
            CleanerSpec(
                cleaner="mlnclean",
                label="algorithm3",
                options={"backend": "distributed", "workers": int(workers)},
            ),
            CleanerSpec(
                cleaner="roundrobin-distributed",
                label="round_robin",
                options={"workers": int(workers)},
            ),
        ],
        tuples=tuples,
        seed=seed,
    )
    return render_ablation_partition(ExperimentRunner(spec).run())


def render_ablation_pruning(artifact: RunArtifact) -> ExperimentResult:
    result = ExperimentResult(
        experiment="pruning_ablation",
        description="batch-API pruning knobs: accuracy vs distance budget",
    )
    for cell in artifact.cells:
        result.add(
            {
                "dataset": cell.coords["workload"],
                "variant": cell.coords["config"]["label"],
                "f1": cell.metrics["f1"],
                "distance_calls": cell.perf.get("distance_calls", 0),
                "raw_evaluations": cell.perf.get("raw_evaluations", 0),
                "kernel_evaluations": cell.perf.get("kernel_evaluations", 0),
                "qgram_filtered": cell.perf.get("qgram_filtered", 0),
            }
        )
    return result


def ablation_pruning(
    datasets: Sequence[str] = ("hospital-sample",),
    error_rate: float = 0.1,
    tuples: Optional[int] = 60,
    seed: int = 7,
) -> ExperimentResult:
    """Exact defaults vs the approximating pruning knobs, F1 + budget.

    The exact variants (kernel and python backend) must produce identical
    F1 — only their ``raw_evaluations`` / ``kernel_evaluations`` split
    differs; the ``pruning_topk`` / ``max_candidates`` rows trade repair
    quality for a smaller distance budget.
    """
    spec = replace(
        load_spec("pruning_ablation"),
        workloads=list(datasets),
        error_rates=[error_rate],
        tuples=tuples,
        seed=seed,
    )
    return render_ablation_pruning(ExperimentRunner(spec).run())


# referenced by the checked-in spec defaults (kept here so a bare
# `load_spec("ablation_fscr")` renders with the same labels)
FSCR_VARIANTS: list[ConfigCell] = [
    ConfigCell(overrides={}, label="weights_and_minimality"),
    ConfigCell(overrides={"fscr_minimality_bias": 0.0}, label="weights_only (Eq.5)"),
]
