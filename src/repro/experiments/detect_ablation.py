"""Detection-scoped cleaning vs the full-scope pipeline, as one harness.

:func:`detect_scoping` runs MLNClean on a dirty workload instance either
full-scope (``mode="full"``, no detection phase) or dirty-cell-scoped
(``mode="scoped"``, a refined violation detector prunes Stage I/II down to
the blocks, groups and tuples holding detected cells).  Both modes run the
*same* violation detector — the full-scope run uses it out-of-band, only to
know which cells to compare — so the two rows score repairs over one cell
set:

* ``raw_evaluations`` — exact metric evaluations of the cleaning run by
  either distance backend, scalar or vectorized kernel (detection
  excluded); the scoped run must do measurably less,
* ``repair_acc_detected`` — among the detected cells the injector actually
  corrupted, the fraction repaired to the ledger's clean value,
* ``repairs_digest`` — SHA-256 over the repaired values of every detected
  cell; equal digests mean the pruned run repaired the detected cells
  byte-identically to the full pipeline.
"""

from __future__ import annotations

import hashlib
import time
from typing import Optional

from repro.detect.run import run_detection
from repro.experiments.harness import ExperimentResult, prepare_instance
from repro.perf import global_distance_stats
from repro.session import CleaningSession
from repro.workloads.registry import recommended_config

#: the detector stack both modes agree on
DETECTORS = [{"name": "violation"}]


def detect_scoping(
    mode: str = "full",
    dataset: str = "hospital-sample",
    tuples: Optional[int] = 120,
    error_rate: float = 0.1,
    replacement_ratio: float = 0.5,
    seed: int = 7,
    error_seed: int = 42,
) -> ExperimentResult:
    """One full-scope or detect-scoped MLNClean run (see module doc)."""
    if mode not in ("full", "scoped"):
        raise ValueError(f"mode must be 'full' or 'scoped', got {mode!r}")
    instance = prepare_instance(
        dataset,
        tuples=tuples,
        error_rate=error_rate,
        replacement_ratio=replacement_ratio,
        seed=seed,
        error_seed=error_seed,
    )
    # the comparison cell set: what the shared detector stack flags
    detected = run_detection(
        instance.dirty,
        instance.rules,
        DETECTORS,
        ground_truth=instance.ground_truth,
    )
    session = CleaningSession(
        rules=instance.rules,
        config=recommended_config(dataset),
        table=instance.dirty,
        ground_truth=instance.ground_truth,
        detectors=list(DETECTORS) if mode == "scoped" else None,
    )
    stats_before = global_distance_stats()
    started = time.perf_counter()
    report = session.run()
    wall_seconds = time.perf_counter() - started
    delta = global_distance_stats().diff(stats_before)

    repairs = {}
    for cell in sorted(detected.cells, key=lambda c: (c.tid, c.attribute)):
        if report.repaired.has_tid(cell.tid):
            repairs[cell] = report.repaired.row(cell.tid)[cell.attribute]
    digest = hashlib.sha256(
        "\n".join(
            f"{cell.tid}\t{cell.attribute}\t{value}"
            for cell, value in repairs.items()
        ).encode("utf-8")
    ).hexdigest()
    truly_dirty = [
        cell for cell in repairs if instance.ground_truth.is_dirty(cell)
    ]
    fixed = sum(
        1
        for cell in truly_dirty
        if repairs[cell] == instance.ground_truth.clean_value(cell)
    )
    accuracy = report.accuracy
    result = ExperimentResult(
        experiment=f"detect_{mode}",
        description=(
            "violation-detected cleaning scope vs the full pipeline "
            f"({dataset}, {len(instance.dirty)} tuples)"
        ),
    )
    result.add(
        {
            "dataset": dataset,
            "system": f"MLNClean[{mode}]",
            "precision": round(accuracy.precision, 4) if accuracy else 0.0,
            "recall": round(accuracy.recall, 4) if accuracy else 0.0,
            "f1": round(accuracy.f1, 4) if accuracy else 0.0,
            "runtime_s": round(wall_seconds, 4),
            "raw_evaluations": delta.exact_evaluations,
            "distance_calls": delta.calls,
            "detected_cells": detected.count,
            "repair_acc_detected": round(fixed / len(truly_dirty), 4)
            if truly_dirty
            else 1.0,
            "repairs_digest": digest[:16],
        }
    )
    return result
