"""Table 5: the distance-metric comparison.

The paper compares the Levenshtein distance (MLNClean's default) against the
cosine distance on both CAR and HAI at 5 % errors, finding Levenshtein clearly
better on the sparse CAR data (typos early in a string inflate cosine
distances) and mildly better on HAI.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from repro.core.config import MLNCleanConfig
from repro.experiments.harness import ExperimentResult, prepare_instance, run_mlnclean


def table05_distance_metrics(
    datasets: Sequence[str] = ("car", "hai"),
    metrics: Sequence[str] = ("levenshtein", "damerau", "cosine"),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """F1 of MLNClean under each distance metric (Table 5).

    Extends the paper's Levenshtein-vs-cosine comparison with the
    Damerau-Levenshtein variant; both edit distances run through the same
    affix-stripping fast path (:mod:`repro.distance.fastpath`), so the
    ablation isolates the transposition operation rather than mixing in
    preprocessing differences.
    """
    result = ExperimentResult(
        experiment="table05",
        description="MLNClean F1 under different distance metrics",
    )
    for dataset in datasets:
        instance = prepare_instance(
            dataset, tuples=tuples, error_rate=error_rate, seed=seed
        )
        base = MLNCleanConfig.for_dataset(dataset)
        for metric in metrics:
            run = run_mlnclean(instance, config=base.with_metric(metric))
            result.add(
                {
                    "dataset": dataset,
                    "metric": metric,
                    "f1": round(run.f1, 4),
                    "precision": round(run.precision, 4),
                    "recall": round(run.recall, 4),
                    "runtime_s": round(run.runtime_seconds, 4),
                }
            )
    return result
