"""Table 5: the distance-metric comparison, as a checked-in spec + renderer.

The paper compares the Levenshtein distance (MLNClean's default) against the
cosine distance on both CAR and HAI at 5 % errors, finding Levenshtein clearly
better on the sparse CAR data (typos early in a string inflate cosine
distances) and mildly better on HAI.  The checked-in
``specs/table05.json`` extends the grid with the Damerau-Levenshtein variant;
both edit distances run through the same affix-stripping fast path
(:mod:`repro.distance.fastpath`), so the ablation isolates the transposition
operation rather than mixing in preprocessing differences.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from repro.experiments.harness import ExperimentResult
from repro.experiments.spec import (
    ConfigCell,
    ExperimentRunner,
    RunArtifact,
    load_spec,
)


def metric_grid(metrics: Sequence[str]) -> list[ConfigCell]:
    """A distance-metric grid as configuration cells."""
    return [
        ConfigCell(overrides={"distance_metric": metric}, label=metric)
        for metric in metrics
    ]


def render_table05(artifact: RunArtifact) -> ExperimentResult:
    """Project a table05-shaped artifact onto the table's rows."""
    result = ExperimentResult(
        experiment="table05",
        description="MLNClean F1 under different distance metrics",
    )
    for cell in artifact.cells:
        result.add(
            {
                "dataset": cell.coords["workload"],
                "metric": cell.coords["config"]["label"],
                "f1": cell.metrics["f1"],
                "precision": cell.metrics["precision"],
                "recall": cell.metrics["recall"],
                "runtime_s": cell.metrics["runtime_s"],
            }
        )
    return result


def table05_distance_metrics(
    datasets: Sequence[str] = ("car", "hai"),
    metrics: Sequence[str] = ("levenshtein", "damerau", "cosine"),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """F1 of MLNClean under each distance metric (Table 5)."""
    spec = replace(
        load_spec("table05"),
        workloads=list(datasets),
        error_rates=[error_rate],
        config_grid=metric_grid(metrics),
        tuples=tuples,
        seed=seed,
    )
    return render_table05(ExperimentRunner(spec).run())
