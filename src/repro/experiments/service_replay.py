"""Service-replay experiment: the serving path must not change the answer.

``specs/service_replay.json`` runs the same grid cells twice — once with the
plain ``mlnclean`` cleaner (the batch reference) and once with the
``"service"`` cleaner, which routes each request through an in-process
:class:`~repro.service.service.CleaningService` (bounded queue, shard
routing, executor hop).  The renderer then checks, per grid position, that
the service cell reproduced the batch cell exactly: identical cleaned
tables and identical headline metrics (wall-clock excluded).  Like
``streaming_replay``, the check is computed from the artifact's
round-tripped reports, so re-rendering a deserialized artifact re-verifies
the equivalence without re-running anything.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

import repro.service  # noqa: F401 - registers the "service" cleaner
from repro.experiments.harness import ExperimentResult
from repro.experiments.spec import ExperimentRunner, RunArtifact, load_spec

#: per-cell metric keys that name the system or measure wall-clock — the
#: only metrics allowed to differ between the batch and service cells
_INCOMPARABLE_METRICS = ("system", "runtime_s")


def _grid_key(cell) -> tuple:
    """The full non-cleaner grid position of a cell."""
    coords = cell.coords
    return (
        coords["workload"],
        coords["error_rate"],
        coords["replacement_ratio"],
        repr(sorted(coords["config"]["overrides"].items())),
    )


def _is_batch_reference(cell) -> bool:
    return cell.coords["cleaner"] == "mlnclean"


def _comparable_metrics(cell) -> dict:
    return {
        key: value
        for key, value in cell.metrics.items()
        if key not in _INCOMPARABLE_METRICS
    }


def render_service_replay(artifact: RunArtifact) -> ExperimentResult:
    """Per-cleaner rows with exact-equality checks against the batch cell."""
    result = ExperimentResult(
        experiment="service_replay",
        description="batch MLNClean vs the same requests through repro.service",
    )
    references: dict[tuple, object] = {}
    for cell in artifact.cells:
        if _is_batch_reference(cell):
            references[_grid_key(cell)] = cell
    for cell in artifact.cells:
        row = {
            "dataset": cell.coords["workload"],
            "system": cell.metrics["system"],
            "f1": cell.metrics["f1"],
            "runtime_s": cell.metrics["runtime_s"],
        }
        if not _is_batch_reference(cell):
            reference = references.get(_grid_key(cell))
            if reference is not None:
                row["metrics_equal"] = _comparable_metrics(
                    cell
                ) == _comparable_metrics(reference)
                if cell.report is not None and reference.report is not None:
                    row["matches_batch"] = cell.report.cleaned.equals(
                        reference.report.cleaned
                    )
        result.add(row)
    return result


def service_replay(
    datasets: Sequence[str] = ("hospital-sample",),
    error_rate: float = 0.1,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Run the checked-in spec (with overrides) and render the equality table."""
    spec = load_spec("service_replay")
    spec = replace(
        spec,
        workloads=list(datasets),
        error_rates=[error_rate],
        tuples=tuples if tuples is not None else spec.tuples,
        seed=seed,
    )
    return render_service_replay(ExperimentRunner(spec).run())
