"""Declarative experiments: `ExperimentSpec` → `ExperimentRunner` → `RunArtifact`.

An experiment used to be a hand-rolled loop per figure.  Here it is pure
data: an :class:`ExperimentSpec` describes a grid of cleaner × workload ×
error rate × configuration overrides, the :class:`ExperimentRunner` expands
the grid through :class:`~repro.session.CleaningSession` runs, and the
result is a typed :class:`RunArtifact` — the spec, one unified
:class:`~repro.core.report.CleaningReport` per grid cell, the headline
metrics, and per-cell perf counters — with lossless ``to_json()`` /
``from_json()``.  Every paper figure/table is a checked-in spec (JSON files
under ``specs/``) plus a thin renderer over artifacts (the per-figure
modules), so a new comparison or regression gate is a spec diff, not code::

    from repro.experiments import ExperimentRunner, load_spec

    artifact = ExperimentRunner(load_spec("fig06")).run()
    artifact.save("fig06-artifact.json")        # diffable, CI-gateable
    # ... later, elsewhere:
    artifact = RunArtifact.load("fig06-artifact.json")

Grid cells are expanded in a fixed order — workload → error rate →
replacement ratio → config override → cleaner — and every run is seeded, so
re-running a spec reproduces the same (non-timing) numbers bit for bit.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Union

from repro.core.report import CleaningReport
from repro.detect.base import DirtyCells, detector_specs_identity
from repro.perf import global_distance_stats
from repro.registry import unknown_name
from repro.session import CleaningSession
from repro.session.cleaners import (
    Cleaner,
    MLNCleanCleaner,
    display_name,
    get_cleaner,
)
from repro.workloads.registry import recommended_config

#: where the checked-in experiment specs live (one JSON file per figure)
SPEC_DIR = Path(__file__).parent / "specs"


# ----------------------------------------------------------------------
# the spec: pure data
# ----------------------------------------------------------------------
@dataclass
class ConfigCell:
    """One point on the configuration axis of the grid.

    ``overrides`` are :class:`~repro.core.config.MLNCleanConfig` field
    overrides applied on top of the workload's recommended configuration
    (e.g. ``{"abnormal_threshold": 10}`` for a τ sweep); ``label`` names the
    point in renderings (defaults to a compact form of the overrides).
    """

    overrides: dict = field(default_factory=dict)
    label: Optional[str] = None

    @property
    def display(self) -> str:
        if self.label is not None:
            return self.label
        if not self.overrides:
            return "default"
        return ",".join(f"{k}={v}" for k, v in self.overrides.items())

    def to_json_dict(self) -> dict:
        return {"label": self.label, "overrides": dict(self.overrides)}

    @classmethod
    def from_json_dict(cls, data: dict) -> "ConfigCell":
        if "overrides" not in data and "label" not in data:
            # shorthand: a bare override mapping
            return cls(overrides=dict(data))
        return cls(
            overrides=dict(data.get("overrides") or {}),
            label=data.get("label"),
        )


@dataclass
class CleanerSpec:
    """One point on the cleaner axis of the grid.

    ``cleaner`` is a registered cleaner name, ``options`` its factory
    options (e.g. ``{"backend": "distributed", "workers": 4}`` for
    "mlnclean"), ``config`` extra per-cleaner
    :class:`~repro.core.config.MLNCleanConfig` overrides, and ``label`` the
    system name in renderings (defaults to the cleaner's display name).
    """

    cleaner: str = "mlnclean"
    label: Optional[str] = None
    options: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "cleaner": self.cleaner,
            "label": self.label,
            "options": dict(self.options),
            "config": dict(self.config),
        }

    @classmethod
    def from_json_dict(cls, data: Union[str, dict]) -> "CleanerSpec":
        if isinstance(data, str):
            # shorthand: just the registered cleaner name
            return cls(cleaner=data)
        return cls(
            cleaner=data.get("cleaner", "mlnclean"),
            label=data.get("label"),
            options=dict(data.get("options") or {}),
            config=dict(data.get("config") or {}),
        )


#: shared config axis (one list) or a per-workload mapping (τ grids differ
#: per dataset in the paper)
ConfigGrid = Union[list[ConfigCell], dict[str, list[ConfigCell]]]


@dataclass
class ExperimentSpec:
    """A full experiment as data: the grid, the sizes, the seeds."""

    name: str
    description: str = ""
    #: registered workload names ("car", "hai", "tpch", "hospital-sample")
    workloads: list[str] = field(default_factory=list)
    #: the cleaner axis (every cleaner runs on every other grid point)
    cleaners: list[CleanerSpec] = field(default_factory=lambda: [CleanerSpec()])
    #: the error-percentage axis of Section 7.1's injector
    error_rates: list[float] = field(default_factory=lambda: [0.05])
    #: the error-type-ratio (Rret) axis
    replacement_ratios: list[float] = field(default_factory=lambda: [0.5])
    #: the configuration axis; a dict maps workload → its own grid
    config_grid: ConfigGrid = field(default_factory=lambda: [ConfigCell()])
    #: the error-detection axis: each entry is ``None`` (no detection phase)
    #: or a detector-spec list (names / {"name", "options"} objects, see
    #: :mod:`repro.detect`); every stack runs on every other grid point
    detector_stacks: list = field(default_factory=lambda: [None])
    #: workload size; ``None`` = the harness defaults per dataset
    tuples: Optional[int] = None
    #: workload-generation seed
    seed: int = 7
    #: error-injection seed
    error_seed: int = 42
    #: keep the full per-cell CleaningReport in the artifact
    store_reports: bool = True

    def grid_for(self, workload: str) -> list[ConfigCell]:
        """The configuration axis applying to ``workload``.

        Dataset names are case-insensitive everywhere else (the workload
        registry lowercases), so the per-workload grid lookup is too.
        """
        if isinstance(self.config_grid, dict):
            by_name = {name.lower(): cells for name, cells in self.config_grid.items()}
            return by_name.get(workload.lower(), [ConfigCell()])
        return self.config_grid

    # ------------------------------------------------------------------
    # JSON
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        if isinstance(self.config_grid, dict):
            grid: object = {
                workload: [cell.to_json_dict() for cell in cells]
                for workload, cells in self.config_grid.items()
            }
        else:
            grid = [cell.to_json_dict() for cell in self.config_grid]
        payload = {
            "name": self.name,
            "description": self.description,
            "workloads": list(self.workloads),
            "cleaners": [cleaner.to_json_dict() for cleaner in self.cleaners],
            "error_rates": list(self.error_rates),
            "replacement_ratios": list(self.replacement_ratios),
            "config_grid": grid,
            "tuples": self.tuples,
            "seed": self.seed,
            "error_seed": self.error_seed,
            "store_reports": self.store_reports,
        }
        if self.detector_stacks != [None]:
            # the no-detection default stays implicit so pre-detection spec
            # files round-trip bit-identically
            payload["detector_stacks"] = [
                None if stack is None else list(stack)
                for stack in self.detector_stacks
            ]
        return payload

    @classmethod
    def from_json_dict(cls, data: dict) -> "ExperimentSpec":
        raw_grid = data.get("config_grid", [{}])
        if isinstance(raw_grid, dict):
            grid: ConfigGrid = {
                workload: [ConfigCell.from_json_dict(cell) for cell in cells]
                for workload, cells in raw_grid.items()
            }
        else:
            grid = [ConfigCell.from_json_dict(cell) for cell in raw_grid]
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            workloads=list(data.get("workloads") or []),
            cleaners=[
                CleanerSpec.from_json_dict(cleaner)
                for cleaner in data.get("cleaners") or [{}]
            ],
            error_rates=list(data.get("error_rates") or [0.05]),
            replacement_ratios=list(data.get("replacement_ratios") or [0.5]),
            config_grid=grid,
            detector_stacks=[
                None if stack is None else list(stack)
                for stack in data.get("detector_stacks") or [None]
            ],
            tuples=data.get("tuples"),
            seed=int(data.get("seed", 7)),
            error_seed=int(data.get("error_seed", 42)),
            store_reports=bool(data.get("store_reports", True)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_json_dict(json.loads(text))


def available_specs() -> list[str]:
    """Names of the checked-in experiment specs."""
    if not SPEC_DIR.is_dir():
        return []
    return sorted(path.stem for path in SPEC_DIR.glob("*.json"))


def load_spec(ref: Union[str, Path, ExperimentSpec]) -> ExperimentSpec:
    """Load a spec by checked-in name, file path, or pass one through."""
    if isinstance(ref, ExperimentSpec):
        return ref
    path = Path(ref)
    if not (path.suffix == ".json" or path.is_file()):
        path = SPEC_DIR / f"{ref}.json"
    if not path.is_file():
        raise KeyError(unknown_name("experiment spec", str(ref), available_specs()))
    return ExperimentSpec.from_json(path.read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# the artifact: what one run produces
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """One grid cell: where it sits, what it measured, the full report."""

    #: grid coordinates (workload, error_rate, replacement_ratio, config,
    #: cleaner, system label)
    coords: dict
    #: headline metrics, rounded the way the paper's tables print them
    metrics: dict
    #: perf counters of the cell (wall-clock + distance-engine deltas)
    perf: dict = field(default_factory=dict)
    #: the unified report (None when the spec disables report storage)
    report: Optional[CleaningReport] = None

    def to_json_dict(self) -> dict:
        return {
            "coords": dict(self.coords),
            "metrics": dict(self.metrics),
            "perf": dict(self.perf),
            "report": self.report.to_json_dict() if self.report is not None else None,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "CellResult":
        stored = data.get("report")
        return cls(
            coords=dict(data["coords"]),
            metrics=dict(data["metrics"]),
            perf=dict(data.get("perf") or {}),
            report=CleaningReport.from_json_dict(stored) if stored is not None else None,
        )


@dataclass
class RunArtifact:
    """The durable outcome of running one spec: spec + cells, JSON-lossless.

    ``from_json(artifact.to_json())`` reproduces an artifact that serializes
    to the same JSON again, bit for bit — so artifacts can be archived,
    diffed run-over-run, and re-rendered into identical figures without
    re-running anything.
    """

    spec: ExperimentSpec
    cells: list[CellResult] = field(default_factory=list)
    #: optional :meth:`repro.obs.MetricsRegistry.snapshot` taken after the
    #: run (cumulative process counters — observational, not a metric cell)
    metrics_snapshot: Optional[dict] = None

    def metric_keys(self) -> list[str]:
        """Sorted union of metric keys across all cells (the CI schema)."""
        keys: set[str] = set()
        for cell in self.cells:
            keys.update(cell.metrics)
        return sorted(keys)

    def to_json_dict(self) -> dict:
        payload = {
            "spec": self.spec.to_json_dict(),
            "cells": [cell.to_json_dict() for cell in self.cells],
        }
        if self.metrics_snapshot is not None:
            payload["metrics_snapshot"] = self.metrics_snapshot
        return payload

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunArtifact":
        return cls(
            spec=ExperimentSpec.from_json_dict(data["spec"]),
            cells=[CellResult.from_json_dict(cell) for cell in data["cells"]],
            metrics_snapshot=data.get("metrics_snapshot"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        return cls.from_json_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunArtifact":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class ExperimentRunner:
    """Expands a spec's grid through cleaning sessions into a RunArtifact."""

    def __init__(self, spec: Union[ExperimentSpec, str, Path]):
        self.spec = load_spec(spec)

    def run(self) -> RunArtifact:
        """Run every grid cell, in the fixed expansion order."""
        from repro.experiments.harness import prepare_instance

        spec = self.spec
        cells: list[CellResult] = []
        for workload in spec.workloads:
            grid = spec.grid_for(workload)
            for error_rate in spec.error_rates:
                for ratio in spec.replacement_ratios:
                    instance = prepare_instance(
                        workload,
                        tuples=spec.tuples,
                        error_rate=error_rate,
                        replacement_ratio=ratio,
                        seed=spec.seed,
                        error_seed=spec.error_seed,
                    )
                    for config_cell in grid:
                        for cleaner_spec in spec.cleaners:
                            for detectors in spec.detector_stacks:
                                cells.append(
                                    self._run_cell(
                                        workload,
                                        error_rate,
                                        ratio,
                                        config_cell,
                                        cleaner_spec,
                                        instance,
                                        detectors,
                                    )
                                )
        from repro.obs import get_registry

        return RunArtifact(
            spec=spec, cells=cells, metrics_snapshot=get_registry().snapshot()
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_cell(
        self,
        workload: str,
        error_rate: float,
        ratio: float,
        config_cell: ConfigCell,
        cleaner_spec: CleanerSpec,
        instance,
        detectors=None,
    ) -> CellResult:
        config = recommended_config(workload)
        overrides = {**config_cell.overrides, **cleaner_spec.config}
        if overrides:
            config = replace(config, **overrides)
        cleaner = get_cleaner(cleaner_spec.cleaner, **cleaner_spec.options)
        session = CleaningSession(
            rules=instance.rules,
            config=config,
            cleaner=cleaner,
            table=instance.dirty,
            ground_truth=instance.ground_truth,
            detectors=list(detectors) if detectors is not None else None,
        )
        stats_before = global_distance_stats()
        started = time.perf_counter()
        report = session.run()
        wall_seconds = time.perf_counter() - started
        delta = global_distance_stats().diff(stats_before)
        system = cleaner_spec.label or display_name(cleaner)
        coords = {
            "workload": workload,
            "error_rate": error_rate,
            "replacement_ratio": ratio,
            "config": config_cell.to_json_dict(),
            "cleaner": cleaner_spec.cleaner,
            "options": dict(cleaner_spec.options),
            "detectors": detector_specs_identity(detectors),
            "system": system,
        }
        perf = {
            "wall_seconds": round(wall_seconds, 4),
            "distance_calls": delta.calls,
            "raw_evaluations": delta.raw_evaluations,
            "kernel_evaluations": delta.kernel_evaluations,
            "qgram_candidates": delta.qgram_candidates,
            "qgram_filtered": delta.qgram_filtered,
            "cache_hit_rate": round(delta.hit_rate, 4),
            # per-stage wall-clock from the run's own TimingBreakdown, so
            # artifacts carry the stage split without re-deriving it
            "stages": {
                phase: round(seconds, 4)
                for phase, seconds in report.timings.as_dict().items()
            },
        }
        metrics = _cell_metrics(report, system, wall_seconds, cleaner)
        if detectors is not None:
            metrics.update(_detection_metrics(report, instance))
        return CellResult(
            coords=coords,
            metrics=metrics,
            perf=perf,
            report=report if self.spec.store_reports else None,
        )


def _cell_metrics(
    report: CleaningReport, system: str, wall_seconds: float, cleaner: Cleaner
) -> dict:
    """Headline metrics of one cell, matching the paper-table conventions.

    The layout mirrors what the pre-spec harness printed per run: system
    label, precision/recall/F1, wall-clock, then the component metrics when
    the stages were instrumented, plus cleaner-specific extras (duplicates
    removed, detected cells, the distributed simulation's runtimes).
    Cleaners can surface additional numeric metrics by returning a plain
    dict as ``report.details``.
    """
    accuracy = report.accuracy
    metrics: dict = {
        "system": system,
        "precision": round(accuracy.precision, 4) if accuracy else 0.0,
        "recall": round(accuracy.recall, 4) if accuracy else 0.0,
        "f1": round(accuracy.f1, 4) if accuracy else 0.0,
        "runtime_s": round(wall_seconds, 4),
    }
    if any(o is not None for o in (report.agp, report.rsc, report.fscr)):
        for key, value in report.component_accuracy.as_dict().items():
            metrics[key] = round(value, 4)
    # Cleaners that *route to* MLNClean (the service cleaner's default) get
    # the same metric layout, so equality checks compare like with like.
    routes_to_mlnclean = getattr(cleaner, "inner", None) == "mlnclean"
    if isinstance(cleaner, MLNCleanCleaner) or routes_to_mlnclean:
        metrics["duplicates_removed"] = float(
            report.dedup.removed_count if report.dedup is not None else 0
        )
    details = report.details
    if isinstance(details, dict):
        for key, value in details.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[key] = round(float(value), 4)
    elif details is not None:
        detected = getattr(details, "detected_cells", None)
        if detected is not None:
            # an int count (PerfDetails) or the distributed driver's cell list
            metrics["detected_cells"] = float(
                detected if isinstance(detected, int) else len(detected)
            )
        if hasattr(details, "speedup") and hasattr(details, "sequential_runtime"):
            metrics["workers"] = getattr(details, "workers", 0)
            metrics["sim_runtime_s"] = round(details.runtime, 4)
            metrics["sequential_s"] = round(details.sequential_runtime, 4)
            metrics["speedup"] = round(details.speedup, 3)
    return metrics


def _detection_metrics(report: CleaningReport, instance) -> dict:
    """Detector-quality metrics of a detection-enabled cell.

    Pulls the detection drill-down out of the report details (a dict for the
    baseline cleaners, a ``PerfDetails`` for the MLNClean backends) and
    scores it against the instance's injected-error ledger: detected-cell
    count, detection precision/recall/F1.  Cells whose cleaner carries no
    detection drill-down contribute nothing.
    """
    details = report.details
    if isinstance(details, dict):
        detection = details.get("detection")
    else:
        detection = getattr(details, "detection", None)
    if not isinstance(detection, dict):
        return {}
    detected = DirtyCells.from_json_dict(detection)
    metrics = {"detected_cells": float(detected.count)}
    if instance.ground_truth is not None:
        accuracy = detected.accuracy(
            instance.ground_truth.dirty_cells, instance.dirty
        )
        metrics["detect_precision"] = round(accuracy["precision"], 4)
        metrics["detect_recall"] = round(accuracy["recall"], 4)
        metrics["detect_f1"] = round(accuracy["f1"], 4)
    return metrics
