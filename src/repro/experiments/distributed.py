"""Figure 15 and Table 6: the distributed MLNClean experiments.

* **Figure 15** runs distributed MLNClean on HAI and TPC-H while varying the
  error percentage, reporting F1 and runtime.
* **Table 6** fixes the workload (TPC-H, 5 % errors) and varies the number of
  workers from 2 to 10, reporting the runtime; the paper observes roughly a
  6.7× speedup from 2 to 10 workers.

Workers are simulated in-process (see :mod:`repro.distributed`), so runtimes
are the simulated parallel makespan; the sequential runtime is included so
speedups can be derived.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from repro.core.config import MLNCleanConfig
from repro.experiments.harness import (
    ExperimentResult,
    default_error_rates,
    prepare_instance,
    session_for_instance,
)


def fig15_distributed(
    datasets: Sequence[str] = ("hai", "tpch"),
    error_rates: Optional[Sequence[float]] = None,
    workers: int = 4,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Distributed F1 and runtime vs error percentage (Figure 15)."""
    rates = error_rates if error_rates is not None else default_error_rates()
    result = ExperimentResult(
        experiment="fig15",
        description=f"distributed MLNClean ({workers} workers) vs error percentage",
    )
    for dataset in datasets:
        config = MLNCleanConfig.for_dataset(dataset)
        for rate in rates:
            instance = prepare_instance(
                dataset, tuples=tuples, error_rate=rate, seed=seed
            )
            session = session_for_instance(
                instance, config=config, backend="distributed", workers=workers
            )
            details = session.run().details
            result.add(
                {
                    "dataset": dataset,
                    "error_rate": rate,
                    "workers": workers,
                    "f1": round(details.f1, 4),
                    "runtime_s": round(details.runtime, 4),
                    "sequential_s": round(details.sequential_runtime, 4),
                    "speedup": round(details.speedup, 3),
                }
            )
    return result


def table06_worker_scaling(
    dataset: str = "tpch",
    worker_counts: Sequence[int] = (2, 4, 6, 8, 10),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Distributed runtime vs number of workers (Table 6)."""
    result = ExperimentResult(
        experiment="table06",
        description="distributed MLNClean runtime vs number of workers",
    )
    instance = prepare_instance(dataset, tuples=tuples, error_rate=error_rate, seed=seed)
    config = MLNCleanConfig.for_dataset(dataset)
    baseline_runtime: Optional[float] = None
    for workers in worker_counts:
        session = session_for_instance(
            instance, config=config, backend="distributed", workers=workers
        )
        details = session.run().details
        if baseline_runtime is None:
            baseline_runtime = details.runtime
        result.add(
            {
                "dataset": dataset,
                "workers": workers,
                "runtime_s": round(details.runtime, 4),
                "sequential_s": round(details.sequential_runtime, 4),
                "f1": round(details.f1, 4),
                "speedup_vs_first": round(
                    baseline_runtime / details.runtime if details.runtime else 1.0, 3
                ),
            }
        )
    return result
