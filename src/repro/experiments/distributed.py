"""Figure 15 and Table 6: distributed MLNClean, as specs + renderers.

* **Figure 15** runs distributed MLNClean on HAI and TPC-H while varying the
  error percentage, reporting F1 and runtime (``specs/fig15.json``).
* **Table 6** fixes the workload (TPC-H, 5 % errors) and varies the number of
  workers from 2 to 10, reporting the runtime (``specs/table06.json``); the
  paper observes roughly a 6.7× speedup from 2 to 10 workers.

Workers are simulated in-process (see :mod:`repro.distributed`), so the
reported runtimes are the simulated parallel makespan (the runner exposes
them as the ``sim_runtime_s`` / ``sequential_s`` / ``speedup`` metrics of
each cell); the sequential runtime is included so speedups can be derived.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from repro.experiments.harness import ExperimentResult, default_error_rates
from repro.experiments.spec import (
    CleanerSpec,
    ExperimentRunner,
    RunArtifact,
    load_spec,
)


def distributed_cleaner(workers: int, label: Optional[str] = None) -> CleanerSpec:
    """MLNClean on the distributed backend with ``workers`` workers."""
    return CleanerSpec(
        cleaner="mlnclean",
        label=label,
        options={"backend": "distributed", "workers": int(workers)},
    )


def render_fig15(artifact: RunArtifact) -> ExperimentResult:
    """Project a fig15-shaped artifact onto the figure's rows."""
    workers = artifact.cells[0].metrics["workers"] if artifact.cells else 0
    result = ExperimentResult(
        experiment="fig15",
        description=f"distributed MLNClean ({workers} workers) vs error percentage",
    )
    for cell in artifact.cells:
        result.add(
            {
                "dataset": cell.coords["workload"],
                "error_rate": cell.coords["error_rate"],
                "workers": cell.metrics["workers"],
                "f1": cell.metrics["f1"],
                "runtime_s": cell.metrics["sim_runtime_s"],
                "sequential_s": cell.metrics["sequential_s"],
                "speedup": cell.metrics["speedup"],
            }
        )
    return result


def fig15_distributed(
    datasets: Sequence[str] = ("hai", "tpch"),
    error_rates: Optional[Sequence[float]] = None,
    workers: int = 4,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Distributed F1 and runtime vs error percentage (Figure 15)."""
    rates = error_rates if error_rates is not None else default_error_rates()
    spec = replace(
        load_spec("fig15"),
        workloads=list(datasets),
        error_rates=list(rates),
        cleaners=[distributed_cleaner(workers)],
        tuples=tuples,
        seed=seed,
    )
    return render_fig15(ExperimentRunner(spec).run())


def render_table06(artifact: RunArtifact) -> ExperimentResult:
    """Project a table06-shaped artifact onto the table's rows."""
    result = ExperimentResult(
        experiment="table06",
        description="distributed MLNClean runtime vs number of workers",
    )
    baseline_runtime: Optional[float] = None
    for cell in artifact.cells:
        runtime = cell.metrics["sim_runtime_s"]
        if baseline_runtime is None:
            baseline_runtime = runtime
        result.add(
            {
                "dataset": cell.coords["workload"],
                "workers": cell.metrics["workers"],
                "runtime_s": runtime,
                "sequential_s": cell.metrics["sequential_s"],
                "f1": cell.metrics["f1"],
                "speedup_vs_first": round(
                    baseline_runtime / runtime if runtime else 1.0, 3
                ),
            }
        )
    return result


def table06_worker_scaling(
    dataset: str = "tpch",
    worker_counts: Sequence[int] = (2, 4, 6, 8, 10),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Distributed runtime vs number of workers (Table 6)."""
    spec = replace(
        load_spec("table06"),
        workloads=[dataset],
        error_rates=[error_rate],
        cleaners=[distributed_cleaner(workers) for workers in worker_counts],
        tuples=tuples,
        seed=seed,
    )
    return render_table06(ExperimentRunner(spec).run())
