"""Figures 6 and 7: MLNClean vs HoloClean.

* **Figure 6** varies the error percentage from 5 % to 30 % on CAR and HAI and
  reports F1 (panels a/b) and runtime (panels c/d) for both systems.
* **Figure 7** fixes the total error rate at 5 % and varies the error type
  ratio ``Rret`` — the fraction of replacement errors — from 0 (all typos) to
  100 % (all replacements).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from repro.experiments.harness import (
    ExperimentResult,
    default_error_rates,
    prepare_instance,
    run_holoclean,
    run_mlnclean,
)


def fig06_error_percentage(
    datasets: Sequence[str] = ("car", "hai"),
    error_rates: Optional[Sequence[float]] = None,
    tuples: Optional[int] = None,
    seed: int = 7,
    include_holoclean: bool = True,
) -> ExperimentResult:
    """F1 and runtime vs error percentage for MLNClean and HoloClean."""
    rates = error_rates if error_rates is not None else default_error_rates()
    result = ExperimentResult(
        experiment="fig06",
        description="F1 / runtime vs error percentage (MLNClean vs HoloClean)",
    )
    for dataset in datasets:
        for rate in rates:
            instance = prepare_instance(
                dataset, tuples=tuples, error_rate=rate, seed=seed
            )
            runs = [run_mlnclean(instance)]
            if include_holoclean:
                runs.append(run_holoclean(instance))
            for run in runs:
                row = run.as_row()
                row["error_rate"] = rate
                result.add(row)
    return result


def fig07_error_type_ratio(
    datasets: Sequence[str] = ("car", "hai"),
    ratios: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
    include_holoclean: bool = True,
) -> ExperimentResult:
    """F1 vs the proportion of replacement errors (Rret) at a fixed 5 % rate."""
    result = ExperimentResult(
        experiment="fig07",
        description="F1 vs error type ratio Rret (MLNClean vs HoloClean)",
    )
    for dataset in datasets:
        for ratio in ratios:
            instance = prepare_instance(
                dataset,
                tuples=tuples,
                error_rate=error_rate,
                replacement_ratio=ratio,
                seed=seed,
            )
            runs = [run_mlnclean(instance)]
            if include_holoclean:
                runs.append(run_holoclean(instance))
            for run in runs:
                row = run.as_row()
                row["replacement_ratio"] = ratio
                result.add(row)
    return result
