"""Figures 6 and 7: MLNClean vs HoloClean, as checked-in specs + renderers.

* **Figure 6** varies the error percentage from 5 % to 30 % on CAR and HAI and
  reports F1 (panels a/b) and runtime (panels c/d) for both systems.
* **Figure 7** fixes the total error rate at 5 % and varies the error type
  ratio ``Rret`` — the fraction of replacement errors — from 0 (all typos) to
  100 % (all replacements).

The grids live in ``specs/fig06.json`` and ``specs/fig07.json``; the
functions here override the checked-in spec with any keyword arguments, run
it through the :class:`~repro.experiments.spec.ExperimentRunner`, and render
the resulting :class:`~repro.experiments.spec.RunArtifact` into the familiar
:class:`~repro.experiments.harness.ExperimentResult` rows.  Rendering is a
pure projection of the artifact, so a deserialized artifact re-renders the
identical figure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from repro.experiments.harness import ExperimentResult, default_error_rates
from repro.experiments.spec import ExperimentRunner, RunArtifact, load_spec


def render_fig06(artifact: RunArtifact) -> ExperimentResult:
    """Project a fig06-shaped artifact onto the figure's rows."""
    result = ExperimentResult(
        experiment="fig06",
        description="F1 / runtime vs error percentage (MLNClean vs HoloClean)",
    )
    for cell in artifact.cells:
        row = {"dataset": cell.coords["workload"], **cell.metrics}
        row["error_rate"] = cell.coords["error_rate"]
        result.add(row)
    return result


def fig06_error_percentage(
    datasets: Sequence[str] = ("car", "hai"),
    error_rates: Optional[Sequence[float]] = None,
    tuples: Optional[int] = None,
    seed: int = 7,
    include_holoclean: bool = True,
) -> ExperimentResult:
    """F1 and runtime vs error percentage for MLNClean and HoloClean."""
    rates = error_rates if error_rates is not None else default_error_rates()
    spec = replace(
        load_spec("fig06"),
        workloads=list(datasets),
        error_rates=list(rates),
        tuples=tuples,
        seed=seed,
    )
    if not include_holoclean:
        spec = replace(
            spec,
            cleaners=[c for c in spec.cleaners if c.cleaner == "mlnclean"],
        )
    return render_fig06(ExperimentRunner(spec).run())


def render_fig07(artifact: RunArtifact) -> ExperimentResult:
    """Project a fig07-shaped artifact onto the figure's rows."""
    result = ExperimentResult(
        experiment="fig07",
        description="F1 vs error type ratio Rret (MLNClean vs HoloClean)",
    )
    for cell in artifact.cells:
        row = {"dataset": cell.coords["workload"], **cell.metrics}
        row["replacement_ratio"] = cell.coords["replacement_ratio"]
        result.add(row)
    return result


def fig07_error_type_ratio(
    datasets: Sequence[str] = ("car", "hai"),
    ratios: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    error_rate: float = 0.05,
    tuples: Optional[int] = None,
    seed: int = 7,
    include_holoclean: bool = True,
) -> ExperimentResult:
    """F1 vs the proportion of replacement errors (Rret) at a fixed 5 % rate."""
    spec = replace(
        load_spec("fig07"),
        workloads=list(datasets),
        error_rates=[error_rate],
        replacement_ratios=list(ratios),
        tuples=tuples,
        seed=seed,
    )
    if not include_holoclean:
        spec = replace(
            spec,
            cleaners=[c for c in spec.cleaners if c.cleaner == "mlnclean"],
        )
    return render_fig07(ExperimentRunner(spec).run())
