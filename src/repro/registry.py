"""The shared name → factory registry behind every pluggable extension point.

Workloads, pipeline stages, and execution backends all follow the same
registration idiom: case-insensitive names, idempotent re-registration of
the same factory, a loud error when a name is rebound to a *different*
factory, and a lookup error that lists what is available.  This class is
that idiom, written once; :mod:`repro.workloads.registry`,
:mod:`repro.core.stages` and :mod:`repro.session.backends` are thin
domain-specific wrappers over it.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Generic, Optional, TypeVar

F = TypeVar("F")


def unknown_name(kind: str, name: str, available: Sequence[str]) -> str:
    """The shared "unknown name" error message: always lists what exists.

    Every lookup error across the registries (workloads, stages, backends,
    cleaners, experiments) goes through this helper so a typo'd name is
    answered with the registered names instead of a bare ``KeyError``.
    """
    if available:
        listing = ", ".join(repr(n) for n in available)
    else:
        listing = "none registered"
    return f"unknown {kind} {name!r}; registered {kind}s: {listing}"


class Registry(Generic[F]):
    """A case-insensitive name → factory mapping with safe registration."""

    def __init__(self, kind: str):
        #: what the registry holds ("workload", "stage", "backend", ...);
        #: used in error messages
        self.kind = kind
        self._entries: dict[str, F] = {}

    def register(self, name: str, factory: F) -> None:
        """Bind ``name`` to ``factory``.

        Re-registering the same factory is a no-op (modules may register on
        import safely); rebinding a name to a different factory is an error —
        aliases of one factory remain allowed.
        """
        key = name.lower()
        existing = self._entries.get(key)
        if existing is not None and existing is not factory:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[key] = factory

    def names(self) -> list[str]:
        """All registered names, in registration order."""
        return list(self._entries)

    def lookup(self, name: str) -> Optional[F]:
        """The factory bound to ``name``, or ``None`` when unregistered."""
        return self._entries.get(name.lower())

    def get(self, name: str) -> F:
        """The factory bound to ``name``; raises ``KeyError`` when unknown."""
        factory = self.lookup(name)
        if factory is None:
            raise KeyError(unknown_name(self.kind, name, self.names()))
        return factory

    def items(self) -> list[tuple[str, F]]:
        """(name, factory) pairs, in registration order."""
        return list(self._entries.items())
