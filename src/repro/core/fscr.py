"""FSCR — fusion-score based conflict resolution (Section 5.2, Algorithm 2).

Stage I leaves one clean γ per group but up to ``|B|`` *data versions* per
tuple — one from every block — and those versions can disagree on shared
attributes (tuple t3 of the running example keeps ``CT = DOTHAN`` in block B1
and ``CT = BOAZ`` in block B3).  FSCR fuses the versions of each tuple into a
single assignment, preferring the fusion with the highest *fusion score*

    f-score(t) = w(γ¹) × w(γ²) × ... × w(γᵐ)

(the product of the fused γ weights, Eq. 5).  When two versions conflict, the
conflicting version can be swapped for the highest-weight γ of its block that
does not conflict with what has been fused so far; if no such γ exists the
fusion attempt fails (f-score 0), matching Algorithm 2.

Because the fusion result depends on the merge order, the search tries every
order when the number of versions is small (``fscr_exhaustive_limit``) and
otherwise tries each version as the starting point followed by the remaining
versions in decreasing weight order — the factorial search of the paper,
bounded for large rule sets.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import MLNCleanConfig
from repro.core.index import Block, DataPiece
from repro.dataset.table import Cell, Table
from repro.metrics.component import StageCounts
from repro.perf.engine import DistanceEngine

CleanLookup = Callable[[int], dict[str, str]]

#: learned weights are capped here before exponentiation so the fusion-score
#: product cannot overflow even for tuples covered by many rules.
_WEIGHT_CAP = 30.0


def _weight_factor(weight: float) -> float:
    """The positive factor a γ contributes to the fusion score.

    The paper's fusion score multiplies γ weights (Eq. 5); because learned
    weights can be negative the product is taken over ``exp(w)`` instead —
    ``Pr(γ) ∝ exp(w)`` by Eq. 2, and the exponential preserves the weight
    ordering while keeping every factor positive.
    """
    return math.exp(min(weight, _WEIGHT_CAP))


@dataclass
class TupleFusion:
    """The fusion chosen for one tuple."""

    tid: int
    assignment: dict[str, str]
    f_score: float
    conflicted_attributes: set[str] = field(default_factory=set)
    substitutions: int = 0


@dataclass
class FSCROutcome:
    """Result of running FSCR over the whole table."""

    repaired: Table
    fusions: dict[int, TupleFusion] = field(default_factory=dict)
    failed_tuples: list[int] = field(default_factory=list)
    counts: StageCounts = field(default_factory=StageCounts)
    #: tuples whose fusion was served from the per-resolve signature memo
    #: (tuples with identical data versions and identical current values
    #: fuse identically, so the order search runs once per signature)
    memo_hits: int = 0


class FusionScoreResolver:
    """Derives the unified clean table from the per-block data versions."""

    def __init__(
        self,
        config: Optional[MLNCleanConfig] = None,
        engine: Optional[DistanceEngine] = None,
    ):
        self.config = config or MLNCleanConfig()
        #: shared distance engine of the run; FSCR computes no distances, but
        #: interning fusion-signature strings in the engine's pool keeps the
        #: memo keys below cheap to hash and equal-by-identity across the
        #: many tuples that share the same data versions
        self.engine: Optional[DistanceEngine] = engine

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def resolve(
        self,
        dirty: Table,
        blocks: list[Block],
        clean_lookup: Optional[CleanLookup] = None,
        dirty_cells: Optional[set[Cell]] = None,
    ) -> FSCROutcome:
        """Fuse the data versions of every tuple and apply them to a copy.

        ``clean_lookup`` and ``dirty_cells`` (the injected cells) enable the
        Precision-F / Recall-F instrumentation.
        """
        repaired = dirty.copy(name=f"{dirty.name}-repaired")
        outcome = FSCROutcome(repaired=repaired)
        tid_versions = self._versions_by_tid(blocks, set(dirty.tids))
        block_candidates = self._candidates_by_block(blocks)

        # Fusion depends only on the tuple's data versions (γ values and
        # weights per block, in block order) and its current row values — not
        # on the tuple id.  Duplicate entities share both, so the order
        # search runs once per distinct signature and its outcome is replayed
        # for every other tuple carrying it.
        memo: dict[object, Optional[tuple[dict[str, str], float, frozenset, int]]] = {}
        for tid in dirty.tids:
            versions = tid_versions.get(tid, [])
            if not versions:
                continue
            current_values = dirty.row(tid).as_dict()
            signature = self._fusion_signature(versions, current_values)
            if signature in memo:
                outcome.memo_hits += 1
                cached = memo[signature]
            else:
                cached = self._fuse_signature(
                    versions, block_candidates, current_values
                )
                memo[signature] = cached
            if cached is None:
                outcome.failed_tuples.append(tid)
                continue
            assignment, f_score, conflicted, substitutions = cached
            fusion = TupleFusion(
                tid=tid,
                assignment=dict(assignment),
                f_score=f_score,
                conflicted_attributes=set(conflicted),
                substitutions=substitutions,
            )
            outcome.fusions[tid] = fusion
            for attribute, value in fusion.assignment.items():
                repaired.set_value(tid, attribute, value)

        if clean_lookup is not None and dirty_cells is not None:
            self._instrument(outcome, dirty, repaired, clean_lookup, dirty_cells)
        return outcome

    def _fusion_signature(
        self,
        versions: list[tuple[Block, DataPiece]],
        current_values: dict[str, str],
    ) -> tuple:
        """A hashable identity of everything a fusion decision depends on."""
        values = tuple(current_values.values())
        if self.engine is not None:
            # One memoized tuple-intern probe instead of re-interning every
            # value on every signature (the tuples recur per micro-batch).
            values = self.engine.intern_values(values)
        return (
            tuple(
                (block.name, piece.values, piece.weight)
                for block, piece in versions
            ),
            values,
        )

    # ------------------------------------------------------------------
    # fusion search
    # ------------------------------------------------------------------
    def _fuse_signature(
        self,
        versions: list[tuple[Block, DataPiece]],
        block_candidates: dict[str, list[DataPiece]],
        current_values: dict[str, str],
    ) -> Optional[tuple[dict[str, str], float, frozenset, int]]:
        """The best fusion of one version signature (Algorithm 2).

        Returns ``(assignment, f_score, conflicted_attributes,
        substitutions)`` — everything a :class:`TupleFusion` needs except the
        tuple id — or ``None`` when every merge order fails.
        """
        conflicted_attributes: set[str] = set()
        best: Optional[tuple[dict[str, str], float, int]] = None
        for order in self._merge_orders(versions):
            attempt = self._try_order(
                order, block_candidates, conflicted_attributes, current_values
            )
            if attempt is None:
                continue
            if best is None or attempt[1] > best[1]:
                best = attempt
        if best is None:
            return None
        assignment, f_score, substitutions = best
        return assignment, f_score, frozenset(conflicted_attributes), substitutions

    def _merge_orders(
        self, versions: list[tuple[Block, DataPiece]]
    ) -> list[list[tuple[Block, DataPiece]]]:
        """The fusion orders to try.

        All permutations up to ``fscr_exhaustive_limit`` versions; otherwise
        each version leads once, followed by the rest in decreasing weight
        order (a greedy approximation of the factorial search).
        """
        if len(versions) <= self.config.fscr_exhaustive_limit:
            return [list(order) for order in itertools.permutations(versions)]
        orders: list[list[tuple[Block, DataPiece]]] = []
        for index, leader in enumerate(versions):
            rest = versions[:index] + versions[index + 1 :]
            rest.sort(key=lambda item: item[1].weight, reverse=True)
            orders.append([leader, *rest])
        return orders

    def _try_order(
        self,
        order: list[tuple[Block, DataPiece]],
        block_candidates: dict[str, list[DataPiece]],
        conflicted_attributes: set[str],
        current_values: dict[str, str],
    ) -> Optional[tuple[dict[str, str], float, int]]:
        """Fuse the versions in one specific order; ``None`` when it fails."""
        assignment: dict[str, str] = {}
        f_score = 1.0
        substitutions = 0
        for block, piece in order:
            candidate = piece
            conflicts = self._conflicts(assignment, candidate.as_assignment())
            if conflicts:
                conflicted_attributes.update(conflicts)
                candidate = self._find_substitute(
                    assignment, block_candidates[block.name]
                )
                if candidate is None:
                    return None
                substitutions += 1
            assignment.update(
                {
                    attribute: value
                    for attribute, value in candidate.as_assignment().items()
                    if attribute not in assignment
                }
            )
            f_score *= _weight_factor(candidate.weight)
        # Minimality factor: fusions that rewrite fewer of the tuple's values
        # are preferred when the weight products are comparable (the paper's
        # cleaning criteria combine statistical evidence with the principle of
        # minimality; see DESIGN.md for the rationale of this extension).
        if self.config.fscr_minimality_bias > 0.0:
            changes = sum(
                1
                for attribute, value in assignment.items()
                if current_values.get(attribute) != value
            )
            f_score *= math.exp(-self.config.fscr_minimality_bias * changes)
        return assignment, f_score, substitutions

    @staticmethod
    def _conflicts(
        assignment: dict[str, str], candidate: dict[str, str]
    ) -> list[str]:
        """Shared attributes on which the fusion and the candidate disagree."""
        return [
            attribute
            for attribute, value in candidate.items()
            if attribute in assignment and assignment[attribute] != value
        ]

    def _find_substitute(
        self, assignment: dict[str, str], candidates: list[DataPiece]
    ) -> Optional[DataPiece]:
        """The highest-weight γ of the block that agrees with the fusion."""
        for candidate in candidates:
            if not self._conflicts(assignment, candidate.as_assignment()):
                return candidate
        return None

    # ------------------------------------------------------------------
    # precomputed lookups
    # ------------------------------------------------------------------
    @staticmethod
    def _versions_by_tid(
        blocks: list[Block], tids: Optional[set[int]] = None
    ) -> dict[int, list[tuple[Block, DataPiece]]]:
        """For each tuple, its post-Stage-I γ in every block that covers it.

        ``tids`` restricts the map to the tuples being resolved — the
        streaming engine fuses small affected subsets against blocks that
        index the whole retained table, so building versions for every
        indexed tuple would scale with table size instead of subset size.
        """
        versions: dict[int, list[tuple[Block, DataPiece]]] = {}
        for block in blocks:
            for group in block.group_list:
                for piece in group.gammas:
                    for tid in piece.tids:
                        if tids is None or tid in tids:
                            versions.setdefault(tid, []).append((block, piece))
        return versions

    @staticmethod
    def _candidates_by_block(blocks: list[Block]) -> dict[str, list[DataPiece]]:
        """Per block (by rule name), all post-Stage-I γs sorted by weight.

        Several :class:`Block` objects can share a rule name when the caller
        is the distributed driver (one block per rule *per partition*); their
        candidate pools are merged so the substitution search sees the global
        pool, as the paper's gather step intends.
        """
        candidates: dict[str, list[DataPiece]] = {}
        for block in blocks:
            candidates.setdefault(block.name, []).extend(block.pieces)
        for pieces in candidates.values():
            pieces.sort(key=lambda piece: piece.weight, reverse=True)
        return candidates

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def _instrument(
        self,
        outcome: FSCROutcome,
        dirty: Table,
        repaired: Table,
        clean_lookup: CleanLookup,
        dirty_cells: set[Cell],
    ) -> None:
        """Fill the Precision-F / Recall-F counters (Section 7.3)."""
        counts = outcome.counts
        for cell in dirty_cells:
            if not repaired.has_tid(cell.tid):
                continue
            counts.total_erroneous_values += 1
            clean_value = clean_lookup(cell.tid)[cell.attribute]
            repaired_value = repaired.value(cell.tid, cell.attribute)
            is_correct = repaired_value == clean_value
            if is_correct:
                counts.fscr_correct_values += 1
            fusion = outcome.fusions.get(cell.tid)
            involved_in_conflict = (
                fusion is not None and cell.attribute in fusion.conflicted_attributes
            )
            if involved_in_conflict:
                counts.conflict_erroneous_values += 1
                if is_correct:
                    counts.conflict_correct_values += 1
