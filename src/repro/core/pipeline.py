"""The MLNClean pipeline (Algorithm 1 of the paper).

::

    dirty table + rules
        │  pre-processing: MLN index construction
        ▼
    blocks (one per rule) ──► Stage I per block: AGP, then RSC
        │                     (one clean data version per block)
        ▼
    Stage II: FSCR across the data versions, duplicate elimination
        │
        ▼
    clean table (+ report)

The pipeline can run *instrumented*: when the caller supplies the ground
truth of the injected errors, the per-stage component metrics (Figures 8-14)
and the overall repair accuracy (Eq. 7) are computed alongside the cleaning
itself.  Instrumentation never influences any cleaning decision — the ground
truth is only read by the metric counters.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from repro.constraints.rules import Rule
from repro.core.agp import AbnormalGroupProcessor
from repro.core.config import MLNCleanConfig
from repro.core.dedup import remove_duplicates
from repro.core.fscr import FusionScoreResolver
from repro.core.index import MLNIndex
from repro.core.report import CleaningReport
from repro.core.rsc import ReliabilityScoreCleaner
from repro.dataset.table import Table
from repro.errors.groundtruth import GroundTruth
from repro.metrics.accuracy import evaluate_repair
from repro.metrics.timing import TimingBreakdown


class MLNClean:
    """The hybrid data cleaning framework of the paper.

    Typical use::

        cleaner = MLNClean(MLNCleanConfig(abnormal_threshold=1))
        report = cleaner.clean(dirty_table, rules)
        clean_table = report.cleaned
    """

    def __init__(self, config: Optional[MLNCleanConfig] = None):
        self.config = config or MLNCleanConfig()

    def clean(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        ground_truth: Optional[GroundTruth] = None,
    ) -> CleaningReport:
        """Run the full two-stage cleaning process on ``dirty``.

        ``ground_truth`` (the injected-error ledger) switches on the
        instrumentation: overall accuracy and per-component metrics are
        attached to the returned report.
        """
        if not rules:
            raise ValueError("MLNClean needs at least one integrity constraint")
        timings = TimingBreakdown()
        instrument = self.config.instrument and ground_truth is not None
        clean_lookup = None
        dirty_cells = None
        if instrument:
            clean_reference = ground_truth.clean_table(dirty)
            clean_lookup = lambda tid: clean_reference.row(tid).as_dict()  # noqa: E731
            dirty_cells = ground_truth.dirty_cells

        # Pre-processing: MLN index construction (lines 1-13 of Algorithm 1).
        with timings.time("index"):
            index = MLNIndex.build(dirty, rules)

        # Stage I: AGP then RSC per block (lines 14-17).
        agp = AbnormalGroupProcessor(self.config)
        rsc = ReliabilityScoreCleaner(self.config)
        with timings.time("agp"):
            agp_outcome = agp.process_index(index.block_list, clean_lookup)
        with timings.time("rsc"):
            rsc_outcome = rsc.clean_index(index.block_list, clean_lookup)

        # Stage II: FSCR across data versions (line 18), then deduplication.
        fscr = FusionScoreResolver(self.config)
        with timings.time("fscr"):
            fscr_outcome = fscr.resolve(
                dirty, index.block_list, clean_lookup, dirty_cells
            )
        repaired = fscr_outcome.repaired
        dedup_result = None
        cleaned = repaired
        if self.config.remove_duplicates:
            with timings.time("dedup"):
                dedup_result = remove_duplicates(repaired)
            cleaned = dedup_result.deduplicated

        accuracy = None
        if instrument:
            accuracy = evaluate_repair(dirty, repaired, ground_truth)

        return CleaningReport(
            dirty=dirty,
            repaired=repaired,
            cleaned=cleaned,
            timings=timings,
            agp=agp_outcome,
            rsc=rsc_outcome,
            fscr=fscr_outcome,
            dedup=dedup_result,
            accuracy=accuracy,
        )

    def clean_table(self, dirty: Table, rules: Sequence[Rule]) -> Table:
        """Convenience wrapper returning only the cleaned table."""
        return self.clean(dirty, rules).cleaned
