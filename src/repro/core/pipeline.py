"""The MLNClean pipeline (Algorithm 1 of the paper).

::

    dirty table + rules
        │  pre-processing: MLN index construction
        ▼
    blocks (one per rule) ──► Stage I per block: AGP, then RSC
        │                     (one clean data version per block)
        ▼
    Stage II: FSCR across the data versions, duplicate elimination
        │
        ▼
    clean table (+ report)

The stage sequence is pluggable: each step is a registered
:class:`~repro.core.stages.Stage` and the default order is
:data:`~repro.core.stages.DEFAULT_STAGES`.  A caller (usually a
:class:`~repro.session.CleaningSession`) may reorder, disable, or extend the
stages by passing an explicit stage-name sequence.

The pipeline can run *instrumented*: when the caller supplies the ground
truth of the injected errors, the per-stage component metrics (Figures 8-14)
and the overall repair accuracy (Eq. 7) are computed alongside the cleaning
itself.  Instrumentation never influences any cleaning decision — the ground
truth is only read by the metric counters.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from repro.constraints.rules import Rule
from repro.core.config import MLNCleanConfig
from repro.core.index import MLNIndex
from repro.core.report import CleaningReport
from repro.core.stages import StageContext, build_stages
from repro.dataset.table import Table
from repro.errors.groundtruth import GroundTruth
from repro.metrics.accuracy import evaluate_repair
from repro.metrics.timing import TimingBreakdown


class MLNClean:
    """The hybrid data cleaning framework of the paper.

    Typical use::

        cleaner = MLNClean(MLNCleanConfig(abnormal_threshold=1))
        report = cleaner.clean(dirty_table, rules)
        clean_table = report.cleaned

    ``stages`` overrides the Algorithm-1 stage order with an explicit
    sequence of registered stage names (see :mod:`repro.core.stages`);
    ``None`` keeps the paper's AGP → RSC → FSCR → dedup sequence, with the
    dedup stage honouring ``config.remove_duplicates``.
    """

    def __init__(
        self,
        config: Optional[MLNCleanConfig] = None,
        stages: Optional[Sequence[str]] = None,
    ):
        self.config = config or MLNCleanConfig()
        self.stages = list(stages) if stages is not None else None

    def clean(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        ground_truth: Optional[GroundTruth] = None,
    ) -> CleaningReport:
        """Run the full two-stage cleaning process on ``dirty``.

        ``ground_truth`` (the injected-error ledger) switches on the
        instrumentation: overall accuracy and per-component metrics are
        attached to the returned report.
        """
        if not rules:
            raise ValueError("MLNClean needs at least one integrity constraint")
        timings = TimingBreakdown()
        instrument = self.config.instrument and ground_truth is not None
        context = StageContext(dirty=dirty, rules=list(rules), config=self.config)
        if instrument:
            clean_reference = ground_truth.clean_table(dirty)

            def clean_lookup(tid: int) -> dict[str, str]:
                return clean_reference.row(tid).as_dict()

            context.clean_lookup = clean_lookup
            context.dirty_cells = ground_truth.dirty_cells

        # Pre-processing: MLN index construction (lines 1-13 of Algorithm 1).
        with timings.time("index"):
            index = MLNIndex.build(dirty, rules)
            context.blocks = index.block_list

        # The stage sequence (Stage I lines 14-17, Stage II line 18 + dedup).
        for stage in build_stages(self.stages, self.config):
            with timings.time(stage.name):
                stage.run(context)

        repaired = context.repaired if context.repaired is not None else dirty.copy(
            name=f"{dirty.name}-repaired"
        )
        cleaned = context.cleaned if context.cleaned is not None else repaired

        accuracy = None
        if instrument:
            accuracy = evaluate_repair(dirty, repaired, ground_truth)

        return CleaningReport(
            dirty=dirty,
            repaired=repaired,
            cleaned=cleaned,
            timings=timings,
            agp=context.outcomes.get("agp"),
            rsc=context.outcomes.get("rsc"),
            fscr=context.outcomes.get("fscr"),
            dedup=context.dedup,
            accuracy=accuracy,
            backend="batch",
        )

    def clean_table(self, dirty: Table, rules: Sequence[Rule]) -> Table:
        """Convenience wrapper returning only the cleaned table."""
        return self.clean(dirty, rules).cleaned
