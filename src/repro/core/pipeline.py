"""The MLNClean pipeline (Algorithm 1 of the paper).

::

    dirty table + rules
        │  pre-processing: MLN index construction
        ▼
    blocks (one per rule) ──► Stage I per block: AGP, then RSC
        │                     (one clean data version per block)
        ▼
    Stage II: FSCR across the data versions, duplicate elimination
        │
        ▼
    clean table (+ report)

The stage sequence is pluggable: each step is a registered
:class:`~repro.core.stages.Stage` and the default order is
:data:`~repro.core.stages.DEFAULT_STAGES`.  A caller (usually a
:class:`~repro.session.CleaningSession`) may reorder, disable, or extend the
stages by passing an explicit stage-name sequence.

The pipeline can run *instrumented*: when the caller supplies the ground
truth of the injected errors, the per-stage component metrics (Figures 8-14)
and the overall repair accuracy (Eq. 7) are computed alongside the cleaning
itself.  Instrumentation never influences any cleaning decision — the ground
truth is only read by the metric counters.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from repro.constraints.rules import Rule
from repro.core.config import MLNCleanConfig
from repro.core.index import MLNIndex
from repro.core.report import CleaningReport
from repro.core.stages import DEFAULT_STAGES, StageContext, build_stages
from repro.dataset.table import Table
from repro.detect.run import CleaningScope, run_detection
from repro.errors.groundtruth import GroundTruth
from repro.metrics.accuracy import evaluate_repair
from repro.metrics.timing import PerfDetails, TimingBreakdown
from repro.obs import ensure_tracer, span, stage_scope


class MLNClean:
    """The hybrid data cleaning framework of the paper.

    Typical use::

        cleaner = MLNClean(MLNCleanConfig(abnormal_threshold=1))
        report = cleaner.clean(dirty_table, rules)
        clean_table = report.cleaned

    ``stages`` overrides the Algorithm-1 stage order with an explicit
    sequence of registered stage names (see :mod:`repro.core.stages`);
    ``None`` keeps the paper's AGP → RSC → FSCR → dedup sequence, with the
    dedup stage honouring ``config.remove_duplicates``.

    ``parallelism=N`` (N > 1) cleans the independent Stage-I blocks in N
    worker processes and merges their outcomes deterministically — the
    cleaned table, F1 and stage outcomes are bit-identical to a serial run;
    only wall-clock changes.  Parallel Stage I requires the default stage
    order (custom sequences may interleave Stage-I stages with stages that
    observe cross-block state, so they stay serial).

    ``detectors`` is an optional error-detection stack (detector specs, see
    :mod:`repro.detect`) run before the index build.  The result scopes the
    run to the detected-dirty cells — Stage I only enumerates blocks
    containing detected cells, Stage II only re-fuses affected tuples —
    under the exact-or-prune contract: a detection covering every cell
    (e.g. the ``all-cells`` default detector) disables scoping, producing
    byte-identical output to a run without detectors.
    """

    def __init__(
        self,
        config: Optional[MLNCleanConfig] = None,
        stages: Optional[Sequence[str]] = None,
        parallelism: int = 1,
        detectors: Optional[Sequence] = None,
    ):
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if parallelism > 1 and stages is not None:
            raise ValueError(
                "parallel Stage I requires the default stage order; "
                "drop the custom stages or run with parallelism=1"
            )
        if parallelism > 1 and detectors is not None:
            raise ValueError(
                "dirty-cell-scoped cleaning is serial-only; "
                "drop the detectors or run with parallelism=1"
            )
        self.config = config or MLNCleanConfig()
        self.stages = list(stages) if stages is not None else None
        self.parallelism = parallelism
        self.detectors = list(detectors) if detectors is not None else None

    def clean(
        self,
        dirty: Table,
        rules: Sequence[Rule],
        ground_truth: Optional[GroundTruth] = None,
    ) -> CleaningReport:
        """Run the full two-stage cleaning process on ``dirty``.

        ``ground_truth`` (the injected-error ledger) switches on the
        instrumentation: overall accuracy and per-component metrics are
        attached to the returned report.
        """
        if not rules:
            raise ValueError("MLNClean needs at least one integrity constraint")
        timings = TimingBreakdown()
        instrument = self.config.instrument and ground_truth is not None
        context = StageContext(dirty=dirty, rules=list(rules), config=self.config)
        # One shared distance engine for the whole run: AGP, RSC, FSCR and
        # dedup all read/write the same cache, and its counters end up in the
        # report's PerfDetails.
        context.engine = self.config.engine()
        if instrument:
            clean_reference = ground_truth.clean_table(dirty)

            def clean_lookup(tid: int) -> dict[str, str]:
                return clean_reference.row(tid).as_dict()

            context.clean_lookup = clean_lookup
            context.dirty_cells = ground_truth.dirty_cells

        with ensure_tracer(self.config.trace), span(
            "pipeline.clean",
            backend="batch",
            tuples=len(dirty),
            rules=len(rules),
            parallelism=self.parallelism,
        ):
            # The optional detection phase (before the index: detectors read
            # only the table and the rules).  Exact-or-prune: a detection
            # covering the whole table builds no scope, so the run below is
            # byte-identical to one without detectors.
            if self.detectors is not None:
                context.detected = run_detection(
                    dirty,
                    rules,
                    self.detectors,
                    ground_truth=ground_truth,
                    backend="batch",
                    timings=timings,
                )
                if not context.detected.covers(dirty):
                    context.scope = CleaningScope(context.detected, dirty)

            # Pre-processing: MLN index construction (lines 1-13 of Alg. 1).
            with stage_scope(timings, "batch", "index") as index_span:
                index = MLNIndex.build(dirty, rules)
                context.blocks = index.block_list
                index_span.set(blocks=len(context.blocks))

            # Candidate-pruning support: per-block q-gram indexes for the
            # engine's batch API (skipped for metrics without a valid gram
            # bound, where batch queries scan plainly anyway).
            if context.engine.supports_qgram:
                with stage_scope(timings, "batch", "qgram-index") as qgram_span:
                    index.enable_qgram(context.engine.qgram_size)
                    qgram_span.set(
                        values=sum(
                            len(block.qgram_index or ())
                            for block in context.blocks
                        )
                    )

            # The stage sequence (Stage I lines 14-17, Stage II line 18 +
            # dedup).
            for stage in self._build_stage_sequence():
                with stage_scope(timings, "batch", stage.name):
                    stage.run(context)

        repaired = context.repaired if context.repaired is not None else dirty.copy(
            name=f"{dirty.name}-repaired"
        )
        cleaned = context.cleaned if context.cleaned is not None else repaired

        accuracy = None
        if instrument:
            accuracy = evaluate_repair(dirty, repaired, ground_truth)

        return CleaningReport(
            dirty=dirty,
            repaired=repaired,
            cleaned=cleaned,
            timings=timings,
            agp=context.outcomes.get("agp"),
            rsc=context.outcomes.get("rsc"),
            fscr=context.outcomes.get("fscr"),
            dedup=context.dedup,
            accuracy=accuracy,
            backend="batch",
            details=PerfDetails(
                timings=timings.as_dict(),
                distance=context.engine.stats.as_dict(),
                parallelism=self.parallelism,
                detection=self._detection_details(context),
            ),
        )

    @staticmethod
    def _detection_details(context: StageContext) -> Optional[dict]:
        """The masked detection drill-down of the run (``None`` without one)."""
        if context.detected is None:
            return None
        payload = context.detected.to_json_dict()
        payload["scoped"] = context.scope is not None
        if context.scope is not None:
            payload["scoped_blocks"] = context.scope.selected_block_names()
            payload["affected_tuples"] = len(context.scope.tids)
        return payload

    def _build_stage_sequence(self):
        """The stage instances of this run.

        Serial runs use the registered stages verbatim; ``parallelism>1``
        fuses the leading ``agp`` + ``rsc`` pair into one process-parallel
        Stage-I step and keeps Stage II (fscr, dedup) serial.
        """
        if self.parallelism <= 1:
            return build_stages(self.stages, self.config)
        from repro.perf.parallel import ParallelStageOne

        stage_two = [
            name
            for name in DEFAULT_STAGES
            if name not in ("agp", "rsc")
            and (name != "dedup" or self.config.remove_duplicates)
        ]
        return [
            ParallelStageOne(self.config, self.parallelism),
            *build_stages(stage_two, self.config),
        ]

    def clean_table(self, dirty: Table, rules: Sequence[Rule]) -> Table:
        """Convenience wrapper returning only the cleaned table."""
        return self.clean(dirty, rules).cleaned
