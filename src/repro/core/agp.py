"""AGP — abnormal group processing (Section 5.1.1 of the paper).

A tuple with an error in the *reason part* of a rule lands in the wrong group
of that rule's block (e.g. the typo ``DOTH`` forms the spurious group G12 in
Figure 2).  AGP detects such groups with a simple support threshold — a group
related to at most τ tuples is abnormal — and merges every abnormal group
into its nearest *normal* group of the same block, where the group distance
is the distance between the groups' representative γ*s.

The complexity is ``O(|B| × |Ga| × |G − Ga|)`` per the paper.  AGP is also the
stage with "the biggest propagated impact to the final cleaning accuracy",
which is why the experiments of Figures 8 and 12 track its precision/recall
explicitly; the optional instrumentation hooks here feed those metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import MLNCleanConfig
from repro.core.index import Block
from repro.metrics.component import StageCounts
from repro.perf.engine import DistanceEngine

#: maps a tuple id to its clean values (attribute → value); only available in
#: instrumented runs where a ground truth exists
CleanLookup = Callable[[int], dict[str, str]]


@dataclass
class GroupMerge:
    """One AGP merge decision: which group was folded into which."""

    block_name: str
    abnormal_key: tuple[str, ...]
    target_key: tuple[str, ...]
    gamma_count: int
    tuple_count: int

    def as_json_dict(self) -> dict:
        return {
            "block": self.block_name,
            "abnormal": list(self.abnormal_key),
            "target": list(self.target_key),
            "gammas": self.gamma_count,
            "tuples": self.tuple_count,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "GroupMerge":
        return cls(
            block_name=str(data["block"]),
            abnormal_key=tuple(str(v) for v in data["abnormal"]),
            target_key=tuple(str(v) for v in data["target"]),
            gamma_count=int(data["gammas"]),
            tuple_count=int(data["tuples"]),
        )


@dataclass
class AGPOutcome:
    """Result of running AGP on one block (or on a whole index)."""

    merges: list[GroupMerge] = field(default_factory=list)
    detected_abnormal_groups: int = 0
    detected_abnormal_gammas: int = 0
    skipped_without_target: int = 0
    counts: StageCounts = field(default_factory=StageCounts)

    def extend(self, other: "AGPOutcome") -> None:
        """Fold another outcome into this one (used across blocks)."""
        self.merges.extend(other.merges)
        self.detected_abnormal_groups += other.detected_abnormal_groups
        self.detected_abnormal_gammas += other.detected_abnormal_gammas
        self.skipped_without_target += other.skipped_without_target
        self.counts = self.counts.merge(other.counts)

    def as_json_dict(self) -> dict:
        """JSON-safe round-trip payload (cluster snapshots persist these)."""
        return {
            "merges": [merge.as_json_dict() for merge in self.merges],
            "detected_abnormal_groups": self.detected_abnormal_groups,
            "detected_abnormal_gammas": self.detected_abnormal_gammas,
            "skipped_without_target": self.skipped_without_target,
            "counts": self.counts.as_dict(),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "AGPOutcome":
        return cls(
            merges=[GroupMerge.from_json_dict(m) for m in data["merges"]],
            detected_abnormal_groups=int(data["detected_abnormal_groups"]),
            detected_abnormal_gammas=int(data["detected_abnormal_gammas"]),
            skipped_without_target=int(data["skipped_without_target"]),
            counts=StageCounts.from_dict(data["counts"]),
        )


class AbnormalGroupProcessor:
    """Detects abnormal groups and merges them into their nearest normal group."""

    def __init__(
        self,
        config: Optional[MLNCleanConfig] = None,
        engine: Optional[DistanceEngine] = None,
    ):
        self.config = config or MLNCleanConfig()
        #: the shared distance engine; the pipeline overrides this with the
        #: run-wide instance so AGP, RSC and the other stages share one cache
        self.engine: DistanceEngine = (
            engine if engine is not None else self.config.engine()
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def process_block(
        self,
        block: Block,
        clean_lookup: Optional[CleanLookup] = None,
        group_filter: Optional[Callable] = None,
    ) -> AGPOutcome:
        """Run AGP on one block, mutating it in place.

        ``clean_lookup`` enables the Precision-A / Recall-A instrumentation:
        it must return the ground-truth clean values of a tuple.

        ``group_filter`` restricts the merge candidates to the abnormal
        groups it accepts (dirty-cell-scoped cleaning): merging an abnormal
        group rewrites the reason-part values of its tuples, so a scoped run
        only merges groups holding at least one detected-dirty tuple and
        leaves the rest untouched.
        """
        outcome = AGPOutcome()
        threshold = self.config.abnormal_threshold
        abnormal_keys = [
            key
            for key, group in block.groups.items()
            if group.tuple_count <= threshold
            and (group_filter is None or group_filter(group))
        ]
        abnormal_set = set(abnormal_keys)
        # Sorted once per block (hoisted out of the per-abnormal-group loop):
        # the best-so-far search below is order-independent in its *result*
        # (strict improvement plus a smallest-key tie-break), but a canonical
        # order keeps its distance-call counts reproducible across processes
        # regardless of set-iteration (hash) order.
        normal_keys = sorted(key for key in block.groups if key not in abnormal_set)

        if clean_lookup is not None:
            outcome.counts.real_abnormal_groups = self._count_real_abnormal(
                block, clean_lookup
            )

        for key in abnormal_keys:
            group = block.groups[key]
            outcome.detected_abnormal_groups += 1
            outcome.detected_abnormal_gammas += group.size
            outcome.counts.detected_abnormal_groups += 1
            outcome.counts.detected_abnormal_gammas += group.size
            target_key = self._nearest_normal_group(block, key, normal_keys)
            if target_key is None:
                # No normal group exists in the block (e.g. every group is
                # tiny); leave the group untouched rather than merging
                # abnormal groups into each other.
                outcome.skipped_without_target += 1
                continue
            merge = self._merge(block, key, target_key)
            outcome.merges.append(merge)
            if clean_lookup is not None and self._merge_is_correct(
                block, merge, clean_lookup
            ):
                outcome.counts.correctly_merged_groups += 1
        return outcome

    def process_index(
        self,
        blocks: list[Block],
        clean_lookup: Optional[CleanLookup] = None,
        group_filter: Optional[Callable] = None,
    ) -> AGPOutcome:
        """Run AGP on every block of an index."""
        outcome = AGPOutcome()
        for block in blocks:
            outcome.extend(self.process_block(block, clean_lookup, group_filter))
        return outcome

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _nearest_normal_group(
        self,
        block: Block,
        abnormal_key: tuple[str, ...],
        normal_keys: list[tuple[str, ...]],
    ) -> Optional[tuple[str, ...]]:
        """The normal group whose representative γ* is closest to ours.

        One batch :meth:`~repro.perf.DistanceEngine.nearest` query over the
        live normal groups' representatives: the engine owns the visit order
        (q-gram lower bounds ascending, fed by the block's inverted index),
        the best-so-far cutoff and the prune decisions.  ``normal_keys`` is
        sorted, so the engine's smallest-position tie-break is exactly the
        smallest-key tie-break of the scalar loop it replaces — the selected
        group is identical to the one an exhaustive scan picks.
        """
        if not normal_keys:
            return None
        abnormal_repr = block.groups[abnormal_key].representative()
        live_keys: list[tuple[str, ...]] = []
        candidates: list[tuple[str, ...]] = []
        for key in normal_keys:
            group = block.groups.get(key)
            if group is None:
                continue
            live_keys.append(key)
            candidates.append(group.representative().values)
        if not candidates:
            return None
        best_position, _ = self.engine.nearest(
            abnormal_repr.values, candidates, index=block.qgram_index
        )
        if best_position is None:
            return None
        return live_keys[best_position]

    def _merge(
        self, block: Block, abnormal_key: tuple[str, ...], target_key: tuple[str, ...]
    ) -> GroupMerge:
        """Fold the abnormal group's γs into the target group."""
        abnormal_group = block.remove_group(abnormal_key)
        target_group = block.groups[target_key]
        for piece in abnormal_group.gammas:
            target_group.add_piece(piece)
        return GroupMerge(
            block_name=block.name,
            abnormal_key=abnormal_key,
            target_key=target_key,
            gamma_count=abnormal_group.size,
            tuple_count=abnormal_group.tuple_count,
        )

    def _count_real_abnormal(self, block: Block, clean_lookup: CleanLookup) -> int:
        """Groups that exist only because of reason-part errors.

        A group is *really* abnormal when the clean reason values of every
        tuple it holds differ from the group key, i.e. the group would not
        exist in the clean data.
        """
        reason_attrs = block.rule.reason_attributes
        real = 0
        for key, group in block.groups.items():
            tids = group.tids
            if not tids:
                continue
            clean_keys = {
                tuple(clean_lookup(tid)[a] for a in reason_attrs) for tid in tids
            }
            if key not in clean_keys:
                real += 1
        return real

    def _merge_is_correct(
        self, block: Block, merge: GroupMerge, clean_lookup: CleanLookup
    ) -> bool:
        """Whether the abnormal group landed in the group it truly belongs to.

        The merge is correct when the target group's key matches the clean
        reason values of the majority of the merged tuples.
        """
        reason_attrs = block.rule.reason_attributes
        target_group = block.groups.get(merge.target_key)
        if target_group is None:
            return False
        merged_tids = [
            tid
            for piece in target_group.gammas
            for tid in piece.tids
            if tuple(piece.reason_values) == merge.abnormal_key
            or piece.key[0] == merge.abnormal_key
        ]
        if not merged_tids:
            # The abnormal γs were merged into an existing identical γ; fall
            # back to checking all target tuples whose dirty reason values
            # match the abnormal key.
            merged_tids = target_group.tids
        matches = 0
        for tid in merged_tids:
            clean_reason = tuple(clean_lookup(tid)[a] for a in reason_attrs)
            if clean_reason == merge.target_key:
                matches += 1
        return matches * 2 >= len(merged_tids) and bool(merged_tids)
