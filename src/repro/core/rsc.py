"""RSC — reliability-score based cleaning inside each group (Section 5.1.2).

After AGP every group of a block holds the γs that *should* agree on the
rule's result part.  When a group still contains several distinct γs, some of
them must be dirty.  RSC ranks the γs by the reliability score of
Definition 2,

    r-score(γ) = min_{γ* ∈ G∖{γ}} dist(γ, γ*) × w(γ)

where ``dist(γ, γ*) = n/Z · d(γ, γ*)`` combines the distance (the principle
of minimality: replacing a far-away, well-supported γ is expensive) with the
Markov weight ``w(γ)`` learned from the evidence (the statistical signal).
The γ with the highest score is declared clean and every other γ of the group
is overwritten with it, so each group ends with exactly one γ.

Weight learning is the expensive part of MLNClean (the paper attributes about
95 % of its runtime to it); it runs once per block before the per-group
cleaning, using the diagonal-Newton learner with the Eq.-4 prior.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import MLNCleanConfig
from repro.core.index import Block, DataPiece, Group
from repro.metrics.component import StageCounts
from repro.mln.weights import learn_group_weights
from repro.perf.engine import DistanceEngine

CleanLookup = Callable[[int], dict[str, str]]


@dataclass
class GammaRepair:
    """One RSC rewrite: a losing γ replaced by the group winner."""

    block_name: str
    group_key: tuple[str, ...]
    original_values: tuple[str, ...]
    repaired_values: tuple[str, ...]
    tids: list[int]

    def as_json_dict(self) -> dict:
        return {
            "block": self.block_name,
            "group": list(self.group_key),
            "original": list(self.original_values),
            "repaired": list(self.repaired_values),
            "tids": list(self.tids),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "GammaRepair":
        return cls(
            block_name=str(data["block"]),
            group_key=tuple(str(v) for v in data["group"]),
            original_values=tuple(str(v) for v in data["original"]),
            repaired_values=tuple(str(v) for v in data["repaired"]),
            tids=[int(tid) for tid in data["tids"]],
        )


@dataclass
class RSCOutcome:
    """Result of running RSC on one block (or a whole index)."""

    repairs: list[GammaRepair] = field(default_factory=list)
    cleaned_groups: int = 0
    skipped_groups: int = 0
    counts: StageCounts = field(default_factory=StageCounts)

    def extend(self, other: "RSCOutcome") -> None:
        self.repairs.extend(other.repairs)
        self.cleaned_groups += other.cleaned_groups
        self.skipped_groups += other.skipped_groups
        self.counts = self.counts.merge(other.counts)

    def as_json_dict(self) -> dict:
        """JSON-safe round-trip payload (cluster snapshots persist these)."""
        return {
            "repairs": [repair.as_json_dict() for repair in self.repairs],
            "cleaned_groups": self.cleaned_groups,
            "skipped_groups": self.skipped_groups,
            "counts": self.counts.as_dict(),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "RSCOutcome":
        return cls(
            repairs=[GammaRepair.from_json_dict(r) for r in data["repairs"]],
            cleaned_groups=int(data["cleaned_groups"]),
            skipped_groups=int(data["skipped_groups"]),
            counts=StageCounts.from_dict(data["counts"]),
        )


class ReliabilityScoreCleaner:
    """Learns block weights and resolves every group to a single γ."""

    def __init__(
        self,
        config: Optional[MLNCleanConfig] = None,
        engine: Optional[DistanceEngine] = None,
    ):
        self.config = config or MLNCleanConfig()
        #: the shared distance engine; persists across calls, so re-cleaning
        #: an unchanged block (streaming replay) re-reads every γ-pair
        #: distance from the cache instead of re-running the metric
        self.engine: DistanceEngine = (
            engine if engine is not None else self.config.engine()
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def learn_block_weights(self, block: Block) -> None:
        """Learn the Markov weight of every γ of the block (Eq. 3 / Eq. 4).

        Groups compete internally (softmax over the group's γs), and the
        Eq.-4 prior ``c(γ)/Σc(γ')`` anchors the solution, exactly as the
        Tuffy-style learner the paper uses.
        """
        pieces = block.pieces
        if not pieces:
            return
        total_support = sum(piece.support for piece in pieces)
        priors = {
            piece.key: (piece.support / total_support if total_support else 0.0)
            for piece in pieces
        }
        group_counts = {
            "|".join(group.key): {
                piece.key: piece.support for piece in group.gammas
            }
            for group in block.group_list
        }
        learned = learn_group_weights(group_counts, priors, self.config.weight_learning)
        for group in block.group_list:
            for piece in group.gammas:
                piece.weight = learned.get(piece.key, 0.0)

    def clean_block(
        self,
        block: Block,
        clean_lookup: Optional[CleanLookup] = None,
        relearn_weights: bool = True,
        group_filter: Optional[Callable[[Group], bool]] = None,
    ) -> RSCOutcome:
        """Learn weights, then resolve every group of the block to one γ.

        ``relearn_weights=False`` keeps the weights already attached to the
        block's γs — the distributed driver uses this after replacing the
        locally learned weights with the Eq.-6 global ones.

        ``group_filter`` restricts γ resolution to the groups it accepts
        (dirty-cell-scoped cleaning); weight learning stays block-global
        regardless — the Eq.-4 prior normalises over the whole block, so a
        filtered run still learns exactly the weights a full run would.
        """
        if relearn_weights:
            self.learn_block_weights(block)
        outcome = RSCOutcome()
        for group in block.group_list:
            if group.is_resolved():
                outcome.skipped_groups += 1
                continue
            if group_filter is not None and not group_filter(group):
                outcome.skipped_groups += 1
                continue
            outcome.extend(self._clean_group(block, group, clean_lookup))
            outcome.cleaned_groups += 1
        return outcome

    def clean_index(
        self,
        blocks: list[Block],
        clean_lookup: Optional[CleanLookup] = None,
        relearn_weights: bool = True,
        group_filter: Optional[Callable[[Group], bool]] = None,
    ) -> RSCOutcome:
        outcome = RSCOutcome()
        for block in blocks:
            outcome.extend(
                self.clean_block(block, clean_lookup, relearn_weights, group_filter)
            )
        return outcome

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def reliability_scores(self, group: Group) -> dict[DataPiece, float]:
        """The r-score of every γ of a multi-γ group (Definition 2).

        The probability factor of the definition is ``Pr(γ) ∝ exp(w(γ))``
        (Eq. 2 / Eq. 3); the exponential is normalised by the group's maximum
        weight so it stays in ``(0, 1]`` — this keeps the score positive (the
        distance factor would otherwise flip its meaning for γs whose learned
        weight is negative) while preserving the weight ordering the paper
        relies on.
        """
        gammas = group.gammas
        if len(gammas) < 2:
            return {piece: 1.0 for piece in gammas}
        # One batch pairwise() query answers every γ's min-distance: the
        # engine computes q-gram lower bounds once per unordered pair, visits
        # each γ's candidates bounds-ascending with the running min as the
        # cutoff, and serves the symmetric (i, j) / (j, i) revisit from the
        # pair cache.  The minima are exact (prunes only discard pairs whose
        # lower bound already exceeds the running min), so the scores are
        # identical to the exhaustive scan's.
        neighbors = self.engine.pairwise([piece.values for piece in gammas])
        raw: dict[DataPiece, float] = {
            piece: piece.support * neighbors[index][1]
            for index, piece in enumerate(gammas)
        }
        # Z normalises n·d into [0, 1] within the group.
        normaliser = max(raw.values()) or 1.0
        max_weight = max(piece.weight for piece in gammas)
        return {
            piece: (raw[piece] / normaliser) * math.exp(piece.weight - max_weight)
            for piece in gammas
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _clean_group(
        self,
        block: Block,
        group: Group,
        clean_lookup: Optional[CleanLookup],
    ) -> RSCOutcome:
        outcome = RSCOutcome()
        scores = self.reliability_scores(group)
        winner = max(
            group.gammas, key=lambda piece: (scores[piece], piece.support, piece.values)
        )
        attributes = block.attributes
        losers = [piece for piece in group.gammas if piece is not winner]

        if clean_lookup is not None:
            for piece in group.gammas:
                if self._gamma_is_erroneous(piece, attributes, clean_lookup):
                    outcome.counts.erroneous_gammas += 1

        for piece in losers:
            repair = GammaRepair(
                block_name=block.name,
                group_key=group.key,
                original_values=piece.values,
                repaired_values=winner.values,
                tids=list(piece.tids),
            )
            outcome.repairs.append(repair)
            if clean_lookup is not None:
                outcome.counts.repaired_gammas += 1
                if self._repair_is_correct(piece, winner, attributes, clean_lookup):
                    outcome.counts.correctly_repaired_gammas += 1
            winner.tids.extend(piece.tids)
            del group.pieces[piece.key]
        return outcome

    @staticmethod
    def _gamma_is_erroneous(
        piece: DataPiece, attributes: list[str], clean_lookup: CleanLookup
    ) -> bool:
        """Whether the γ's values disagree with the clean values of any tuple."""
        for tid in piece.tids:
            clean = clean_lookup(tid)
            if tuple(clean[a] for a in attributes) != piece.values:
                return True
        return False

    @staticmethod
    def _repair_is_correct(
        piece: DataPiece,
        winner: DataPiece,
        attributes: list[str],
        clean_lookup: CleanLookup,
    ) -> bool:
        """Whether replacing the γ with the winner restores its tuples.

        The repair is counted correct when the winner's values match the
        clean values of the majority of the rewritten tuples.
        """
        if not piece.tids:
            return False
        matches = sum(
            1
            for tid in piece.tids
            if tuple(clean_lookup(tid)[a] for a in attributes) == winner.values
        )
        return matches * 2 >= len(piece.tids)
