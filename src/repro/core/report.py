"""The cleaning report returned by the MLNClean pipeline.

One :class:`CleaningReport` bundles everything an experiment needs: the
repaired table (before and after duplicate elimination), wall-clock timings
per phase, and — when the run was instrumented with a ground truth — the
overall repair accuracy (Eq. 7) and the per-component accuracy of AGP, RSC
and FSCR (Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.agp import AGPOutcome
from repro.core.dedup import DeduplicationResult
from repro.core.fscr import FSCROutcome
from repro.core.rsc import RSCOutcome
from repro.dataset.table import Table
from repro.metrics.accuracy import RepairAccuracy
from repro.metrics.component import ComponentAccuracy, StageCounts
from repro.metrics.timing import TimingBreakdown


@dataclass
class CleaningReport:
    """Everything produced by one MLNClean run."""

    #: the input (dirty) table
    dirty: Table
    #: the repaired table with every tuple still present
    repaired: Table
    #: the repaired table after duplicate elimination (equals ``repaired``
    #: when deduplication is disabled)
    cleaned: Table
    #: wall-clock breakdown per pipeline phase
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    #: stage outcomes, for drill-down and for the component metrics
    agp: Optional[AGPOutcome] = None
    rsc: Optional[RSCOutcome] = None
    fscr: Optional[FSCROutcome] = None
    dedup: Optional[DeduplicationResult] = None
    #: overall repair accuracy (only in instrumented runs)
    accuracy: Optional[RepairAccuracy] = None
    #: name of the execution backend that produced the report
    #: ("batch", "distributed", "streaming", ...)
    backend: Optional[str] = None
    #: backend-specific drill-down (e.g. the full
    #: :class:`~repro.distributed.driver.DistributedReport` of a distributed
    #: run); ``None`` for the batch pipeline
    details: Optional[object] = None

    @property
    def runtime(self) -> float:
        """Total wall-clock time of the run in seconds."""
        return self.timings.total

    @property
    def component_accuracy(self) -> ComponentAccuracy:
        """AGP / RSC / FSCR accuracy assembled from the stage outcomes."""
        counts = StageCounts()
        if self.agp is not None:
            counts = counts.merge(self.agp.counts)
        if self.rsc is not None:
            counts = counts.merge(self.rsc.counts)
        if self.fscr is not None:
            counts = counts.merge(self.fscr.counts)
        return ComponentAccuracy(counts)

    @property
    def f1(self) -> float:
        """Overall F1 (0.0 when the run was not instrumented)."""
        return self.accuracy.f1 if self.accuracy is not None else 0.0

    def summary(self) -> dict[str, float]:
        """A flat dictionary of the headline numbers (for tables/benchmarks)."""
        summary: dict[str, float] = {
            "runtime_seconds": self.runtime,
            "tuples_in": float(len(self.dirty)),
            "tuples_out": float(len(self.cleaned)),
        }
        if self.accuracy is not None:
            summary.update(
                {
                    "precision": self.accuracy.precision,
                    "recall": self.accuracy.recall,
                    "f1": self.accuracy.f1,
                }
            )
            summary.update(self.component_accuracy.as_dict())
        return summary

    def describe(self) -> str:
        """A short human-readable report (used by the examples)."""
        lines = [
            f"tuples: {len(self.dirty)} in, {len(self.cleaned)} out"
            + (f" (backend: {self.backend})" if self.backend else ""),
            f"runtime: {self.runtime:.3f}s "
            f"({', '.join(f'{k}={v:.3f}s' for k, v in self.timings.phases.items())})",
        ]
        if self.accuracy is not None:
            lines.append(
                f"accuracy: precision={self.accuracy.precision:.3f} "
                f"recall={self.accuracy.recall:.3f} f1={self.accuracy.f1:.3f}"
            )
            component = self.component_accuracy
            lines.append(
                f"components: AGP P/R={component.precision_a:.3f}/{component.recall_a:.3f} "
                f"RSC P/R={component.precision_r:.3f}/{component.recall_r:.3f} "
                f"FSCR P/R={component.precision_f:.3f}/{component.recall_f:.3f}"
            )
        if self.dedup is not None:
            lines.append(f"duplicates removed: {self.dedup.removed_count}")
        return "\n".join(lines)
