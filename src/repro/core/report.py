"""The cleaning report returned by the MLNClean pipeline.

One :class:`CleaningReport` bundles everything an experiment needs: the
repaired table (before and after duplicate elimination), wall-clock timings
per phase, and — when the run was instrumented with a ground truth — the
overall repair accuracy (Eq. 7) and the per-component accuracy of AGP, RSC
and FSCR (Section 7.3).

Reports serialize to JSON (:meth:`CleaningReport.to_json_dict` /
:meth:`CleaningReport.from_json_dict`) so experiment artifacts can be
persisted, diffed run-over-run, and gated in CI.  The JSON form captures the
comparison-relevant surface losslessly — the three tables, timings, repair
accuracy, per-stage :class:`~repro.metrics.component.StageCounts`, dedup
listing, backend name — while live drill-down objects (stage merge/repair
listings, backend-specific reports) are flattened through their ``as_dict``
when available.  Serializing is idempotent: a deserialized report serializes
to the same JSON again, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.agp import AGPOutcome
from repro.core.dedup import DeduplicationResult
from repro.core.fscr import FSCROutcome
from repro.core.rsc import RSCOutcome
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.metrics.accuracy import RepairAccuracy
from repro.metrics.component import ComponentAccuracy, StageCounts
from repro.metrics.timing import TimingBreakdown


def table_to_json_dict(table: Table) -> dict:
    """One table as a JSON-safe dictionary (schema, name, tid-keyed rows)."""
    attributes = table.attributes
    return {
        "name": table.name,
        "attributes": list(attributes),
        "rows": [
            [row.tid, list(row.values_for(attributes))] for row in table
        ],
    }


def table_from_json_dict(data: dict) -> Table:
    """Rebuild a table from :func:`table_to_json_dict` output."""
    attributes = list(data["attributes"])
    table = Table(Schema(attributes), name=data["name"])
    for tid, values in data["rows"]:
        table.append(dict(zip(attributes, values)), tid=int(tid))
    return table


@dataclass
class StageDrilldown:
    """A deserialized stage outcome: the counts survive, the listings don't.

    :meth:`CleaningReport.from_json_dict` puts one of these wherever the
    live report carried an AGP/RSC/FSCR outcome, so
    :attr:`CleaningReport.component_accuracy` keeps working on reports read
    back from JSON.
    """

    counts: StageCounts = field(default_factory=StageCounts)


def _details_to_json(details: Optional[object]) -> Optional[object]:
    """Flatten backend-/cleaner-specific details into a JSON-safe value."""
    if details is None or isinstance(details, (dict, str, int, float, bool)):
        return details
    as_dict = getattr(details, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    return repr(details)


@dataclass
class CleaningReport:
    """Everything produced by one MLNClean run."""

    #: the input (dirty) table
    dirty: Table
    #: the repaired table with every tuple still present
    repaired: Table
    #: the repaired table after duplicate elimination (equals ``repaired``
    #: when deduplication is disabled)
    cleaned: Table
    #: wall-clock breakdown per pipeline phase
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    #: stage outcomes, for drill-down and for the component metrics
    agp: Optional[AGPOutcome] = None
    rsc: Optional[RSCOutcome] = None
    fscr: Optional[FSCROutcome] = None
    dedup: Optional[DeduplicationResult] = None
    #: overall repair accuracy (only in instrumented runs)
    accuracy: Optional[RepairAccuracy] = None
    #: name of the execution backend that produced the report
    #: ("batch", "distributed", "streaming", ...)
    backend: Optional[str] = None
    #: backend-specific drill-down (e.g. the full
    #: :class:`~repro.distributed.driver.DistributedReport` of a distributed
    #: run); ``None`` for the batch pipeline
    details: Optional[object] = None

    @property
    def runtime(self) -> float:
        """Total wall-clock time of the run in seconds."""
        return self.timings.total

    @property
    def component_accuracy(self) -> ComponentAccuracy:
        """AGP / RSC / FSCR accuracy assembled from the stage outcomes."""
        counts = StageCounts()
        if self.agp is not None:
            counts = counts.merge(self.agp.counts)
        if self.rsc is not None:
            counts = counts.merge(self.rsc.counts)
        if self.fscr is not None:
            counts = counts.merge(self.fscr.counts)
        return ComponentAccuracy(counts)

    @property
    def f1(self) -> float:
        """Overall F1 (0.0 when the run was not instrumented)."""
        return self.accuracy.f1 if self.accuracy is not None else 0.0

    def summary(self) -> dict[str, float]:
        """A flat dictionary of the headline numbers (for tables/benchmarks)."""
        summary: dict[str, float] = {
            "runtime_seconds": self.runtime,
            "tuples_in": float(len(self.dirty)),
            "tuples_out": float(len(self.cleaned)),
        }
        if self.accuracy is not None:
            summary.update(
                {
                    "precision": self.accuracy.precision,
                    "recall": self.accuracy.recall,
                    "f1": self.accuracy.f1,
                }
            )
            summary.update(self.component_accuracy.as_dict())
        return summary

    # ------------------------------------------------------------------
    # JSON (de)serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        """The report as a JSON-safe dictionary (see the module docstring)."""
        stages = {}
        for label, outcome in (("agp", self.agp), ("rsc", self.rsc), ("fscr", self.fscr)):
            stages[label] = (
                {"counts": outcome.counts.as_dict()} if outcome is not None else None
            )
        return {
            "dirty": table_to_json_dict(self.dirty),
            "repaired": table_to_json_dict(self.repaired),
            "cleaned": table_to_json_dict(self.cleaned),
            "timings": self.timings.as_dict(),
            "stages": stages,
            "dedup": (
                {
                    "removed_tids": list(self.dedup.removed_tids),
                    "duplicate_classes": [
                        list(tids) for tids in self.dedup.duplicate_classes
                    ],
                }
                if self.dedup is not None
                else None
            ),
            "accuracy": (
                self.accuracy.to_json_dict() if self.accuracy is not None else None
            ),
            "backend": self.backend,
            "details": _details_to_json(self.details),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "CleaningReport":
        """Rebuild a report from :meth:`to_json_dict` output.

        Tables, timings, accuracy and stage counts come back as full
        objects; stage outcomes come back as :class:`StageDrilldown` (counts
        only) and ``details`` as whatever JSON value was stored.
        """
        cleaned = table_from_json_dict(data["cleaned"])
        stages = data.get("stages") or {}

        def drilldown(label: str) -> Optional[StageDrilldown]:
            stored = stages.get(label)
            if stored is None:
                return None
            return StageDrilldown(counts=StageCounts.from_dict(stored["counts"]))

        dedup_data = data.get("dedup")
        dedup = (
            DeduplicationResult(
                deduplicated=cleaned,
                removed_tids=[int(tid) for tid in dedup_data["removed_tids"]],
                duplicate_classes=[
                    [int(tid) for tid in tids]
                    for tids in dedup_data["duplicate_classes"]
                ],
            )
            if dedup_data is not None
            else None
        )
        accuracy_data = data.get("accuracy")
        return cls(
            dirty=table_from_json_dict(data["dirty"]),
            repaired=table_from_json_dict(data["repaired"]),
            cleaned=cleaned,
            timings=TimingBreakdown(dict(data.get("timings") or {})),
            agp=drilldown("agp"),
            rsc=drilldown("rsc"),
            fscr=drilldown("fscr"),
            dedup=dedup,
            accuracy=(
                RepairAccuracy.from_json_dict(accuracy_data)
                if accuracy_data is not None
                else None
            ),
            backend=data.get("backend"),
            details=data.get("details"),
        )

    def describe(self) -> str:
        """A short human-readable report (used by the examples)."""
        lines = [
            f"tuples: {len(self.dirty)} in, {len(self.cleaned)} out"
            + (f" (backend: {self.backend})" if self.backend else ""),
            f"runtime: {self.runtime:.3f}s "
            f"({', '.join(f'{k}={v:.3f}s' for k, v in self.timings.phases.items())})",
        ]
        if self.accuracy is not None:
            lines.append(
                f"accuracy: precision={self.accuracy.precision:.3f} "
                f"recall={self.accuracy.recall:.3f} f1={self.accuracy.f1:.3f}"
            )
            component = self.component_accuracy
            lines.append(
                f"components: AGP P/R={component.precision_a:.3f}/{component.recall_a:.3f} "
                f"RSC P/R={component.precision_r:.3f}/{component.recall_r:.3f} "
                f"FSCR P/R={component.precision_f:.3f}/{component.recall_f:.3f}"
            )
        if self.dedup is not None:
            lines.append(f"duplicates removed: {self.dedup.removed_count}")
        return "\n".join(lines)
