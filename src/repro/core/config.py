"""Configuration of the MLNClean pipeline.

Every parameter the paper varies in its experiments is exposed here:

* ``abnormal_threshold`` — the τ of the AGP strategy (Section 5.1.1); the
  paper tunes it per dataset (τ = 1 on CAR, τ = 10 on HAI),
* ``distance_metric`` — Levenshtein by default, cosine for Table 5,
* the weight-learning hyper-parameters (Section 5.1.2),
* ``fscr_exhaustive_limit`` — up to how many data versions per tuple the
  FSCR search enumerates all fusion orders (the paper's m! search); beyond
  the limit a weight-ordered greedy fusion per starting version is used,
* ``remove_duplicates`` — whether Stage II ends with duplicate elimination.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.distance.base import DistanceMetric, get_metric
from repro.mln.weights import WeightLearningConfig
from repro.perf.engine import DistanceEngine

#: config fields that are observability-only: they cannot change any cleaning
#: decision, so they are excluded from :meth:`MLNCleanConfig.identity_dict`
#: (and therefore from session fingerprints and service shard routing) —
#: tracing a run on or off must never change where it executes or what it
#: produces
OBSERVABILITY_FIELDS = ("trace",)


@dataclass
class MLNCleanConfig:
    """Tunable parameters of :class:`repro.core.pipeline.MLNClean`."""

    #: AGP threshold τ: a group supported by at most τ tuples is abnormal
    abnormal_threshold: int = 1
    #: name of the distance metric ("levenshtein", "cosine", "damerau", ...)
    distance_metric: str = "levenshtein"
    #: hyper-parameters of the diagonal-Newton weight learner
    weight_learning: WeightLearningConfig = field(default_factory=WeightLearningConfig)
    #: maximum number of data versions per tuple for exhaustive FSCR search
    fscr_exhaustive_limit: int = 5
    #: strength of the minimality factor in the fusion score.  Each attribute
    #: value a fusion changes w.r.t. the input tuple multiplies its f-score by
    #: ``exp(-fscr_minimality_bias)``, implementing the principle of
    #: minimality the paper bakes into its cleaning criteria; 0 disables the
    #: factor and reduces the score to the pure weight product of Eq. 5.
    fscr_minimality_bias: float = 1.0
    #: drop exact duplicate tuples at the end of Stage II
    remove_duplicates: bool = True
    #: collect per-stage component metrics when a ground truth is available
    instrument: bool = True
    #: memoise pair distances in the shared :class:`repro.perf.DistanceEngine`
    #: (exact-only cache: disabling it never changes any cleaning decision,
    #: it only re-computes distances from scratch)
    distance_cache: bool = True
    #: flush-on-full bound for the pair cache (``None`` = unbounded); a full
    #: cache is cleared wholesale rather than evicted entry-wise
    distance_cache_entries: Optional[int] = None
    #: gram length of the q-gram candidate filter (HoloClean analog:
    #: ``domain_prune_thresh``'s gram side); pruning stays exact at any q —
    #: the filter only orders and lower-bounds candidates.  ``1`` (the
    #: default) is the positional bag-distance bound, which measured
    #: near-optimal on the paper's workloads: one edit destroys at most one
    #: unigram, so the bound's divisor is 1 instead of q
    qgram_size: int = 1
    #: approximation knob (HoloClean analog: ``pruning_topk``): per batch
    #: query keep only the k candidates with the smallest q-gram lower
    #: bounds.  ``None`` (default) = exact semantics
    pruning_topk: Optional[int] = None
    #: approximation knob (HoloClean analog: ``max_domain``): hard cap on the
    #: candidates a batch query may consider, applied in input order before
    #: ordering.  ``None`` (default) = exact semantics
    max_candidates: Optional[int] = None
    #: batch evaluation backend: ``"auto"`` (default — the vectorized numpy
    #: kernel when numpy is importable, the zero-dep scalar fast path
    #: otherwise), ``"numpy"`` (kernel required: raises without the ``fast``
    #: extra) or ``"python"`` (force the scalar path).  Results are
    #: bit-identical across backends; only speed and the
    #: ``raw_evaluations`` / ``kernel_evaluations`` counter split differ
    distance_kernel: str = "auto"
    #: opt-in observability: run under a fresh :class:`repro.obs.Tracer`
    #: even when the caller activated none (an already-ambient tracer is
    #: reused).  Purely observational — listed in
    #: :data:`OBSERVABILITY_FIELDS`, so fingerprints, shard routing and
    #: report signatures are byte-identical with tracing on or off.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.abnormal_threshold < 0:
            raise ValueError("abnormal_threshold must be >= 0")
        if self.fscr_exhaustive_limit < 1:
            raise ValueError("fscr_exhaustive_limit must be >= 1")
        if self.fscr_minimality_bias < 0:
            raise ValueError("fscr_minimality_bias must be >= 0")
        if self.distance_cache_entries is not None and self.distance_cache_entries < 1:
            raise ValueError("distance_cache_entries must be >= 1 (or None)")
        if self.qgram_size < 1:
            raise ValueError("qgram_size must be >= 1")
        if self.pruning_topk is not None and self.pruning_topk < 1:
            raise ValueError("pruning_topk must be >= 1 (or None for exact)")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1 (or None for exact)")
        if self.distance_kernel not in ("python", "numpy", "auto"):
            raise ValueError(
                "distance_kernel must be one of 'python', 'numpy', 'auto'"
            )
        # Fail fast on unknown metric names instead of deep inside Stage I.
        get_metric(self.distance_metric)

    def identity_dict(self) -> dict:
        """``asdict()`` minus the observability-only fields.

        The payload every identity hash uses — session fingerprints, the
        service's shard routing memo — so turning tracing on or off never
        moves a request to a different shard or changes any fingerprint.
        """
        payload = asdict(self)
        for name in OBSERVABILITY_FIELDS:
            payload.pop(name, None)
        return payload

    def metric(self) -> DistanceMetric:
        """Instantiate the configured distance metric."""
        return get_metric(self.distance_metric)

    def engine(self, track_values: bool = False) -> DistanceEngine:
        """A fresh :class:`~repro.perf.DistanceEngine` honouring this config.

        One engine is built per cleaning run and shared by every stage
        (``track_values=True`` additionally reference-counts values so the
        streaming cleaner can invalidate cache entries of evicted tuples).
        """
        return DistanceEngine.from_config(self, track_values=track_values)

    def with_threshold(self, abnormal_threshold: int) -> "MLNCleanConfig":
        """A copy with a different AGP threshold (used by the τ sweeps)."""
        return replace(self, abnormal_threshold=abnormal_threshold)

    def with_metric(self, distance_metric: str) -> "MLNCleanConfig":
        """A copy with a different distance metric (used by Table 5)."""
        return replace(self, distance_metric=distance_metric)

    @classmethod
    def for_dataset(cls, dataset: str, **overrides) -> "MLNCleanConfig":
        """The per-dataset defaults used by the paper's experiments.

        The paper fixes τ = 1 on CAR and τ = 10 on HAI (Section 7.3.1) after
        the threshold study; TPC-H follows HAI.  The values live with the
        workload registrations (each generator declares its
        ``recommended_threshold``), so this just delegates to
        :func:`repro.workloads.registry.recommended_config`.  Unknown names
        fall back to the global defaults with a warning.
        """
        from repro.workloads.registry import recommended_config

        return recommended_config(dataset, **overrides)
