"""Pluggable pipeline stages (Stage I/II of the paper as registered units).

The pipeline of :class:`repro.core.pipeline.MLNClean` runs the stage
sequence AGP → RSC → FSCR → dedup.  This module factors each of those steps
into a :class:`Stage` that reads and mutates one shared
:class:`StageContext`, and keeps a registry mapping stage names to factories
so a session can reorder, disable, or extend the sequence::

    register_stage("my-normalizer", lambda config: MyNormalizer(config))
    session = CleaningSession.builder().with_stages(
        "agp", "my-normalizer", "rsc", "fscr", "dedup"
    )...

Stage contracts (what each built-in stage consumes and produces):

* ``agp``   — mutates ``context.blocks`` in place (group merges),
* ``rsc``   — mutates ``context.blocks`` in place (weights + γ repairs),
* ``fscr``  — reads ``context.blocks``, sets ``context.repaired``,
* ``dedup`` — reads ``context.repaired`` (errors when no earlier stage set
  it), sets ``context.cleaned`` and ``context.dedup``.

Every stage records its outcome under its name in ``context.outcomes``; the
pipeline assembles the typed report fields (``report.agp`` etc.) from there.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from repro.constraints.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.detect.base import DirtyCells
    from repro.detect.run import CleaningScope
from repro.core.agp import AbnormalGroupProcessor
from repro.core.config import MLNCleanConfig
from repro.core.dedup import DeduplicationResult, remove_duplicates
from repro.core.fscr import FSCROutcome, FusionScoreResolver
from repro.core.index import Block
from repro.core.rsc import ReliabilityScoreCleaner
from repro.dataset.table import Cell, Table
from repro.perf.engine import DistanceEngine
from repro.registry import Registry

#: tid → ground-truth clean values of that tuple (instrumentation only)
CleanLookup = Callable[[int], dict[str, str]]


@dataclass
class StageContext:
    """Shared mutable state the stages of one cleaning run pass along."""

    #: the input (dirty) table — stages must not mutate it
    dirty: Table
    #: the integrity constraints of the run
    rules: list[Rule]
    #: the pipeline configuration
    config: MLNCleanConfig
    #: the post-index per-rule blocks (Stage-I stages mutate them in place)
    blocks: list[Block] = field(default_factory=list)
    #: ground-truth lookup enabling the component instrumentation (optional)
    clean_lookup: Optional[CleanLookup] = None
    #: the injected dirty cells, for the FSCR instrumentation (optional)
    dirty_cells: Optional[set[Cell]] = None
    #: the repaired table (set by ``fscr``; every tuple still present)
    repaired: Optional[Table] = None
    #: the final table (set by ``dedup``; defaults to ``repaired``)
    cleaned: Optional[Table] = None
    #: the duplicate-elimination result (set by ``dedup``)
    dedup: Optional[DeduplicationResult] = None
    #: stage name → that stage's outcome object
    outcomes: dict[str, object] = field(default_factory=dict)
    #: the run-wide shared distance engine (set by the pipeline so AGP, RSC,
    #: FSCR and dedup share one cache; ``None`` keeps per-stage defaults)
    engine: Optional[DistanceEngine] = None
    #: the detection result of the run (``None`` when no detectors ran)
    detected: Optional["DirtyCells"] = None
    #: the dirty-cell scope; ``None`` means full-scope — either no detectors
    #: ran or the detection covered every cell (the exact-or-prune pivot:
    #: a ``None`` scope is exactly today's unscoped code path)
    scope: Optional["CleaningScope"] = None


@runtime_checkable
class Stage(Protocol):
    """One pluggable step of the cleaning pipeline."""

    #: registry name; doubles as the timing-phase label of the stage
    name: str

    def run(self, context: StageContext) -> None:
        """Execute the stage, reading and mutating ``context``."""
        ...  # pragma: no cover - protocol body


class AGPStage:
    """Stage I, part 1: abnormal group processing on every block.

    Under a dirty-cell scope, only the blocks containing detected cells are
    enumerated, and only the abnormal groups holding an affected tuple are
    merged — merging rewrites the reason-part values of a group's tuples,
    which a dirty-scoped run must not do to undetected tuples.
    """

    name = "agp"

    def __init__(self, config: MLNCleanConfig):
        self._processor = AbnormalGroupProcessor(config)

    def run(self, context: StageContext) -> None:
        if context.engine is not None:
            self._processor.engine = context.engine
        scope = context.scope
        blocks = context.blocks if scope is None else scope.select_blocks(context.blocks)
        context.outcomes[self.name] = self._processor.process_index(
            blocks,
            context.clean_lookup,
            group_filter=None if scope is None else scope.selects_group,
        )


class RSCStage:
    """Stage I, part 2: weight learning + reliability-score cleaning.

    Under a dirty-cell scope, only the selected blocks are cleaned and only
    the groups holding an affected tuple are resolved — those γs are the
    fusion inputs of the tuples Stage II will re-fuse; weight learning
    stays block-global either way (the Eq.-4 prior is a block sum).
    """

    name = "rsc"

    def __init__(self, config: MLNCleanConfig):
        self._cleaner = ReliabilityScoreCleaner(config)

    def run(self, context: StageContext) -> None:
        if context.engine is not None:
            self._cleaner.engine = context.engine
        scope = context.scope
        blocks = context.blocks if scope is None else scope.select_blocks(context.blocks)
        context.outcomes[self.name] = self._cleaner.clean_index(
            blocks,
            context.clean_lookup,
            group_filter=None if scope is None else scope.selects_group,
        )


class FSCRStage:
    """Stage II, part 1: fusion-score conflict resolution across versions.

    Under a dirty-cell scope, only the affected tuples (those with at least
    one detected cell) are re-fused, against the data versions of the
    selected blocks; every other tuple keeps its as-arrived row.
    """

    name = "fscr"

    def __init__(self, config: MLNCleanConfig):
        self._resolver = FusionScoreResolver(config)

    def run(self, context: StageContext) -> None:
        if context.engine is not None:
            self._resolver.engine = context.engine
        scope = context.scope
        if scope is None:
            outcome = self._resolver.resolve(
                context.dirty, context.blocks, context.clean_lookup, context.dirty_cells
            )
        else:
            outcome = self._resolve_scoped(context, scope)
        context.outcomes[self.name] = outcome
        context.repaired = outcome.repaired
        # A fresh repaired table invalidates anything derived from an older
        # one (e.g. a dedup a custom stage order ran earlier).
        context.cleaned = None
        context.dedup = None

    def _resolve_scoped(self, context: StageContext, scope) -> FSCROutcome:
        """Fuse only the affected tuples and patch them into a full copy."""
        repaired = context.dirty.copy(name=f"{context.dirty.name}-repaired")
        live = [tid for tid in context.dirty.tids if tid in scope.tids]
        if not live:
            return FSCROutcome(repaired=repaired)
        blocks = scope.select_blocks(context.blocks)
        subset = context.dirty.subset(live, name=context.dirty.name)
        outcome = self._resolver.resolve(
            subset, blocks, context.clean_lookup, context.dirty_cells
        )
        for tid in live:
            fused_row = outcome.repaired.row(tid).as_dict()
            for attribute, value in fused_row.items():
                repaired.set_value(tid, attribute, value)
        outcome.repaired = repaired
        return outcome


class DedupStage:
    """Stage II, part 2: exact-duplicate elimination on the repaired table.

    Requires a repaired table, i.e. an earlier stage (normally ``fscr``)
    must have set ``context.repaired``.  Running dedup before fusion would
    silently emit a stale deduplication of the *dirty* table as the final
    result, so that ordering is rejected loudly instead.
    """

    name = "dedup"

    def __init__(self, config: MLNCleanConfig):
        self.config = config

    def run(self, context: StageContext) -> None:
        if context.repaired is None:
            raise ValueError(
                "the dedup stage needs a repaired table: order it after a "
                "stage that produces one (normally fscr)"
            )
        result = remove_duplicates(context.repaired, context.engine)
        context.outcomes[self.name] = result
        context.dedup = result
        context.cleaned = result.deduplicated


#: stage name → factory building a fresh stage for one configuration
StageFactory = Callable[[MLNCleanConfig], Stage]

_STAGES: Registry[StageFactory] = Registry("stage")
for _name, _factory in (
    ("agp", AGPStage),
    ("rsc", RSCStage),
    ("fscr", FSCRStage),
    ("dedup", DedupStage),
):
    _STAGES.register(_name, _factory)

#: the paper's stage order (Algorithm 1): Stage I then Stage II
DEFAULT_STAGES: tuple[str, ...] = ("agp", "rsc", "fscr", "dedup")


def register_stage(name: str, factory: StageFactory) -> None:
    """Register a stage factory under ``name`` (case-insensitive).

    Mirrors :func:`repro.workloads.register_workload`: re-registering the
    same factory is a no-op, rebinding a name to a different factory is an
    error.
    """
    _STAGES.register(name, factory)


def available_stages() -> list[str]:
    """All registered stage names, in registration order."""
    return _STAGES.names()


def get_stage(name: str, config: MLNCleanConfig) -> Stage:
    """Instantiate the stage registered under ``name`` for ``config``."""
    return _STAGES.get(name)(config)


def build_stages(
    names: Optional[Sequence[str]], config: MLNCleanConfig
) -> list[Stage]:
    """Instantiate a stage sequence.

    ``names=None`` yields the default Algorithm-1 order, honouring
    ``config.remove_duplicates`` (the dedup stage is dropped when the config
    disables duplicate elimination).  An explicit sequence is taken verbatim.
    """
    if names is None:
        names = [
            name
            for name in DEFAULT_STAGES
            if name != "dedup" or config.remove_duplicates
        ]
    return [get_stage(name, config) for name in names]
