"""Duplicate elimination (the tail end of Stage II).

"After eliminating conflicts via FSCR, MLNClean automatically detects and
removes duplicate tuples" (Section 5.2).  In the running example t1/t2 and
t3..t6 collapse to one representative each once their values have been
repaired.  Duplicates are exact value matches over the full schema; the
lowest tuple id of each duplicate class is kept so downstream joins against
the dirty table remain possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataset.table import Table


@dataclass
class DeduplicationResult:
    """Which tuples were kept and which were dropped as duplicates."""

    deduplicated: Table
    removed_tids: list[int] = field(default_factory=list)
    duplicate_classes: list[list[int]] = field(default_factory=list)

    @property
    def removed_count(self) -> int:
        return len(self.removed_tids)


def remove_duplicates(table: Table, engine=None) -> DeduplicationResult:
    """Drop exact duplicate tuples, keeping the smallest tid of each class.

    ``engine`` (the run's shared :class:`repro.perf.DistanceEngine`) is used
    purely as a string interner so the duplicate keys of repeated values hash
    and compare by identity; it never changes which rows are duplicates.
    """
    classes = table.duplicate_groups(
        interner=engine.intern if engine is not None else None
    )
    removed: list[int] = []
    for tids in classes:
        keeper = min(tids)
        removed.extend(tid for tid in tids if tid != keeper)
    deduplicated = table.copy(name=f"{table.name}-dedup")
    deduplicated.remove_many(removed)
    return DeduplicationResult(
        deduplicated=deduplicated,
        removed_tids=sorted(removed),
        duplicate_classes=[sorted(tids) for tids in classes],
    )
