"""MLNClean: the paper's primary contribution.

The cleaning pipeline follows Algorithm 1 of the paper:

1. build the two-layer **MLN index** (blocks per rule, groups per reason
   value) — :mod:`repro.core.index`,
2. **Stage I** per block: abnormal-group processing (**AGP**,
   :mod:`repro.core.agp`) followed by reliability-score cleaning (**RSC**,
   :mod:`repro.core.rsc`), producing one clean data version per block,
3. **Stage II**: fusion-score conflict resolution (**FSCR**,
   :mod:`repro.core.fscr`) across the data versions, then duplicate
   elimination (:mod:`repro.core.dedup`).

:class:`repro.core.pipeline.MLNClean` wires the stages together and produces
a :class:`repro.core.report.CleaningReport`.
"""

from repro.core.config import MLNCleanConfig
from repro.core.index import Block, DataPiece, Group, MLNIndex
from repro.core.agp import AbnormalGroupProcessor, AGPOutcome
from repro.core.rsc import ReliabilityScoreCleaner, RSCOutcome
from repro.core.fscr import FusionScoreResolver, FSCROutcome
from repro.core.dedup import remove_duplicates
from repro.core.report import CleaningReport
from repro.core.stages import (
    DEFAULT_STAGES,
    Stage,
    StageContext,
    available_stages,
    get_stage,
    register_stage,
)
from repro.core.pipeline import MLNClean

__all__ = [
    "MLNCleanConfig",
    "MLNIndex",
    "Block",
    "Group",
    "DataPiece",
    "AbnormalGroupProcessor",
    "AGPOutcome",
    "ReliabilityScoreCleaner",
    "RSCOutcome",
    "FusionScoreResolver",
    "FSCROutcome",
    "remove_duplicates",
    "CleaningReport",
    "Stage",
    "StageContext",
    "DEFAULT_STAGES",
    "register_stage",
    "available_stages",
    "get_stage",
    "MLNClean",
]
