"""The two-layer MLN index (Section 4 and Figure 2 of the paper).

The first layer is a set of **blocks**, one per MLN rule; the second layer
splits each block into **groups** of *pieces of data* (γ) that share the same
values on the rule's reason part.  A γ carries the attribute values of one
tuple restricted to the rule's attributes, so a tuple contributes at most one
γ per block and the block collection holds up to ``|B|`` *data versions* of
every tuple.

Index construction is lines 1-13 of Algorithm 1 and costs
``O(|B| × |T|)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Optional

from repro.constraints.rules import Rule
from repro.dataset.table import Table
from repro.perf.qgram import QGramIndex


class DataPiece:
    """A piece of data γ: the reason/result values of some tuples w.r.t. a rule.

    All tuples whose values coincide on the rule's attributes share one γ;
    ``support`` is the number of such tuples (the ``c(γ)`` of Eq. 4) and
    ``weight`` is the Markov weight learned for the γ's ground clause.
    """

    __slots__ = ("rule", "reason_values", "result_values", "values", "tids", "weight")

    def __init__(
        self,
        rule: Rule,
        reason_values: tuple[str, ...],
        result_values: tuple[str, ...],
        tids: Optional[Iterable[int]] = None,
    ):
        self.rule = rule
        self.reason_values = reason_values
        self.result_values = result_values
        #: reason values followed by result values — precomputed because the
        #: AGP / RSC distance loops read it once per pair, and the value
        #: parts never change after construction (repairs replace γs rather
        #: than mutating them)
        self.values: tuple[str, ...] = reason_values + result_values
        self.tids: list[int] = list(tids) if tids is not None else []
        self.weight: float = 0.0

    @property
    def key(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Identity of the γ inside its block: (reason values, result values)."""
        return (self.reason_values, self.result_values)

    @property
    def support(self) -> int:
        """Number of tuples related to this γ (``c(γ)``)."""
        return len(self.tids)

    def as_assignment(self) -> dict[str, str]:
        """The γ as an attribute → value mapping over the rule's attributes."""
        attributes = self.rule.reason_attributes + self.rule.result_attributes
        return dict(zip(attributes, self.values))

    def add_tuple(self, tid: int) -> None:
        self.tids.append(tid)

    def remove_tuple(self, tid: int) -> bool:
        """Detach one tuple from the γ; returns whether it was present.

        Only the first occurrence is removed — a tuple legitimately appears
        once per γ, so this keeps the support count ``c(γ)`` consistent under
        incremental deletions.
        """
        try:
            self.tids.remove(tid)
        except ValueError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataPiece({self.rule.name}, {self.as_assignment()!r}, "
            f"support={self.support}, weight={self.weight:.3f})"
        )


class Group:
    """A second-layer bucket: all γs sharing the same reason-part values."""

    __slots__ = ("key", "pieces")

    def __init__(self, key: tuple[str, ...]):
        self.key = key
        #: γs keyed by their (reason, result) identity
        self.pieces: dict[tuple[tuple[str, ...], tuple[str, ...]], DataPiece] = {}

    def add_piece(self, piece: DataPiece) -> None:
        """Insert a γ, merging tuple lists if an identical γ already exists."""
        existing = self.pieces.get(piece.key)
        if existing is None:
            self.pieces[piece.key] = piece
        else:
            existing.tids.extend(piece.tids)

    def remove_piece(
        self, key: tuple[tuple[str, ...], tuple[str, ...]]
    ) -> DataPiece:
        """Detach and return one γ by its (reason, result) identity."""
        return self.pieces.pop(key)

    def remove_tuple(
        self, tid: int, key: tuple[tuple[str, ...], tuple[str, ...]]
    ) -> Optional[DataPiece]:
        """Detach a tuple from the γ identified by ``key``.

        Returns the γ the tuple was detached from (``None`` when no such γ
        holds the tuple); γs whose last tuple was removed are dropped from
        the group, so a returned γ may have support zero.
        """
        piece = self.pieces.get(key)
        if piece is None or not piece.remove_tuple(tid):
            return None
        if piece.support == 0:
            self.remove_piece(key)
        return piece

    @property
    def gammas(self) -> list[DataPiece]:
        return list(self.pieces.values())

    @property
    def size(self) -> int:
        """Number of distinct γs in the group."""
        return len(self.pieces)

    @property
    def tuple_count(self) -> int:
        """Total number of tuples related to the group's γs."""
        return sum(piece.support for piece in self.pieces.values())

    @property
    def tids(self) -> list[int]:
        """All tuple ids covered by the group."""
        collected: list[int] = []
        for piece in self.pieces.values():
            collected.extend(piece.tids)
        return collected

    def representative(self) -> DataPiece:
        """γ*: the piece related to the most tuples (ties broken by values).

        AGP measures group-to-group distance between representatives.
        """
        if not self.pieces:
            raise ValueError("cannot pick a representative of an empty group")
        return max(self.pieces.values(), key=lambda p: (p.support, p.values))

    def is_resolved(self) -> bool:
        """True when the group has reached the ideal single-γ state."""
        return len(self.pieces) <= 1

    def __iter__(self) -> Iterator[DataPiece]:
        return iter(self.pieces.values())

    def __len__(self) -> int:
        return len(self.pieces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Group(key={self.key!r}, gammas={self.size}, tuples={self.tuple_count})"


class Block:
    """A first-layer bucket: every γ derived from one rule."""

    def __init__(self, rule: Rule):
        self.rule = rule
        #: groups keyed by reason-part values
        self.groups: dict[tuple[str, ...], Group] = {}
        #: optional q-gram candidate index over the block's γ values; built
        #: once via :meth:`enable_qgram_index` and maintained incrementally
        #: by :meth:`add_tuple` / :meth:`remove_tuple` (the streaming delta
        #: hooks), so batch queries can count-filter candidates without a
        #: rebuild.  Cleaning mutations bypass these hooks on purpose: stale
        #: postings are harmless because every query is restricted to an
        #: explicit live candidate set (see :class:`repro.perf.qgram.QGramIndex`).
        self.qgram_index: Optional[QGramIndex] = None

    def enable_qgram_index(self, q: int) -> QGramIndex:
        """Build (or rebuild with a different ``q``) the block's q-gram index."""
        if self.qgram_index is None or self.qgram_index.q != q:
            index = QGramIndex(q)
            for group in self.groups.values():
                for piece in group.pieces.values():
                    index.add(piece.values)
            self.qgram_index = index
        return self.qgram_index

    @property
    def name(self) -> str:
        return self.rule.name

    @property
    def attributes(self) -> list[str]:
        """The rule's attributes (reason first, then result)."""
        return self.rule.reason_attributes + self.rule.result_attributes

    def gamma_key(
        self, values: Mapping[str, str]
    ) -> Optional[tuple[tuple[str, ...], tuple[str, ...]]]:
        """The (reason, result) identity a tuple with ``values`` maps to.

        ``None`` when the rule does not cover the tuple (e.g. a CFD whose
        condition values do not match).
        """
        if not self.rule.covers(values):
            return None
        return (
            tuple(values[a] for a in self.rule.reason_attributes),
            tuple(values[a] for a in self.rule.result_attributes),
        )

    def add_tuple(self, tid: int, values: dict[str, str]) -> Optional[DataPiece]:
        """Insert one tuple's γ; returns it, or ``None`` if the rule skips it."""
        if not self.rule.covers(values):
            return None
        reason_values = tuple(values[a] for a in self.rule.reason_attributes)
        result_values = tuple(values[a] for a in self.rule.result_attributes)
        group = self.groups.get(reason_values)
        if group is None:
            group = Group(reason_values)
            self.groups[reason_values] = group
        piece = group.pieces.get((reason_values, result_values))
        if piece is None:
            piece = DataPiece(self.rule, reason_values, result_values)
            group.pieces[piece.key] = piece
            if self.qgram_index is not None:
                self.qgram_index.add(piece.values)
        piece.add_tuple(tid)
        return piece

    @property
    def group_list(self) -> list[Group]:
        return list(self.groups.values())

    @property
    def pieces(self) -> list[DataPiece]:
        """Every γ of the block across all groups."""
        collected: list[DataPiece] = []
        for group in self.groups.values():
            collected.extend(group.pieces.values())
        return collected

    def remove_group(self, key: tuple[str, ...]) -> Group:
        """Detach and return a group (AGP does this when merging)."""
        return self.groups.pop(key)

    def remove_tuple(self, tid: int, values: Mapping[str, str]) -> Optional[DataPiece]:
        """Detach a tuple whose current values are ``values`` from its γ.

        The γ is located directly through the values (no scan); empty γs and
        groups are dropped so support counts stay exact under deletions.
        Returns the γ the tuple was detached from (``None`` if the rule does
        not cover the tuple or the γ does not hold it).
        """
        key = self.gamma_key(values)
        if key is None:
            return None
        group = self.groups.get(key[0])
        if group is None:
            return None
        piece = group.remove_tuple(tid, key)
        if piece is not None:
            if piece.support == 0 and self.qgram_index is not None:
                self.qgram_index.discard(piece.values)
            if not group.pieces:
                del self.groups[key[0]]
        return piece

    def update_tuple(
        self,
        tid: int,
        old_values: Mapping[str, str],
        new_values: dict[str, str],
    ) -> tuple[Optional[DataPiece], Optional[DataPiece]]:
        """Re-home a tuple whose values changed from ``old_values``.

        Removes the tuple from the γ its old values map to and inserts it
        into the γ of its new values (creating groups/γs as needed); returns
        ``(old_piece, new_piece)``.  A no-op on both sides when the value
        change does not touch the rule's γ identity.
        """
        old_key = self.gamma_key(old_values)
        new_key = self.gamma_key(new_values)
        if old_key == new_key:
            return (None, None)
        old_piece = self.remove_tuple(tid, old_values)
        new_piece = self.add_tuple(tid, new_values)
        return (old_piece, new_piece)

    def group_of_tid(self, tid: int) -> Optional[Group]:
        """The group currently holding a tuple (``None`` if not covered)."""
        for group in self.groups.values():
            for piece in group.pieces.values():
                if tid in piece.tids:
                    return group
        return None

    def piece_of_tid(self, tid: int) -> Optional[DataPiece]:
        """The γ currently holding a tuple (``None`` if not covered)."""
        for group in self.groups.values():
            for piece in group.pieces.values():
                if tid in piece.tids:
                    return piece
        return None

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.name!r}, groups={len(self.groups)})"


class MLNIndex:
    """The two-layer index over a dirty table for a rule set."""

    def __init__(self, blocks: dict[str, Block]):
        self.blocks = blocks

    @classmethod
    def build(cls, table: Table, rules: Sequence[Rule]) -> "MLNIndex":
        """Construct the index (lines 1-13 of Algorithm 1)."""
        blocks: dict[str, Block] = {}
        for rule in rules:
            blocks[rule.name] = Block(rule)
        for row in table:
            values = row.as_dict()
            for block in blocks.values():
                block.add_tuple(row.tid, values)
        return cls(blocks)

    @property
    def block_list(self) -> list[Block]:
        return list(self.blocks.values())

    def block(self, rule_name: str) -> Block:
        return self.blocks[rule_name]

    def enable_qgram(self, q: int) -> None:
        """Build the per-block q-gram candidate indexes (see the blocks)."""
        for block in self.blocks.values():
            block.enable_qgram_index(q)

    # ------------------------------------------------------------------
    # incremental maintenance hooks (used by repro.streaming)
    # ------------------------------------------------------------------
    def add_tuple(self, tid: int, values: dict[str, str]) -> dict[str, DataPiece]:
        """Insert one tuple into every covering block; γs created per block."""
        touched: dict[str, DataPiece] = {}
        for name, block in self.blocks.items():
            piece = block.add_tuple(tid, values)
            if piece is not None:
                touched[name] = piece
        return touched

    def remove_tuple(self, tid: int, values: Mapping[str, str]) -> dict[str, DataPiece]:
        """Detach one tuple (with its current values) from every block."""
        touched: dict[str, DataPiece] = {}
        for name, block in self.blocks.items():
            piece = block.remove_tuple(tid, values)
            if piece is not None:
                touched[name] = piece
        return touched

    def update_tuple(
        self,
        tid: int,
        old_values: Mapping[str, str],
        new_values: dict[str, str],
    ) -> dict[str, tuple[Optional[DataPiece], Optional[DataPiece]]]:
        """Re-home one tuple in every block where its γ identity changed."""
        touched: dict[str, tuple[Optional[DataPiece], Optional[DataPiece]]] = {}
        for name, block in self.blocks.items():
            old_piece, new_piece = block.update_tuple(tid, old_values, new_values)
            if old_piece is not None or new_piece is not None:
                touched[name] = (old_piece, new_piece)
        return touched

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        groups = sum(len(block) for block in self.blocks.values())
        return f"MLNIndex(blocks={len(self.blocks)}, groups={groups})"

    def statistics(self) -> dict[str, dict[str, int]]:
        """Per-block group / γ / tuple counts (useful in reports and tests)."""
        stats: dict[str, dict[str, int]] = {}
        for name, block in self.blocks.items():
            stats[name] = {
                "groups": len(block.groups),
                "gammas": len(block.pieces),
                "tuples": sum(group.tuple_count for group in block.groups.values()),
            }
        return stats
