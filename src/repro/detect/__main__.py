"""``python -m repro.detect``: run a detector stack, emit dirty cells as JSON.

Point it at a registered workload (the harness injects seeded errors, so
detection accuracy is scored against the known ledger) or at an inline CSV
table with a rule file::

    python -m repro.detect --workload hospital-sample --tuples 60 \
        --detectors violation outlier

    python -m repro.detect --table dirty.csv --rules rules.txt \
        --dc-file hospital_sample.dc

``--dc-file`` appends a violation detector pinned to a HoloClean-format
denial-constraint file (bare names resolve against the packaged data files
under ``repro/detect/data/``).  The output is the
:meth:`~repro.detect.base.DirtyCells.to_json_dict` payload — the union cell
set with per-detector provenance — plus detection precision/recall when an
injected-error ledger is available.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.detect.base import detector_specs_identity, validate_detector_specs
from repro.detect.run import run_detection


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.detect",
        description="run an error-detector stack and emit dirty cells as JSON",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--workload", help="registered workload name (seeded error injection)"
    )
    source.add_argument("--table", help="CSV file with a header row")
    parser.add_argument(
        "--rules", help="rule file (one constraint per line; --table only)"
    )
    parser.add_argument(
        "--dc-file",
        help="HoloClean-format denial-constraint file; appends a violation "
        "detector pinned to it (bare names resolve to packaged data files)",
    )
    parser.add_argument(
        "--detectors",
        nargs="*",
        default=None,
        metavar="NAME",
        help="registered detector names (default: violation, or just the "
        "--dc-file detector when one is given)",
    )
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--error-rate", type=float, default=0.05)
    parser.add_argument("--replacement-ratio", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--error-seed", type=int, default=42)
    parser.add_argument(
        "--out", help="write the JSON here instead of stdout", default=None
    )
    return parser


def _specs(args: argparse.Namespace) -> list:
    specs: list = list(args.detectors or [])
    if args.dc_file:
        specs.append({"name": "violation", "options": {"dc_file": args.dc_file}})
    if not specs:
        specs = ["violation"]
    return validate_detector_specs(specs)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    specs = _specs(args)
    if args.workload is not None:
        from repro.experiments.harness import prepare_instance

        instance = prepare_instance(
            args.workload,
            tuples=args.tuples,
            error_rate=args.error_rate,
            replacement_ratio=args.replacement_ratio,
            seed=args.seed,
            error_seed=args.error_seed,
        )
        table, rules = instance.dirty, instance.rules
        ground_truth = instance.ground_truth
    else:
        from repro.session.session import load_rules, load_table

        table = load_table(args.table)
        rules = load_rules(args.rules) if args.rules else []
        ground_truth = None

    detected = run_detection(table, rules, specs, ground_truth=ground_truth)
    payload = detected.to_json_dict()
    payload["detectors"] = detector_specs_identity(specs)
    payload["table"] = {"name": table.name, "tuples": len(table)}
    if ground_truth is not None:
        payload["accuracy"] = {
            key: round(value, 4)
            for key, value in detected.accuracy(
                ground_truth.dirty_cells, table
            ).items()
        }
    text = json.dumps(payload, indent=1) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
