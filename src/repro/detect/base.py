"""The detection protocol, the dirty-cell result type, and the registry.

Error detection is the front end that decides *which cells are noisy* before
any repair runs.  HoloClean treats it as a first-class pluggable phase
(null/violation/fixed detectors unioned into one dirty-cell set); this module
ports that shape:

* :class:`Detector` — the protocol (``detect(table, rules) -> set[Cell]``),
  identical to the historical ``baselines.detectors.ErrorDetector`` ABC so
  existing detector subclasses keep working unchanged.
* :class:`DirtyCells` — the union result of a detector stack, with
  per-detector provenance and precision/recall against an injected-error
  ledger.
* the registry — ``register_detector`` / ``available_detectors`` /
  ``get_detector``, mirroring the cleaner/backend/stage registries.

A *detector spec* (what requests, sessions and the service wire carry) is a
registered name (``"violation"``), a ``{"name": ..., "options": {...}}``
mapping, or an already-built detector instance; :func:`resolve_detector`
turns any of them into a live detector.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.constraints.rules import Rule
from repro.dataset.table import Cell, Table
from repro.registry import Registry, unknown_name


class Detector(ABC):
    """Interface of the detection phase: which cells are considered noisy."""

    #: registry name; doubles as the provenance / metrics label of the
    #: detector inside a stack
    name: str = "detector"

    #: how far one delta's effect reaches, for streaming re-detection:
    #: ``"tuple"`` — a cell's verdict depends only on its own row,
    #: ``"rule"``  — verdicts change only for rules whose block was dirtied,
    #: ``"table"`` — any change may flip any verdict (full re-detection)
    granularity: str = "table"

    @abstractmethod
    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        """The set of cells the repair phase is allowed to change."""


@dataclass
class DirtyCells:
    """The output of one detection pass: a cell set with provenance.

    ``by_detector`` keeps which stack member flagged which cells (a cell
    flagged by several detectors appears under each); ``cells`` is their
    union.  Detection provenance is carried in report *details* only — it
    never enters the signature-covered report surface.
    """

    #: the union of every detector's flagged cells
    cells: set[Cell] = field(default_factory=set)
    #: provenance: detector label → the cells it flagged, in stack order
    by_detector: dict[str, set[Cell]] = field(default_factory=dict)
    #: wall-clock seconds the detection pass took
    seconds: float = 0.0

    def __contains__(self, cell: Cell) -> bool:
        return cell in self.cells

    def __iter__(self):
        return iter(self.cells)

    @property
    def count(self) -> int:
        return len(self.cells)

    def tids(self) -> set[int]:
        """The tuples with at least one detected cell."""
        return {cell.tid for cell in self.cells}

    def attributes(self) -> set[str]:
        """The attributes with at least one detected cell."""
        return {cell.attribute for cell in self.cells}

    def covers(self, table: Table) -> bool:
        """True when every cell of ``table`` is flagged (the all-cells case).

        This is the exact-or-prune pivot: a detection that covers the whole
        table disables scoping entirely, so the pipeline takes the same code
        path (and produces byte-identical output) as a run with no detectors.
        """
        expected = len(table) * len(table.attributes)
        if len(self.cells) < expected:
            return False
        return all(
            Cell(tid, attribute) in self.cells
            for tid in table.tids
            for attribute in table.attributes
        )

    def accuracy(self, dirty_cells: set[Cell], table: Table) -> dict[str, float]:
        """Detection precision/recall/F1 against an injected-error cell set.

        ``dirty_cells`` is restricted to the tuples of ``table`` first, so a
        windowed/subset run is scored only on the cells it could have seen.
        """
        truth = {cell for cell in dirty_cells if table.has_tid(cell.tid)}
        flagged = len(self.cells)
        hits = len(self.cells & truth)
        precision = hits / flagged if flagged else 0.0
        recall = hits / len(truth) if truth else 0.0
        denominator = precision + recall
        f1 = 2 * precision * recall / denominator if denominator else 0.0
        return {"precision": precision, "recall": recall, "f1": f1}

    def to_json_dict(self) -> dict:
        """JSON-safe payload (sorted cells; the CLI emits exactly this)."""
        return {
            "count": len(self.cells),
            "cells": _cells_to_json(self.cells),
            "by_detector": {
                name: _cells_to_json(cells)
                for name, cells in self.by_detector.items()
            },
            "seconds": round(self.seconds, 6),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "DirtyCells":
        return cls(
            cells=_cells_from_json(data.get("cells", [])),
            by_detector={
                str(name): _cells_from_json(cells)
                for name, cells in dict(data.get("by_detector", {})).items()
            },
            seconds=float(data.get("seconds", 0.0)),
        )


def _cells_to_json(cells: set[Cell]) -> list[list]:
    return [
        [cell.tid, cell.attribute]
        for cell in sorted(cells, key=lambda c: (c.tid, c.attribute))
    ]


def _cells_from_json(payload) -> set[Cell]:
    return {Cell(int(tid), str(attribute)) for tid, attribute in payload}


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

#: a factory building a detector from keyword options
DetectorFactory = Callable[..., Detector]

_DETECTORS: Registry[DetectorFactory] = Registry("detector")

#: what requests and the service wire carry: a registered name, a
#: ``{"name", "options"}`` mapping, or a live detector instance
DetectorSpec = Union[str, Mapping, Detector]


def register_detector(name: str, factory: DetectorFactory) -> None:
    """Register a detector factory under ``name`` (case-insensitive).

    Mirrors :func:`repro.core.stages.register_stage`: re-registering the
    same factory is a no-op, rebinding a name to a different factory is an
    error.
    """
    _DETECTORS.register(name, factory)


def available_detectors() -> list[str]:
    """All registered detector names, in registration order."""
    return _DETECTORS.names()


def get_detector(name: str, **options) -> Detector:
    """Instantiate the detector registered under ``name``."""
    return _DETECTORS.get(name)(**options)


def resolve_detector(spec: DetectorSpec) -> Detector:
    """Turn one detector spec (name / mapping / instance) into a detector."""
    if isinstance(spec, str):
        return get_detector(spec)
    if isinstance(spec, Mapping):
        payload = dict(spec)
        name = payload.pop("name", None)
        if not isinstance(name, str) or not name:
            raise ValueError(f"detector spec needs a 'name' string: {spec!r}")
        options = payload.pop("options", None) or {}
        if payload:
            raise ValueError(
                f"unexpected detector spec keys {sorted(payload)!r} "
                "(only 'name' and 'options' are allowed)"
            )
        return get_detector(name, **dict(options))
    if hasattr(spec, "detect"):
        return spec
    raise TypeError(
        f"cannot resolve detector spec {spec!r}: expected a registered name, "
        "a {'name', 'options'} mapping, or a detector instance"
    )


def resolve_detectors(specs: Sequence[DetectorSpec]) -> list[Detector]:
    """Resolve a whole detector stack, preserving order."""
    return [resolve_detector(spec) for spec in specs]


def detector_specs_identity(specs: Optional[Sequence[DetectorSpec]]):
    """A deterministic JSON-safe identity of a detector stack.

    Session fingerprints and the service's routing memo fold this in, so two
    requests with different detector stacks never share cached state.  An
    instance spec is identified by its class path (options of hand-built
    instances are not introspectable — callers who need finer identity
    should pass name+options specs instead).
    """
    if specs is None:
        return None
    identity = []
    for spec in specs:
        if isinstance(spec, str):
            identity.append({"name": spec.lower()})
        elif isinstance(spec, Mapping):
            name = str(spec.get("name", "")).lower()
            options = spec.get("options") or {}
            identity.append({"name": name, "options": dict(options)})
        else:
            cls = type(spec)
            identity.append(
                {
                    "name": str(getattr(spec, "name", "")),
                    "instance": f"{cls.__module__}.{cls.__qualname__}",
                }
            )
    return identity


def validate_detector_specs(specs) -> list:
    """Check a wire-decoded detector stack (names and shapes only).

    Raises ``ValueError`` with the registry's :func:`unknown_name` message
    for unregistered names — the service maps that onto a 400.  Returns the
    normalized list.
    """
    if not isinstance(specs, (list, tuple)):
        raise ValueError("'detectors' must be a list of detector specs")
    validated: list = []
    for spec in specs:
        if isinstance(spec, str):
            name = spec
        elif isinstance(spec, Mapping):
            name = spec.get("name")
            if not isinstance(name, str) or not name:
                raise ValueError(f"detector spec needs a 'name' string: {spec!r}")
        else:
            raise ValueError(
                f"detector spec must be a name or a {{'name', 'options'}} "
                f"mapping, got {spec!r}"
            )
        if _DETECTORS.lookup(name) is None:
            raise ValueError(unknown_name("detector", name, available_detectors()))
        validated.append(spec)
    return validated
