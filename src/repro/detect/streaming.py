"""Incremental re-detection for the streaming engine.

A micro-batch dirties specific blocks (rules) and touches specific tuples;
re-running a whole detector stack over the retained table every tick would
throw that locality away.  :class:`StreamDetection` caches each detector's
verdicts at the granularity the detector declares:

* ``"rule"`` detectors (violation) keep one cell set per rule and recompute
  only the rules whose block the batch dirtied,
* ``"tuple"`` detectors (null / fixed / perfect / all-cells) keep one cell
  set per tuple and recompute only the touched tuples,
* ``"table"`` detectors (outlier, pinned-rules violation) are recomputed in
  full — their verdicts are global by nature.

Deleted tuples drop out of every cache.  The per-tick invalidation counts
are kept on :attr:`StreamDetection.last_recomputed` so tests (and curious
operators) can see exactly what a batch re-detected.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

from repro.constraints.rules import Rule
from repro.dataset.table import Cell, Table
from repro.detect.base import DetectorSpec, DirtyCells, resolve_detectors
from repro.detect.run import inject_ground_truth
from repro.errors.groundtruth import GroundTruth
from repro.obs import DETECTOR_CELLS


class StreamDetection:
    """Per-detector verdict caches driving streaming re-detection."""

    def __init__(self, detectors: Sequence[DetectorSpec], rules: Sequence[Rule]):
        self.detectors = resolve_detectors(detectors)
        if not self.detectors:
            raise ValueError("StreamDetection needs at least one detector")
        self.rules = list(rules)
        #: per detector index: rule name → cells (``"rule"`` granularity)
        self._rule_cells: dict[int, dict[str, set[Cell]]] = {}
        #: per detector index: tid → cells (``"tuple"`` granularity)
        self._tuple_cells: dict[int, dict[int, set[Cell]]] = {}
        #: per detector index: the full cell set (``"table"`` granularity)
        self._table_cells: dict[int, set[Cell]] = {}
        #: what the last :meth:`update` recomputed, per provenance label:
        #: rule names for rule-granularity, tid count for tuple-granularity,
        #: ``"full"`` for table-granularity detectors
        self.last_recomputed: dict[str, object] = {}

    def update(
        self,
        table: Table,
        dirtied_rules: Iterable[str],
        touched_tids: Iterable[int],
        removed_tids: Iterable[int],
        ground_truth: Optional[GroundTruth] = None,
    ) -> DirtyCells:
        """Refresh the caches for one micro-batch and return the union.

        ``dirtied_rules`` are the rule names whose block the batch dirtied,
        ``touched_tids`` the inserted/updated tuples, ``removed_tids`` the
        deleted/evicted ones.
        """
        dirtied = set(dirtied_rules)
        touched = {tid for tid in touched_tids if table.has_tid(tid)}
        removed = set(removed_tids)
        self.last_recomputed = {}
        union: set[Cell] = set()
        by_detector: dict[str, set[Cell]] = {}
        for index, detector in enumerate(self.detectors):
            inject_ground_truth(detector, ground_truth)
            granularity = getattr(detector, "granularity", "table")
            if granularity == "rule" and hasattr(detector, "detect_rule"):
                cells, note = self._update_rule(index, detector, table, dirtied)
            elif granularity == "tuple":
                cells, note = self._update_tuple(
                    index, detector, table, touched, removed
                )
            else:
                cells = set(detector.detect(table, self.rules))
                self._table_cells[index] = cells
                note = "full"
            label = _label(by_detector, detector)
            by_detector[label] = cells
            union |= cells
            self.last_recomputed[label] = note
            DETECTOR_CELLS.labels(detector=label).inc(len(cells))
        return DirtyCells(cells=union, by_detector=by_detector)

    def _update_rule(self, index, detector, table, dirtied):
        cache = self._rule_cells.setdefault(index, {})
        recomputed = []
        for rule in self.rules:
            if rule.name in dirtied or rule.name not in cache:
                cache[rule.name] = set(detector.detect_rule(table, rule))
                recomputed.append(rule.name)
        live = {rule.name for rule in self.rules}
        for stale in set(cache) - live:
            del cache[stale]
        cells = set().union(*cache.values()) if cache else set()
        # deletions shrink violations of untouched rules' blocks too — a
        # removed tuple can never stay flagged
        cells = {cell for cell in cells if table.has_tid(cell.tid)}
        return cells, recomputed

    def _update_tuple(self, index, detector, table, touched, removed):
        cache = self._tuple_cells.setdefault(index, {})
        for tid in removed:
            cache.pop(tid, None)
        recompute = {tid for tid in touched if table.has_tid(tid)}
        recompute.update(tid for tid in table.tids if tid not in cache)
        if recompute:
            subset = table.subset(sorted(recompute), name=f"{table.name}-redetect")
            found = detector.detect(subset, self.rules)
            fresh: dict[int, set[Cell]] = {tid: set() for tid in recompute}
            for cell in found:
                fresh.setdefault(cell.tid, set()).add(cell)
            cache.update(fresh)
        cells = set()
        for tid, tid_cells in cache.items():
            if table.has_tid(tid):
                cells |= tid_cells
        return cells, len(recompute)


def _label(by_detector: dict, detector) -> str:
    base = getattr(detector, "name", None) or type(detector).__name__.lower()
    label, suffix = base, 2
    while label in by_detector:
        label = f"{base}#{suffix}"
        suffix += 1
    return label
