"""The built-in detectors, seeded from the HoloClean baseline's detector set.

==============  ============================================================
name            flags
==============  ============================================================
``all-cells``   every cell (the default scope: repair may touch anything)
``null``        empty / placeholder values (``""``, ``null``, ``n/a``, ...)
``violation``   cells implicated by integrity-constraint violations
``fixed``       user-labelled cells from a JSON/CSV ledger (or inline)
``outlier``     per-attribute frequency / length outliers
``perfect``     the injected-error ledger (the paper's 100 %-accuracy setting)
``union``       the union of a nested detector stack
==============  ============================================================

Every class registers itself under the table's name; resolve by name through
:func:`repro.detect.get_detector` or pass instances directly.
"""

from __future__ import annotations

import csv
import json
from collections import Counter
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Optional, Union

from repro.constraints.dcfile import load_dc_file
from repro.constraints.parser import parse_rule
from repro.constraints.rules import Rule
from repro.constraints.violations import violating_cells
from repro.dataset.table import Cell, Table
from repro.detect.base import (
    Detector,
    DetectorSpec,
    register_detector,
    resolve_detectors,
)
from repro.errors.groundtruth import GroundTruth

#: package-data directory holding sample HoloClean-format DC files
DATA_DIR = Path(__file__).parent / "data"


def data_path(name: str) -> Path:
    """Resolve a packaged data file name (e.g. ``"hospital_sample.dc"``)."""
    return DATA_DIR / name


class AllCellsDetector(Detector):
    """Every cell of the table — the default "repair may touch anything" scope.

    This is the exact-or-prune anchor: a stack producing full coverage
    disables dirty-cell scoping, so the pipeline output is byte-identical
    to a run with no detectors at all.
    """

    name = "all-cells"
    granularity = "tuple"

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        del rules
        return {
            Cell(tid, attribute)
            for tid in table.tids
            for attribute in table.attributes
        }


class NullDetector(Detector):
    """Empty and placeholder values (HoloClean's ``NullDetector`` shape)."""

    name = "null"
    granularity = "tuple"

    #: case-insensitive markers treated as missing values
    DEFAULT_MARKERS = ("", "null", "nan", "n/a", "na", "none", "?")

    def __init__(self, markers: Optional[Sequence[str]] = None):
        source = self.DEFAULT_MARKERS if markers is None else markers
        self.markers = frozenset(str(marker).strip().lower() for marker in source)

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        del rules
        return {
            Cell(row.tid, attribute)
            for row in table
            for attribute in table.attributes
            if row[attribute].strip().lower() in self.markers
        }


class ViolationDetector(Detector):
    """Flags the cells implicated by at least one constraint violation.

    By default it evaluates the rules of the cleaning run; ``rules=`` (rule
    objects or textual rules) or ``dc_file=`` (a HoloClean-format
    denial-constraint file — bare names resolve against the packaged
    ``detect/data/`` directory) pin an explicit rule set instead, which lets
    a detector stack carry its own external constraints.

    A violation implicates every cell on both of its sides, so a single
    dirty value inside a large agreeing group implicates the whole group.
    The default ``refine=True`` keeps only the likely-dirty side of each
    violation, using two signals in order: the cells appearing in the most
    violations of the rule (a dirty tuple conflicts with every clean tuple
    of its group, each clean tuple only with the few dirty ones), and —
    when that ties, as it does for grouped FD/CFD violations — the cells
    holding a non-modal value within the violation (the majority value is
    presumed clean).  When both signals tie, every implicated cell stays
    flagged.  ``refine=False`` flags every implicated cell (the
    HoloClean-baseline behaviour).
    """

    name = "violation"
    granularity = "rule"

    def __init__(
        self,
        rules: Optional[Sequence[Union[Rule, str]]] = None,
        dc_file: Optional[Union[str, Path]] = None,
        refine: bool = True,
    ):
        if rules is not None and dc_file is not None:
            raise ValueError("pass either rules= or dc_file=, not both")
        self.refine = bool(refine)
        self._own_rules: Optional[list[Rule]] = None
        if rules is not None:
            self._own_rules = [
                rule if isinstance(rule, Rule) else parse_rule(rule)
                for rule in rules
            ]
        elif dc_file is not None:
            path = Path(dc_file)
            if not path.exists() and data_path(str(dc_file)).exists():
                path = data_path(str(dc_file))
            self._own_rules = load_dc_file(path)
        # pinned rules decouple detection from the dirtied blocks of the
        # cleaning run's rules, so streaming falls back to full re-detection
        if self._own_rules is not None:
            self.granularity = "table"

    def rules_for(self, rules: Sequence[Rule]) -> list[Rule]:
        """The effective rule set: pinned rules, else the run's rules."""
        return self._own_rules if self._own_rules is not None else list(rules)

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        cells: set[Cell] = set()
        for rule in self.rules_for(rules):
            cells.update(self.detect_rule(table, rule))
        return cells

    def detect_rule(self, table: Table, rule: Rule) -> set[Cell]:
        """Violating cells of one rule (the streaming per-block re-check)."""
        if not self.refine:
            return violating_cells(table, [rule])
        violations = rule.violations(table)
        counts: Counter = Counter()
        for violation in violations:
            counts.update(violation.suspect_cells)
        cells: set[Cell] = set()
        for violation in violations:
            suspects = violation.suspect_cells
            top = max(counts[cell] for cell in suspects)
            candidates = [cell for cell in suspects if counts[cell] == top]
            if len(candidates) == len(suspects) and len(suspects) > 1:
                # frequency did not separate the sides (grouped FD/CFD
                # violations implicate each cell exactly once) — fall back
                # to value rarity: the modal value is presumed clean
                values = {
                    cell: table.row(cell.tid)[cell.attribute]
                    for cell in suspects
                }
                value_counts = Counter(values.values())
                modal = max(value_counts.values())
                rare = [
                    cell
                    for cell in suspects
                    if value_counts[values[cell]] < modal
                ]
                if rare:
                    candidates = rare
            cells.update(candidates)
        return cells


class FixedDetector(Detector):
    """User-labelled dirty cells from a ledger (JSON or CSV) or inline.

    JSON ledgers are a list of ``[tid, attribute]`` pairs, a list of
    ``{"tid": ..., "attribute": ...}`` objects, or an object with a
    ``"cells"`` key holding either; CSV ledgers need ``tid`` and
    ``attribute`` columns.  Cells of tuples not present in the table are
    ignored at detect time (a ledger may outlive a windowed stream).
    """

    name = "fixed"
    granularity = "tuple"

    def __init__(
        self,
        cells: Optional[Sequence] = None,
        path: Optional[Union[str, Path]] = None,
    ):
        if (cells is None) == (path is None):
            raise ValueError("pass exactly one of cells= or path=")
        if path is not None:
            cells = self._load(Path(path))
        self.cells = frozenset(self._coerce_cell(entry) for entry in cells)

    @staticmethod
    def _coerce_cell(entry) -> Cell:
        if isinstance(entry, Cell):
            return entry
        if isinstance(entry, Mapping):
            return Cell(int(entry["tid"]), str(entry["attribute"]))
        tid, attribute = entry
        return Cell(int(tid), str(attribute))

    @staticmethod
    def _load(path: Path) -> list:
        if path.suffix.lower() == ".csv":
            with path.open(newline="", encoding="utf-8") as handle:
                reader = csv.DictReader(handle)
                if reader.fieldnames is None or not {
                    "tid",
                    "attribute",
                }.issubset(reader.fieldnames):
                    raise ValueError(
                        f"{path}: a fixed-cell CSV ledger needs 'tid' and "
                        f"'attribute' columns, got {reader.fieldnames!r}"
                    )
                return [
                    {"tid": row["tid"], "attribute": row["attribute"]}
                    for row in reader
                ]
        payload = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(payload, Mapping):
            payload = payload.get("cells")
        if not isinstance(payload, list):
            raise ValueError(
                f"{path}: a fixed-cell JSON ledger is a list of cells "
                "(or an object with a 'cells' list)"
            )
        return payload

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        del rules
        attributes = set(table.attributes)
        return {
            cell
            for cell in self.cells
            if table.has_tid(cell.tid) and cell.attribute in attributes
        }


class OutlierDetector(Detector):
    """Per-attribute frequency and length outliers.

    Two cheap univariate signals:

    * **frequency** — in a categorical attribute (distinct/total at or
      below ``max_distinct_ratio``), values with fewer than ``min_support``
      occurrences are flagged; high-cardinality attributes (identifiers)
      skip this signal, where it would flag everything.
    * **length** — values whose length deviates from the attribute's modal
      length by more than ``length_slack`` characters.
    """

    name = "outlier"
    granularity = "table"

    def __init__(
        self,
        min_support: int = 2,
        max_distinct_ratio: float = 0.5,
        length_slack: int = 3,
    ):
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        self.min_support = int(min_support)
        self.max_distinct_ratio = float(max_distinct_ratio)
        self.length_slack = int(length_slack)

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        del rules
        cells: set[Cell] = set()
        total = len(table)
        if not total:
            return cells
        for attribute in table.attributes:
            values = [(row.tid, row[attribute]) for row in table]
            counts = Counter(value for _, value in values)
            categorical = len(counts) / total <= self.max_distinct_ratio
            length_counts = Counter(len(value) for _, value in values)
            # modal length by count, smallest length breaking ties
            modal_length = min(
                length_counts,
                key=lambda length: (-length_counts[length], length),
            )
            for tid, value in values:
                rare = categorical and counts[value] < self.min_support
                stretched = abs(len(value) - modal_length) > self.length_slack
                if rare or stretched:
                    cells.add(Cell(tid, attribute))
        return cells


class PerfectDetector(Detector):
    """Returns exactly the injected cells (the paper's 100 %-accuracy setting).

    The ledger can be bound at construction, or left ``None`` to be injected
    by the run (sessions pass their ground truth into the detection phase).
    """

    name = "perfect"
    granularity = "tuple"

    def __init__(self, ground_truth: Optional[GroundTruth] = None):
        self.ground_truth = ground_truth

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        del rules
        if self.ground_truth is None:
            raise ValueError(
                "PerfectDetector needs the injected-error ledger: pass "
                "ground_truth= or run it through a session that has one"
            )
        return {
            cell
            for cell in self.ground_truth.dirty_cells
            if table.has_tid(cell.tid)
        }


class UnionDetector(Detector):
    """The union of several detectors (e.g. violations plus outliers).

    Members are detector specs (names, mappings, or instances); provenance
    inside a union is collapsed to the union itself — run the members as
    separate stack entries to keep per-detector provenance.
    """

    name = "union"

    def __init__(self, detectors: Sequence[DetectorSpec]):
        if not detectors:
            raise ValueError("UnionDetector needs at least one detector")
        self.detectors = resolve_detectors(detectors)
        granularities = {
            getattr(member, "granularity", "table") for member in self.detectors
        }
        self.granularity = "tuple" if granularities == {"tuple"} else "table"

    def detect(self, table: Table, rules: Sequence[Rule]) -> set[Cell]:
        cells: set[Cell] = set()
        for detector in self.detectors:
            cells.update(detector.detect(table, rules))
        return cells


for _name, _factory in (
    ("all-cells", AllCellsDetector),
    ("null", NullDetector),
    ("violation", ViolationDetector),
    ("fixed", FixedDetector),
    ("outlier", OutlierDetector),
    ("perfect", PerfectDetector),
    ("union", UnionDetector),
):
    register_detector(_name, _factory)
