"""Running a detector stack and projecting its result onto an MLN index.

:func:`run_detection` is the single execution seam every backend uses: it
resolves the stack, injects the run's injected-error ledger into detectors
that want one (``ground_truth`` attribute left ``None``), times the pass
under a ``stage:detect`` span, and feeds the ``repro_detector_cells_total``
/ ``repro_detect_seconds_total`` counters.

:class:`CleaningScope` is the dirty-scoped cleaning contract (exact-or-
prune): Stage I only enumerates blocks containing detected cells (and only
re-resolves groups holding an affected tuple), Stage II only re-fuses the
affected tuples.  A detection that covers the whole table never builds a
scope at all — the pipeline takes today's exact code path, byte-identical
output included.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from repro.constraints.rules import Rule
from repro.dataset.table import Table
from repro.detect.base import DetectorSpec, DirtyCells, resolve_detectors
from repro.errors.groundtruth import GroundTruth
from repro.metrics.timing import TimingBreakdown
from repro.obs import DETECT_SECONDS, DETECTOR_CELLS, stage_scope


def inject_ground_truth(detector, ground_truth: Optional[GroundTruth]) -> None:
    """Bind the run's injected-error ledger to detectors that want one.

    A detector opts in by exposing a ``ground_truth`` attribute left at
    ``None`` (:class:`~repro.detect.builtin.PerfectDetector`); union members
    are reached recursively.  Detectors with a ledger already bound keep it.
    """
    if ground_truth is None:
        return
    if getattr(detector, "ground_truth", _MISSING) is None:
        detector.ground_truth = ground_truth
    for member in getattr(detector, "detectors", ()):
        inject_ground_truth(member, ground_truth)


_MISSING = object()


def run_detection(
    table: Table,
    rules: Sequence[Rule],
    detectors: Sequence[DetectorSpec],
    ground_truth: Optional[GroundTruth] = None,
    backend: str = "batch",
    timings: Optional[TimingBreakdown] = None,
) -> DirtyCells:
    """Run a detector stack over ``table`` and union the results.

    Returns the union with per-detector provenance (two stack entries with
    the same name get ``name`` / ``name#2`` provenance labels).  The pass is
    timed into ``timings`` (when given) under the ``detect`` phase, which
    also emits the ``stage:detect`` span and the stage-seconds counter.
    """
    resolved = resolve_detectors(detectors)
    if not resolved:
        raise ValueError("run_detection needs at least one detector")
    timings = timings if timings is not None else TimingBreakdown()
    started = time.perf_counter()
    cells: set = set()
    by_detector: dict[str, set] = {}
    with stage_scope(timings, backend, "detect", detectors=len(resolved)) as scope:
        for detector in resolved:
            inject_ground_truth(detector, ground_truth)
            found = set(detector.detect(table, rules))
            label = _provenance_label(by_detector, detector)
            by_detector[label] = found
            cells |= found
            DETECTOR_CELLS.labels(detector=label).inc(len(found))
        scope.set(cells=len(cells))
    seconds = time.perf_counter() - started
    DETECT_SECONDS.labels(backend=backend).inc(seconds)
    return DirtyCells(cells=cells, by_detector=by_detector, seconds=seconds)


def _provenance_label(by_detector: dict, detector) -> str:
    base = getattr(detector, "name", None) or type(detector).__name__.lower()
    label, suffix = base, 2
    while label in by_detector:
        label = f"{base}#{suffix}"
        suffix += 1
    return label


class CleaningScope:
    """A detection result projected onto the blocks/tuples of one run.

    Built only when the detection does *not* cover the whole table (the
    exact-or-prune pivot lives in the pipeline).  Selection rules:

    * a **block** is selected when some detected cell lands in it — the
      cell's attribute belongs to the block's rule and the block covers the
      cell's tuple,
    * a **group** is selected when it holds at least one affected tuple
      (a tuple with any detected cell): AGP only merges selected abnormal
      groups (a merge rewrites the reason-part values of the group's
      tuples, which a scoped run must not do to undetected tuples) and RSC
      only resolves selected groups — their γs are the fusion inputs of
      the tuples Stage II will re-fuse,
    * an **affected tuple** is one with at least one detected cell.

    Skipping AGP merges and RSC resolution of unselected groups only
    changes the cleaned versions of tuples that are never re-fused; the
    detect-scoped benchmark asserts that the repairs of detected cells
    match a full-scope run.
    """

    def __init__(self, detected: DirtyCells, table: Table):
        self.detected = detected
        #: the affected tuples (≥ 1 detected cell), restricted to the table
        self.tids: set[int] = {
            cell.tid for cell in detected.cells if table.has_tid(cell.tid)
        }
        self.attributes: set[str] = detected.attributes()
        self._block_cache: dict[str, bool] = {}

    def selects_block(self, block) -> bool:
        """Does the block contain at least one detected cell?"""
        cached = self._block_cache.get(block.name)
        if cached is not None:
            return cached
        block_attrs = self.attributes.intersection(block.attributes)
        selected = False
        if block_attrs:
            block_tids = {
                tid for group in block.group_list for tid in group.tids
            }
            selected = any(
                cell.attribute in block_attrs and cell.tid in block_tids
                for cell in self.detected.cells
            )
        self._block_cache[block.name] = selected
        return selected

    def select_blocks(self, blocks: Sequence) -> list:
        """The sub-list of blocks containing detected cells, in order."""
        return [block for block in blocks if self.selects_block(block)]

    def selects_group(self, group) -> bool:
        """Does the group hold at least one affected tuple?"""
        return not self.tids.isdisjoint(group.tids)

    def selected_block_names(self) -> list[str]:
        """The names of the blocks selected so far, sorted (for reports)."""
        return sorted(
            name for name, selected in self._block_cache.items() if selected
        )
