"""Pluggable error detection: the front end that scopes what repair touches.

MLNClean itself performs detection and repair together, but real-world
cleaning (and the HoloClean baseline) needs an explicit detection phase:
*which cells are noisy* is decided first, and the repair phase is only
allowed to touch (or is focused on) those cells.  This package is that
phase:

* :class:`Detector` + registry — ``register_detector`` /
  ``available_detectors`` / ``get_detector``, mirroring the
  cleaner/backend/stage registries, with built-ins ``all-cells``, ``null``,
  ``violation``, ``fixed``, ``outlier``, ``perfect`` and the ``union``
  combinator (:mod:`repro.detect.builtin`).
* :class:`DirtyCells` — one union cell set with per-detector provenance.
* :func:`run_detection` / :class:`CleaningScope` — the execution seam and
  the dirty-scoped cleaning contract (exact-or-prune: full coverage means
  the exact, byte-identical pipeline path).
* :class:`StreamDetection` — incremental re-detection on dirtied blocks
  for the streaming engine.
* HoloClean-format denial-constraint files load through
  :func:`repro.constraints.dcfile.load_dc_file` (re-exported here); a
  sample file ships as package data under ``detect/data/``.

``python -m repro.detect`` runs a detector stack over a workload or CSV
table and emits the dirty-cell set as JSON.
"""

from repro.constraints.dcfile import load_dc_file, parse_dc_line, parse_dc_text
from repro.detect.base import (
    Detector,
    DetectorSpec,
    DirtyCells,
    available_detectors,
    detector_specs_identity,
    get_detector,
    register_detector,
    resolve_detector,
    resolve_detectors,
    validate_detector_specs,
)
from repro.detect.builtin import (
    AllCellsDetector,
    FixedDetector,
    NullDetector,
    OutlierDetector,
    PerfectDetector,
    UnionDetector,
    ViolationDetector,
    data_path,
)
from repro.detect.run import CleaningScope, run_detection
from repro.detect.streaming import StreamDetection

__all__ = [
    "Detector",
    "DetectorSpec",
    "DirtyCells",
    "register_detector",
    "available_detectors",
    "get_detector",
    "resolve_detector",
    "resolve_detectors",
    "detector_specs_identity",
    "validate_detector_specs",
    "AllCellsDetector",
    "NullDetector",
    "ViolationDetector",
    "FixedDetector",
    "OutlierDetector",
    "PerfectDetector",
    "UnionDetector",
    "data_path",
    "run_detection",
    "CleaningScope",
    "StreamDetection",
    "parse_dc_line",
    "parse_dc_text",
    "load_dc_file",
]
