"""A per-worker circuit breaker for the router's forwarding path.

Classic three-state machine, tuned for the router's failure signal
(transport-level errors from :mod:`repro.cluster.httpclient`):

* **closed** — forwarding normally; consecutive transport failures count up.
* **open** — ``threshold`` consecutive failures tripped it; every
  :meth:`allow` answers False (the router sheds with 503 + Retry-After
  instead of hammering a sick worker) until ``reset_after`` seconds pass.
* **half-open** — one probe request is allowed through; success closes the
  breaker, failure re-opens it for another ``reset_after``.

Any completed HTTP exchange counts as a success — a worker answering 500s
is alive; the breaker guards reachability, not correctness.  The clock is
injectable so tests drive the state machine without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

#: gauge encoding of the state (the ``repro_breaker_state`` metric)
STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe."""

    def __init__(
        self,
        threshold: int = 5,
        reset_after: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("the breaker needs threshold >= 1")
        if reset_after <= 0:
            raise ValueError("the breaker needs reset_after > 0")
        self.threshold = threshold
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._opened_at: float = 0.0
        self._state = "closed"

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (time-advanced on read)."""
        if self._state == "open" and self._clock() - self._opened_at >= self.reset_after:
            self._state = "half_open"
        return self._state

    def allow(self) -> bool:
        """May a request go to this worker right now?

        In half-open this *consumes* the probe slot: the caller that got
        True carries the probe, everyone else stays shed until its verdict.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half_open":
            # re-arm the open timer so a second caller cannot also probe
            # before the first probe's verdict lands
            self._state = "open"
            self._opened_at = self._clock()
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        self._failures += 1
        if self._failures >= self.threshold or self._state == "open":
            self._state = "open"
            self._opened_at = self._clock()
