"""Per-shard write-ahead delta log.

Binary framing, append-only, one file per shard::

    b"RWAL1\\n"                                 file header (magic + version)
    [u32 length][u32 crc32][length JSON bytes]  ... one frame per record

Each record is the JSON of one *applied* micro-batch —
``{"seq": <tick sequence>, "deltas": [...]}`` with the deltas encoded by
the :mod:`repro.streaming.delta` wire codecs — so replaying the log through
:meth:`StreamingMLNClean.apply_batch` retraces the worker's exact
application path, coalescing decisions included.

Durability contract: :meth:`DeltaLog.append` flushes **and fsyncs** before
returning, and the worker only acknowledges a delta job after the append
returns.  An acknowledged batch therefore survives ``kill -9``.  A crash
between frame write and fsync can at worst leave a torn final frame, which
carries only unacknowledged work: :meth:`replay` detects it (short frame or
CRC mismatch *at the tail*) and the log self-truncates to the last good
frame on the next append-open.  A CRC mismatch anywhere *before* the tail
means the storage itself corrupted acknowledged history — that is never
repaired silently; it raises :class:`WalCorruptionError` and the shard
refuses to come back until an operator intervenes.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.faults import INJECTOR
from repro.obs import WAL_FSYNC_SECONDS

MAGIC = b"RWAL1\n"
_FRAME = struct.Struct(">II")  # (payload length, crc32 of payload)


class WalCorruptionError(RuntimeError):
    """Acknowledged WAL history failed its checksum; refusing to guess."""


@dataclass
class WalRecord:
    """One replayable frame: which tick it was and what it applied.

    ``keys`` carries the idempotency keys of the requests folded into the
    tick; replay re-registers them so a retry after a crash still dedupes
    (exactly-once).  Absent in pre-1.7 logs — :meth:`from_payload` treats
    a missing field as empty, and :meth:`to_payload` omits it when empty,
    so old and new frames stay byte-compatible.
    """

    seq: int
    deltas: list
    keys: list = field(default_factory=list)

    def to_payload(self) -> bytes:
        document: dict = {"seq": self.seq, "deltas": self.deltas}
        if self.keys:
            document["keys"] = list(self.keys)
        blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return blob.encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        data = json.loads(payload.decode("utf-8"))
        return cls(
            seq=int(data["seq"]),
            deltas=list(data["deltas"]),
            keys=list(data.get("keys", [])),
        )


class DeltaLog:
    """An append-only, checksummed, fsync-on-append delta log."""

    def __init__(self, path: Union[str, Path], name: Optional[str] = None):
        self.path = Path(path)
        #: the shard fingerprint fault rules match on (``{"shard": ...}``);
        #: defaults to the per-shard directory name the worker lays out
        self.name = name or self.path.parent.name
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # a missing file, or one shorter than the header (a crash while the
        # header itself was being written), starts the log over
        if not self.path.exists() or self.path.stat().st_size < len(MAGIC):
            with open(self.path, "wb") as fresh:
                fresh.write(MAGIC)
                fresh.flush()
                os.fsync(fresh.fileno())
        records, good_size, total_size = self._scan()
        if good_size != total_size:
            # torn tail from a crash mid-append: unacknowledged, drop it
            with open(self.path, "r+b") as repair:
                repair.truncate(good_size)
        self._records = len(records)
        self._file = open(self.path, "ab")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _scan(self) -> tuple[list[WalRecord], int, int]:
        """All intact records, the offset after the last intact frame, and
        the file size.  Raises :class:`WalCorruptionError` for corruption
        anywhere except a torn tail."""
        if not self.path.exists():
            return [], len(MAGIC), len(MAGIC)
        raw = self.path.read_bytes()
        if len(raw) < len(MAGIC):
            return [], len(MAGIC), len(MAGIC)
        if not raw.startswith(MAGIC):
            raise WalCorruptionError(f"{self.path} has no RWAL1 header")
        records: list[WalRecord] = []
        stream = io.BytesIO(raw)
        stream.seek(len(MAGIC))
        good = len(MAGIC)
        bad_at = None
        while True:
            header = stream.read(_FRAME.size)
            if not header:
                break
            if len(header) < _FRAME.size:
                bad_at = good
                break
            length, crc = _FRAME.unpack(header)
            payload = stream.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                bad_at = good
                break
            try:
                records.append(WalRecord.from_payload(payload))
            except (ValueError, KeyError) as exc:
                raise WalCorruptionError(
                    f"{self.path}: frame at offset {good} checksums but does "
                    f"not decode: {exc}"
                ) from exc
            good = stream.tell()
        if bad_at is not None and stream.tell() < len(raw):
            # bytes *after* the bad frame decode-or-not — either way this is
            # not a torn tail; acknowledged history is damaged
            remaining = len(raw) - bad_at
            raise WalCorruptionError(
                f"{self.path}: corrupt frame at offset {bad_at} with "
                f"{remaining} bytes after it (mid-log corruption, not a torn tail)"
            )
        return records, good, len(raw)

    def replay(self) -> list[WalRecord]:
        """Every intact record, oldest first (tail-torn frames excluded)."""
        records, _, _ = self._scan()
        return records

    def __len__(self) -> int:
        return self._records

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: WalRecord) -> None:
        """Frame, write and **fsync** one record; returns only once durable.

        On any ``OSError`` mid-append (a failed write or fsync — including
        injected ones) the partially written frame is truncated away best
        effort, so a reopened log does not replay work the caller never
        acknowledged.  If even the truncate fails, the reopen-scan's torn-
        tail handling and the service's idempotency keys keep the
        exactly-once story intact.
        """
        payload = record.to_payload()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        offset = os.fstat(self._file.fileno()).st_size
        started = time.perf_counter()
        try:
            if INJECTOR.active:
                INJECTOR.io("wal.append", shard=self.name)
            self._file.write(frame)
            self._file.flush()
            if INJECTOR.active:
                INJECTOR.io("wal.fsync", shard=self.name)
            os.fsync(self._file.fileno())
        except OSError:
            with contextlib.suppress(OSError, ValueError):
                self._file.truncate(offset)
            raise
        WAL_FSYNC_SECONDS.observe(time.perf_counter() - started)
        self._records += 1

    def reset(self) -> None:
        """Drop every record (a snapshot made the history redundant)."""
        self._file.close()
        with open(self.path, "wb") as fresh:
            fresh.write(MAGIC)
            fresh.flush()
            os.fsync(fresh.fileno())
        self._records = 0
        self._file = open(self.path, "ab")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
