"""A minimal asyncio HTTP/1.1 client for intra-cluster calls.

The service's wire protocol is deliberately simple — one request per
connection, ``Connection: close``, ``Content-Length`` framing — so the
matching client fits in one function.  The router proxies request bodies
through it verbatim, and workers use it for heartbeats; neither needs (or
has) an external HTTP library.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

#: response bodies beyond this are refused (mirrors the server's bound)
MAX_RESPONSE_BYTES = 64 * 1024 * 1024


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    headers: Optional[dict] = None,
    timeout: float = 30.0,
) -> tuple[int, dict, bytes]:
    """One HTTP exchange; returns ``(status, headers, body)``.

    Raises ``ConnectionError`` when the peer is unreachable or hangs up
    mid-response, and ``asyncio.TimeoutError`` past ``timeout`` — callers
    (the router) map both onto "worker is down".
    """
    return await asyncio.wait_for(
        _http_request(host, port, method, path, body, headers),
        timeout=timeout,
    )


async def _http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes,
    headers: Optional[dict],
) -> tuple[int, dict, bytes]:
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        raise ConnectionError(f"cannot reach {host}:{port}: {exc}") from exc
    try:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError(f"{host}:{port} closed before responding")
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        response_headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = response_headers.get("content-length")
        if length is not None:
            size = int(length)
            if size > MAX_RESPONSE_BYTES:
                raise ConnectionError(f"{host}:{port} response of {size} bytes refused")
            payload = await reader.readexactly(size) if size else b""
        else:
            # Connection: close framing — the body runs to EOF
            payload = await reader.read(MAX_RESPONSE_BYTES)
        return status, response_headers, payload
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError(f"{host}:{port} hung up mid-response") from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    headers: Optional[dict] = None,
    timeout: float = 30.0,
) -> tuple[int, dict]:
    """JSON-in, JSON-out convenience over :func:`http_request`."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    send_headers = {"Content-Type": "application/json", **(headers or {})}
    status, _, raw = await http_request(
        host, port, method, path, body=body, headers=send_headers, timeout=timeout
    )
    decoded = json.loads(raw.decode("utf-8")) if raw else {}
    return status, decoded
