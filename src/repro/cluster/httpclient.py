"""A minimal asyncio HTTP/1.1 client for intra-cluster calls.

The service's wire protocol is deliberately simple — one request per
connection, ``Connection: close``, ``Content-Length`` framing — so the
matching client fits in one function.  The router proxies request bodies
through it verbatim, and workers use it for heartbeats; neither needs (or
has) an external HTTP library.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.faults import INJECTOR, InjectedConnectionError

#: response bodies beyond this are refused (mirrors the server's bound)
MAX_RESPONSE_BYTES = 64 * 1024 * 1024

#: total response-header bytes before the peer is treated as broken
MAX_HEADER_BYTES = 64 * 1024


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    headers: Optional[dict] = None,
    timeout: float = 30.0,
) -> tuple[int, dict, bytes]:
    """One HTTP exchange; returns ``(status, headers, body)``.

    Raises ``ConnectionError`` when the peer is unreachable, hangs up
    mid-response or sends oversized headers, and ``asyncio.TimeoutError``
    past ``timeout`` — callers (the router) map both onto "worker is down".
    """
    return await asyncio.wait_for(
        _with_faults(host, port, method, path, body, headers),
        timeout=timeout,
    )


async def _with_faults(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes,
    headers: Optional[dict],
) -> tuple[int, dict, bytes]:
    """The injection shim around one exchange (a no-op without a plan).

    Actions at the ``httpclient.request`` point: ``fail`` refuses before
    anything is sent; ``delay`` sleeps first (so the caller's ``timeout``
    can expire); ``duplicate`` performs the exchange twice (a retransmitted
    request — the server must dedupe); ``drop`` performs the exchange and
    then discards the response (the server did the work, the caller sees a
    lost ack and will retry).
    """
    if not INJECTOR.active:
        return await _http_request(host, port, method, path, body, headers)
    decision = INJECTOR.decide(
        "httpclient.request", host=host, port=str(port), method=method, path=path
    )
    if decision is None:
        return await _http_request(host, port, method, path, body, headers)
    if decision.action == "fail":
        raise InjectedConnectionError(f"injected: cannot reach {host}:{port}")
    if decision.action == "delay":
        await asyncio.sleep(decision.delay_s)
    if decision.action == "duplicate":
        await _http_request(host, port, method, path, body, headers)
    result = await _http_request(host, port, method, path, body, headers)
    if decision.action == "drop":
        raise InjectedConnectionError(
            f"injected: response from {host}:{port} {path} dropped"
        )
    return result


async def _http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes,
    headers: Optional[dict],
) -> tuple[int, dict, bytes]:
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        raise ConnectionError(f"cannot reach {host}:{port}: {exc}") from exc
    try:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError(f"{host}:{port} closed before responding")
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        response_headers: dict = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError as exc:
                # a single header line beyond the stream's buffer limit
                raise ConnectionError(
                    f"{host}:{port} sent an oversized header line"
                ) from exc
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise ConnectionError(
                    f"{host}:{port} response headers exceed {MAX_HEADER_BYTES} bytes"
                )
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = response_headers.get("content-length")
        if length is not None:
            size = int(length)
            if size > MAX_RESPONSE_BYTES:
                raise ConnectionError(f"{host}:{port} response of {size} bytes refused")
            payload = await reader.readexactly(size) if size else b""
        else:
            # Connection: close framing — the body runs to EOF
            payload = await reader.read(MAX_RESPONSE_BYTES)
        return status, response_headers, payload
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError(f"{host}:{port} hung up mid-response") from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    headers: Optional[dict] = None,
    timeout: float = 30.0,
) -> tuple[int, dict]:
    """JSON-in, JSON-out convenience over :func:`http_request`."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    send_headers = {"Content-Type": "application/json", **(headers or {})}
    status, _, raw = await http_request(
        host, port, method, path, body=body, headers=send_headers, timeout=timeout
    )
    decoded = json.loads(raw.decode("utf-8")) if raw else {}
    return status, decoded
