"""Subprocess helpers for standing up a local cluster.

Tests, ``examples/cluster_quickstart.py`` and the CI smoke driver all need
the same three moves — spawn a router, spawn workers against a shared data
directory, wait for health — so they live here once.  Processes are plain
``subprocess.Popen`` handles: callers kill, ``kill -9`` or terminate them
directly (crash-recovery tests do exactly that).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Union


def _cluster_env(fault_plan: Optional[str] = None) -> dict:
    """The child environment, with ``src/`` importable like the parent.

    ``fault_plan`` (inline JSON or a file path) is exported as
    ``REPRO_FAULT_PLAN`` so the child process arms its fault injector at
    import time — the chaos harness's way of reaching into subprocesses.
    """
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2]
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else str(src)
    if fault_plan is not None:
        from repro.faults import PLAN_ENV_VAR

        env[PLAN_ENV_VAR] = fault_plan
    return env


def spawn_router(
    port: int,
    host: str = "127.0.0.1",
    dead_after: float = 3.0,
    rebalance_interval: float = 0.5,
    log_level: str = "warning",
    fault_plan: Optional[str] = None,
    **popen_kwargs,
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro.cluster", "router",
        "--host", host,
        "--port", str(port),
        "--dead-after", str(dead_after),
        "--rebalance-interval", str(rebalance_interval),
        "--log-level", log_level,
    ]
    return subprocess.Popen(
        command, env=_cluster_env(fault_plan), **popen_kwargs
    )


def spawn_worker(
    port: int,
    worker_id: str,
    data_dir: Union[str, Path],
    router: Optional[str] = None,
    host: str = "127.0.0.1",
    snapshot_every: int = 8,
    heartbeat_interval: float = 0.25,
    drain_timeout: float = 30.0,
    trace_dir: Optional[Union[str, Path]] = None,
    log_level: str = "warning",
    fault_plan: Optional[str] = None,
    **popen_kwargs,
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro.cluster", "worker",
        "--host", host,
        "--port", str(port),
        "--worker-id", worker_id,
        "--data-dir", str(data_dir),
        "--snapshot-every", str(snapshot_every),
        "--heartbeat-interval", str(heartbeat_interval),
        "--drain-timeout", str(drain_timeout),
        "--log-level", log_level,
    ]
    if router:
        command += ["--router", router]
    if trace_dir:
        command += ["--trace-dir", str(trace_dir)]
    return subprocess.Popen(
        command, env=_cluster_env(fault_plan), **popen_kwargs
    )


def wait_until_healthy(
    port: int, host: str = "127.0.0.1", timeout: float = 30.0
) -> dict:
    """Block until ``/healthz`` answers on ``host:port`` (process boot)."""
    from repro.service.client import ServiceClient

    return ServiceClient(host=host, port=port).wait_until_healthy(timeout=timeout)


def wait_for_workers(
    router_port: int,
    expected: int,
    host: str = "127.0.0.1",
    timeout: float = 30.0,
) -> dict:
    """Block until the router reports ``expected`` live workers."""
    from repro.service.client import ServiceClient

    client = ServiceClient(host=host, port=router_port)
    deadline = time.monotonic() + timeout
    while True:
        try:
            health = client.healthz()
            live = [
                w for w in health.get("workers", {}).values() if w.get("live")
            ]
            if len(live) >= expected:
                return health
        except (ConnectionError, OSError):
            pass
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"router on port {router_port} never reported "
                f"{expected} live worker(s)"
            )
        time.sleep(0.1)
