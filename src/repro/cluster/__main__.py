"""Command-line entry points of the cluster fabric.

Usage (with the package installed, or ``PYTHONPATH=src``)::

    # one shared state directory, two workers, one router
    python -m repro.cluster worker --port 8741 --worker-id w1 \\
        --data-dir ./state --router 127.0.0.1:8740
    python -m repro.cluster worker --port 8742 --worker-id w2 \\
        --data-dir ./state --router 127.0.0.1:8740
    python -m repro.cluster router --port 8740

Clients talk to the router exactly as they would to a single-process
``python -m repro.service serve`` — same routes, same payloads.  The
operational flags (``--log-level``, ``--seed``) are shared with the other
CLIs through :mod:`repro.cli`.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import os

from repro.cli import common_parent, configure_logging
from repro.cluster.router import RouterConfig, serve_router
from repro.cluster.worker import WorkerConfig, serve_worker
from repro.faults import PLAN_ENV_VAR, activate_from_env
from repro.service.service import ServiceConfig


def _fault_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON_OR_PATH",
        help="seeded fault-injection plan (inline JSON or a file path); "
        f"equivalent to setting ${PLAN_ENV_VAR}",
    )
    return parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="multi-process shard fabric for the cleaning service",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    router_cmd = commands.add_parser(
        "router",
        parents=[common_parent(), _fault_parent()],
        help="run the consistent-hashing front door",
    )
    router_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    router_cmd.add_argument("--port", type=int, default=8740, help="bind port")
    router_cmd.add_argument(
        "--dead-after",
        type=float,
        default=3.0,
        help="seconds without a heartbeat before a worker leaves the ring",
    )
    router_cmd.add_argument(
        "--rebalance-interval",
        type=float,
        default=1.0,
        help="seconds between rebalance sweeps",
    )

    worker_cmd = commands.add_parser(
        "worker",
        parents=[common_parent(), _fault_parent()],
        help="run one durable cleaning worker",
    )
    worker_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    worker_cmd.add_argument("--port", type=int, default=8741, help="bind port")
    worker_cmd.add_argument(
        "--worker-id", required=True, help="stable ring identity of this worker"
    )
    worker_cmd.add_argument(
        "--data-dir",
        required=True,
        help="shared durable-state directory (WALs, snapshots, shard specs)",
    )
    worker_cmd.add_argument(
        "--router",
        default=None,
        help="host:port of the router to heartbeat to (omit for standalone)",
    )
    worker_cmd.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="engine ticks between snapshots (the WAL resets after each)",
    )
    worker_cmd.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between heartbeats to the router",
    )
    worker_cmd.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="bounded backpressure: queued-or-running jobs before 503s",
    )
    worker_cmd.add_argument(
        "--workers", type=int, default=4, help="cleaning executor threads"
    )
    worker_cmd.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds a graceful shutdown waits for queued jobs",
    )
    worker_cmd.add_argument(
        "--trace-dir",
        default=None,
        help="trace every job; write one Chrome trace_event JSON per "
        "finished job into this directory",
    )

    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    if args.fault_plan:
        # late activation: the flag mirrors the env var (which subprocess
        # workers inherit); either path arms the same process-global injector
        os.environ[PLAN_ENV_VAR] = args.fault_plan
        activate_from_env()

    if args.command == "router":
        config = RouterConfig(
            dead_after=args.dead_after,
            rebalance_interval=args.rebalance_interval,
        )
        logging.getLogger("repro.cluster.router").info(
            "starting router: host=%s port=%d dead_after=%.1fs",
            args.host, args.port, config.dead_after,
        )
        try:
            asyncio.run(serve_router(args.host, args.port, config))
        except KeyboardInterrupt:
            pass
        return 0

    worker_config = WorkerConfig(
        worker_id=args.worker_id,
        data_dir=args.data_dir,
        snapshot_every=args.snapshot_every,
        router=args.router,
        heartbeat_interval=args.heartbeat_interval,
    )
    service_config = ServiceConfig(
        max_pending=args.max_pending,
        executor_workers=args.workers,
        default_seed=args.seed,
        trace_dir=args.trace_dir,
    )
    logging.getLogger("repro.cluster.worker").info(
        "starting worker %s: host=%s port=%d data_dir=%s router=%s",
        worker_config.worker_id, args.host, args.port,
        worker_config.data_dir, worker_config.router,
    )
    try:
        asyncio.run(
            serve_worker(
                args.host,
                args.port,
                worker_config,
                service_config,
                drain_timeout=args.drain_timeout,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
