"""Consistent hash ring: deterministic shard → worker placement.

Every worker contributes ``replicas`` virtual points (SHA-256 of
``"<node>#<i>"``) on a 2^256 ring; a key is owned by the first point at or
after the key's own hash.  The construction is deterministic — any process
that knows the member list computes identical ownership, so the router and
an offline observer always agree — and adding or removing one worker moves
only the keys whose arc that worker's points covered (≈ 1/N of them),
which is what keeps rebalances cheap.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Optional, Sequence


def _point(data: str) -> int:
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest(), "big")


class HashRing:
    """A consistent hash ring over string node names."""

    def __init__(self, nodes: Sequence[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("a hash ring needs replicas >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            self._points.append((_point(f"{node}#{i}"), node))
        self._points.sort()
        self._hashes = [p for p, _ in self._points]

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(p, n) for p, n in self._points if n != node]
        self._hashes = [p for p, _ in self._points]

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def assign(self, key: str) -> Optional[str]:
        """The node that owns ``key`` (None on an empty ring)."""
        if not self._points:
            return None
        index = bisect.bisect_left(self._hashes, _point(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def assignments(self, keys: Sequence[str]) -> dict:
        """key → owning node for a batch of keys."""
        return {key: self.assign(key) for key in keys}
