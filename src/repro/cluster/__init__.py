"""repro.cluster: a multi-process shard fabric for the cleaning service.

One **router** process consistent-hashes shard identities onto N **worker**
processes; each worker runs its own :class:`repro.service.CleaningService`
(its own ``SessionPool`` subset, on its own GIL) behind the unchanged HTTP
wire protocol.  The router re-exposes ``/clean``, ``/deltas``,
``/jobs/<id>``, ``/healthz``, ``/stats`` and ``/metrics`` with per-worker
fan-in, so a single-process client keeps working against a fleet.

Durability: every applied delta micro-batch is appended to a per-shard
write-ahead log (length-prefixed, CRC-checksummed JSON records reusing the
:mod:`repro.streaming.delta` codecs) and fsynced *before* the job is
acknowledged; periodic snapshots bound replay.  A worker that dies — up to
and including ``kill -9`` — restarts, replays snapshot + WAL tail through
the streaming engine's exact-replay path, and resumes with its streaming
windows and warm caches intact; the masked report signature after recovery
is byte-identical to an uninterrupted run (asserted by tests and CI).

Run it::

    python -m repro.cluster worker --port 8741 --data-dir ./state --worker-id w1
    python -m repro.cluster router --port 8740 --data-dir ./state
"""

from __future__ import annotations

from repro.cluster.breaker import CircuitBreaker
from repro.cluster.ring import HashRing
from repro.cluster.router import (
    RouterConfig,
    RouterHTTPServer,
    RouterService,
    serve_router,
)
from repro.cluster.snapshot import (
    SnapshotError,
    load_snapshot,
    load_snapshot_document,
    write_snapshot,
)
from repro.cluster.wal import DeltaLog, WalCorruptionError, WalRecord
from repro.cluster.worker import (
    RecoveryError,
    ShardDurability,
    WorkerConfig,
    WorkerHTTPServer,
    WorkerService,
    serve_worker,
)

__all__ = [
    "CircuitBreaker",
    "DeltaLog",
    "HashRing",
    "RecoveryError",
    "RouterConfig",
    "RouterHTTPServer",
    "RouterService",
    "ShardDurability",
    "SnapshotError",
    "WalCorruptionError",
    "WalRecord",
    "WorkerConfig",
    "WorkerHTTPServer",
    "WorkerService",
    "load_snapshot",
    "load_snapshot_document",
    "serve_router",
    "serve_worker",
    "write_snapshot",
]
