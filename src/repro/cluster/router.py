"""The cluster router: one front door consistent-hashing shards to workers.

The router speaks the *same* wire protocol as a single-process service —
``/clean``, ``/deltas``, ``/jobs/<id>``, ``/healthz``, ``/stats``,
``/metrics`` — so existing clients (and :class:`ServiceClient`) work against
a fleet unchanged.  Per request it decodes just enough to compute the
shard fingerprint (the same :class:`~repro.service.pool.SessionPool`
routing the workers use, so router and worker always agree on identity),
picks the owner off a :class:`~repro.cluster.ring.HashRing` over the live
workers, and proxies the raw body through, tagging it with an
``X-Repro-Request-Id`` so the worker's job spans stitch to the router's
``router.route`` spans.

Membership is heartbeat-driven: workers POST ``/cluster/heartbeat`` every
second or so; a worker unseen for ``dead_after`` seconds leaves the ring.
Requests owned by a dead or missing worker answer ``503`` with
``Retry-After`` — a :class:`ServiceClient` with ``retries=`` rides the gap
out, which is what makes rebalances and worker restarts invisible to
callers.  A background loop also *rebalances*: when the ring says a shard a
worker reported belongs elsewhere (a node joined or left), the router asks
the current holder to drain it (``POST /cluster/drain`` → checkpoint +
evict); the rightful owner recovers it lazily from the shared data dir on
the next request.

Job ids are namespaced ``<worker_id>:<job_id>`` on the way out and split on
the way back in, so ``GET /jobs/<id>`` finds its worker without any router
state.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro.obs import MetricsRegistry, Tracer
from repro.service.codec import decode_clean_request, decode_delta_request
from repro.service.errors import BadRequestError, PoolExhaustedError
from repro.service.http import (
    ServiceHTTPServer,
    _error_payload,
    _parse_deadline_header,
)
from repro.service.pool import SessionPool
from repro.cluster.breaker import STATE_VALUES, CircuitBreaker
from repro.cluster.httpclient import http_json, http_request
from repro.cluster.ring import HashRing

log = logging.getLogger("repro.cluster.router")


@dataclass
class RouterConfig:
    """Operational knobs of one router process."""

    #: seconds without a heartbeat before a worker leaves the ring
    dead_after: float = 3.0
    #: seconds between rebalance / membership-prune sweeps
    rebalance_interval: float = 1.0
    #: proxy timeout towards workers (covers ``wait=true`` cleaning jobs)
    proxy_timeout: float = 600.0
    #: distinct routing identities the router keeps warm sessions for
    max_route_shards: int = 4096
    #: record ``router.route`` spans in memory (tests read them back)
    trace: bool = False
    #: consecutive forward failures before a worker's circuit opens
    breaker_threshold: int = 5
    #: seconds an open circuit sheds before letting one probe through
    breaker_reset_after: float = 2.0


@dataclass
class WorkerInfo:
    """One worker's last-heartbeat view."""

    worker_id: str
    host: str
    port: int
    shards: list = field(default_factory=list)
    pending: int = 0
    last_seen: float = field(default_factory=time.monotonic)

    def age(self) -> float:
        return time.monotonic() - self.last_seen


class RouterService:
    """Membership, routing and fan-in logic behind the router's front end."""

    def __init__(self, config: Optional[RouterConfig] = None):
        self.config = config or RouterConfig()
        #: routing-only pool: it never runs a job, it exists so the router
        #: computes the *same* shard fingerprints the workers do
        self.pool = SessionPool(max_shards=self.config.max_route_shards)
        self.ring = HashRing()
        self.workers: "dict[str, WorkerInfo]" = {}
        #: worker id → circuit breaker over forward outcomes; an open
        #: circuit answers 503 immediately instead of waiting on a worker
        #: that keeps refusing connections
        self.breakers: "dict[str, CircuitBreaker]" = {}
        self._started_at = time.monotonic()
        self._seq = 0
        self._nonce = uuid.uuid4().hex[:8]
        self._rebalance_task: Optional[asyncio.Task] = None
        self.tracer: Optional[Tracer] = Tracer() if self.config.trace else None
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "repro_router_requests_total",
            "requests proxied by the router, by route, worker and status",
            ("route", "worker", "status"),
        )
        self._rebalanced_total = self.metrics.counter(
            "repro_router_rebalanced_shards_total",
            "shard drains the rebalancer requested",
        )
        self.metrics.register_collector(self._membership_families)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "RouterService":
        if self._rebalance_task is None:
            self._rebalance_task = asyncio.get_running_loop().create_task(
                self._rebalance_loop(), name="router-rebalance"
            )
        return self

    async def stop(self) -> None:
        if self._rebalance_task is not None:
            self._rebalance_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._rebalance_task
            self._rebalance_task = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def heartbeat(self, payload: dict) -> dict:
        """Register/refresh one worker from its heartbeat body."""
        worker_id = payload.get("worker_id")
        port = payload.get("port")
        if not isinstance(worker_id, str) or not worker_id:
            raise BadRequestError("a heartbeat needs a 'worker_id'")
        if not isinstance(port, int):
            raise BadRequestError("a heartbeat needs an integer 'port'")
        host = payload.get("host") or "127.0.0.1"
        shards = payload.get("shards")
        info = self.workers.get(worker_id)
        if info is None:
            info = WorkerInfo(worker_id=worker_id, host=host, port=port)
            self.workers[worker_id] = info
            self.ring.add(worker_id)
            log.info("worker %s joined at %s:%d", worker_id, host, port)
        info.host, info.port = host, port
        if isinstance(shards, list):
            info.shards = [s for s in shards if isinstance(s, str)]
        info.pending = int(payload.get("pending") or 0)
        info.last_seen = time.monotonic()
        return {"workers": sorted(self.workers), "dead_after": self.config.dead_after}

    def live_workers(self) -> "dict[str, WorkerInfo]":
        return {
            worker_id: info
            for worker_id, info in self.workers.items()
            if info.age() <= self.config.dead_after
        }

    def owner_of(self, fingerprint: str) -> Optional[WorkerInfo]:
        """The live worker the ring assigns this shard to (None = no one)."""
        worker_id = self.ring.assign(fingerprint)
        if worker_id is None:
            return None
        info = self.workers.get(worker_id)
        if info is None or info.age() > self.config.dead_after:
            return None
        return info

    def _breaker(self, worker_id: str) -> CircuitBreaker:
        breaker = self.breakers.get(worker_id)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.config.breaker_threshold,
                reset_after=self.config.breaker_reset_after,
            )
            self.breakers[worker_id] = breaker
        return breaker

    def _prune_dead(self) -> None:
        for worker_id, info in list(self.workers.items()):
            if info.age() > 3 * self.config.dead_after:
                del self.workers[worker_id]
                self.ring.remove(worker_id)
                self.breakers.pop(worker_id, None)
                log.info("worker %s pruned (last seen %.1fs ago)", worker_id, info.age())

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    async def _rebalance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.rebalance_interval)
            try:
                self._prune_dead()
                await self.rebalance_once()
            except Exception:  # noqa: BLE001 - the loop must survive sweeps
                log.exception("rebalance sweep failed")

    async def rebalance_once(self) -> int:
        """Ask holders of misplaced shards to drain them; returns how many."""
        live = self.live_workers()
        drained = 0
        for info in live.values():
            for fingerprint in list(info.shards):
                target = self.ring.assign(fingerprint)
                if target is None or target == info.worker_id or target not in live:
                    continue
                try:
                    await http_json(
                        info.host,
                        info.port,
                        "POST",
                        "/cluster/drain",
                        payload={"fingerprint": fingerprint},
                        timeout=self.config.proxy_timeout,
                    )
                except (ConnectionError, asyncio.TimeoutError):
                    continue
                self._rebalanced_total.inc()
                drained += 1
                log.info(
                    "shard %s drained off %s (ring says %s)",
                    fingerprint[:10], info.worker_id, target,
                )
        return drained

    # ------------------------------------------------------------------
    # routing + proxying
    # ------------------------------------------------------------------
    def next_request_id(self) -> str:
        self._seq += 1
        return f"{self._nonce}-{self._seq:06d}"

    def route_fingerprint(self, path: str, payload: dict) -> str:
        """The shard fingerprint of one submit body (router ⇔ worker agree).

        The router's pool builds the same session identity a worker would,
        so the ring key is exactly the worker-side shard fingerprint — which
        is also what workers report in heartbeats, closing the loop for the
        ownership gauge and the rebalancer.
        """
        # routing only needs identity fields; deltas/tables can stay unvalidated
        if path == "/clean":
            spec = decode_clean_request(payload)
        else:
            spec = decode_delta_request(payload)
        return self.pool.route(spec).key.fingerprint

    async def proxy_submit(
        self, path: str, body: bytes, headers: Optional[dict] = None
    ) -> tuple:
        started = time.monotonic()
        budget = _parse_deadline_header(headers)
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(payload, dict):
                raise BadRequestError("the request body must be a JSON object")
            fingerprint = self.route_fingerprint(path, payload)
        except BadRequestError as exc:
            return 400, _error_payload("bad_request", str(exc)), {}
        except KeyError as exc:
            message = exc.args[0] if exc.args else str(exc)
            return 400, _error_payload("unknown_name", str(message)), {}
        except PoolExhaustedError as exc:
            return 503, _error_payload("pool_exhausted", str(exc)), {"Retry-After": "1"}
        except ValueError as exc:
            return 400, _error_payload("bad_json", f"request body is not JSON: {exc}"), {}
        if budget is not None and budget <= 0:
            return 504, _error_payload(
                "deadline_exceeded",
                "the request's deadline budget was already spent on arrival",
            ), {}
        request_id = self.next_request_id()
        owner = self.owner_of(fingerprint)
        root = None
        if self.tracer is not None:
            root = self.tracer.begin(
                "router.route",
                parent=None,
                route=path,
                request_id=request_id,
                fingerprint=fingerprint,
                worker=owner.worker_id if owner else None,
            )
        try:
            if owner is None:
                self._requests_total.labels(
                    route=path, worker="none", status="503"
                ).inc()
                return 503, _error_payload(
                    "no_worker", f"no live worker owns shard {fingerprint[:10]}"
                ), {"Retry-After": "1"}
            breaker = self._breaker(owner.worker_id)
            if not breaker.allow():
                self._requests_total.labels(
                    route=path, worker=owner.worker_id, status="breaker_open"
                ).inc()
                return 503, _error_payload(
                    "circuit_open",
                    f"worker {owner.worker_id} keeps failing; circuit open",
                ), {"Retry-After": f"{self.config.breaker_reset_after:g}"}
            # the worker gets the budget minus what routing already spent,
            # so every hop's deadline shrinks end to end
            remaining = None
            if budget is not None:
                remaining = budget - (time.monotonic() - started)
                if remaining <= 0:
                    return 504, _error_payload(
                        "deadline_exceeded",
                        "the request's deadline budget was spent routing",
                    ), {}
            status, payload = await self._forward(
                owner, "POST", path, body, request_id, deadline=remaining
            )
            if status is None:
                if budget is not None and time.monotonic() - started >= budget:
                    return 504, _error_payload(
                        "deadline_exceeded",
                        f"worker {owner.worker_id} did not answer within the "
                        "request's deadline budget",
                    ), {}
                return 503, _error_payload(
                    "worker_unreachable", f"worker {owner.worker_id} did not answer"
                ), {"Retry-After": "1"}
            self._rewrite_job(payload, owner.worker_id)
            return status, payload, {}
        finally:
            if root is not None:
                self.tracer.end(root)

    async def proxy_job(self, job_id: str) -> tuple:
        worker_id, _, local_id = job_id.partition(":")
        if not local_id:
            return 404, _error_payload(
                "unknown_job",
                f"cluster job ids look like <worker>:<job>, got {job_id!r}",
            ), {}
        info = self.workers.get(worker_id)
        if info is None or info.age() > self.config.dead_after:
            return 503, _error_payload(
                "no_worker", f"worker {worker_id!r} is not live"
            ), {"Retry-After": "1"}
        if not self._breaker(worker_id).allow():
            return 503, _error_payload(
                "circuit_open", f"worker {worker_id} keeps failing; circuit open"
            ), {"Retry-After": f"{self.config.breaker_reset_after:g}"}
        status, payload = await self._forward(
            info, "GET", f"/jobs/{local_id}", b"", None
        )
        if status is None:
            return 503, _error_payload(
                "worker_unreachable", f"worker {worker_id} did not answer"
            ), {"Retry-After": "1"}
        self._rewrite_job(payload, worker_id)
        return status, payload, {}

    async def _forward(
        self,
        info: WorkerInfo,
        method: str,
        path: str,
        body: bytes,
        request_id: Optional[str],
        deadline: Optional[float] = None,
    ) -> tuple:
        headers = {"Content-Type": "application/json", "X-Repro-Worker": info.worker_id}
        if request_id is not None:
            headers["X-Repro-Request-Id"] = request_id
        timeout = self.config.proxy_timeout
        if deadline is not None:
            headers["X-Repro-Deadline"] = f"{deadline:.6f}"
            # no point waiting past the caller's budget
            timeout = min(timeout, max(deadline, 0.001))
        try:
            status, _, raw = await http_request(
                info.host,
                info.port,
                method,
                path,
                body=body,
                headers=headers,
                timeout=timeout,
            )
        except (ConnectionError, asyncio.TimeoutError):
            self._breaker(info.worker_id).record_failure()
            self._requests_total.labels(
                route=path, worker=info.worker_id, status="unreachable"
            ).inc()
            return None, None
        # any HTTP answer — even a 5xx — proves the worker is reachable
        # and serving; the breaker watches transport health, not job health
        self._breaker(info.worker_id).record_success()
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        self._requests_total.labels(
            route=path, worker=info.worker_id, status=str(status)
        ).inc()
        return status, payload

    @staticmethod
    def _rewrite_job(payload, worker_id: str) -> None:
        """Namespace job ids with their worker, in place."""
        if not isinstance(payload, dict):
            return
        job = payload.get("job")
        if isinstance(job, dict) and isinstance(job.get("id"), str):
            if ":" not in job["id"]:
                job["id"] = f"{worker_id}:{job['id']}"

    # ------------------------------------------------------------------
    # fan-in introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        live = self.live_workers()
        return {
            "status": "ok" if live else "no_workers",
            "role": "router",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": {
                worker_id: {
                    "host": info.host,
                    "port": info.port,
                    "live": worker_id in live,
                    "age_s": round(info.age(), 3),
                    "shards": len(info.shards),
                    "pending": info.pending,
                }
                for worker_id, info in self.workers.items()
            },
        }

    async def stats(self) -> dict:
        """Router view plus every live worker's ``/stats``, keyed by id."""
        live = self.live_workers()
        results = await asyncio.gather(
            *(
                http_json(
                    info.host, info.port, "GET", "/stats",
                    timeout=self.config.proxy_timeout,
                )
                for info in live.values()
            ),
            return_exceptions=True,
        )
        workers = {}
        pending_total = 0
        for info, outcome in zip(live.values(), results):
            if isinstance(outcome, BaseException):
                workers[info.worker_id] = {"error": str(outcome)}
                continue
            _status, payload = outcome
            workers[info.worker_id] = payload
            pending_total += int(payload.get("pending") or 0)
        return {
            **self.healthz(),
            "pending_total": pending_total,
            "shard_owners": {
                info.worker_id: list(info.shards) for info in live.values()
            },
            "workers_stats": workers,
        }

    async def metrics_text(self) -> str:
        """Merged exposition: router metrics + per-worker relabelled metrics."""
        live = self.live_workers()
        results = await asyncio.gather(
            *(
                http_request(
                    info.host, info.port, "GET", "/metrics",
                    timeout=self.config.proxy_timeout,
                )
                for info in live.values()
            ),
            return_exceptions=True,
        )
        sections = []
        for info, outcome in zip(live.values(), results):
            if isinstance(outcome, BaseException):
                continue
            _status, _headers, raw = outcome
            sections.append((info.worker_id, raw.decode("utf-8")))
        return self.metrics.render_prometheus() + merge_worker_metrics(sections)

    def _membership_families(self) -> list:
        live = self.live_workers()
        return [
            {
                "name": "repro_cluster_workers",
                "type": "gauge",
                "help": "live workers on the ring",
                "samples": [({}, len(live))],
            },
            {
                "name": "repro_cluster_shards_owned",
                "type": "gauge",
                "help": "streaming shards each live worker reported owning",
                "samples": [
                    ({"worker": info.worker_id}, len(info.shards))
                    for info in live.values()
                ],
            },
            {
                "name": "repro_breaker_state",
                "type": "gauge",
                "help": "per-worker circuit state (0=closed, 1=half_open, 2=open)",
                "samples": [
                    ({"worker": worker_id}, STATE_VALUES[breaker.state])
                    for worker_id, breaker in sorted(self.breakers.items())
                ],
            },
        ]


def merge_worker_metrics(sections: "list[tuple[str, str]]") -> str:
    """Concatenate Prometheus texts, tagging samples with ``worker="<id>"``.

    ``# HELP``/``# TYPE`` lines are emitted once per metric name (first
    worker wins), and every sample line gains a ``worker`` label so series
    from different workers stay distinct after the merge.
    """
    lines: "list[str]" = []
    described: set = set()
    for worker_id, text in sections:
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                name = parts[2] if len(parts) > 2 else ""
                if (parts[1] if len(parts) > 1 else "", name) in described:
                    continue
                described.add((parts[1] if len(parts) > 1 else "", name))
                lines.append(line)
                continue
            lines.append(_inject_label(line, "worker", worker_id))
    return ("\n".join(lines) + "\n") if lines else ""


def _inject_label(sample_line: str, label: str, value: str) -> str:
    """``name{a="x"} 1`` → ``name{a="x",worker="w1"} 1`` (and the no-brace form)."""
    name_part, _, rest = sample_line.partition(" ")
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    if name_part.endswith("}"):
        body = name_part[:-1]
        sep = "" if body.endswith("{") else ","
        name_part = f'{body}{sep}{label}="{escaped}"}}'
    else:
        name_part = f'{name_part}{{{label}="{escaped}"}}'
    return f"{name_part} {rest}" if rest else name_part


class RouterHTTPServer(ServiceHTTPServer):
    """The router's HTTP front end (reuses the service's connection plumbing)."""

    def __init__(
        self,
        router: RouterService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ):
        # the base class's service-bound routes are fully overridden below
        super().__init__(service=None, host=host, port=port)
        self.router = router

    async def _dispatch(self, method, path, body, headers=None):
        path = path.split("?", 1)[0]
        if path == "/cluster/heartbeat" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8") or "{}")
                return 200, self.router.heartbeat(payload), {}
            except BadRequestError as exc:
                return 400, _error_payload("bad_request", str(exc)), {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, _error_payload("bad_json", f"not JSON: {exc}"), {}
        if path == "/healthz" and method == "GET":
            return 200, self.router.healthz(), {}
        if path == "/stats" and method == "GET":
            return 200, await self.router.stats(), {}
        if path == "/metrics" and method == "GET":
            return 200, await self.router.metrics_text(), {}
        if path.startswith("/jobs/") and method == "GET":
            return await self.router.proxy_job(path[len("/jobs/"):])
        if path in ("/clean", "/deltas"):
            if method != "POST":
                return 405, _error_payload(
                    "method_not_allowed", f"{path} is POST-only"
                ), {}
            return await self.router.proxy_submit(path, body, headers)
        return 404, _error_payload("not_found", f"no route {method} {path}"), {}


# ----------------------------------------------------------------------
# process entry point
# ----------------------------------------------------------------------
async def serve_router(
    host: str = "127.0.0.1",
    port: int = 8080,
    config: Optional[RouterConfig] = None,
) -> None:
    """Run a router until SIGTERM/SIGINT (mirrors the service's ``serve``)."""
    router = RouterService(config)
    await router.start()
    http = RouterHTTPServer(router, host, port)
    await http.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
    try:
        await stop.wait()
        log.info("shutdown signal received; stopping router")
    finally:
        for signum in installed:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.remove_signal_handler(signum)
        await http.stop()
        await router.stop()
