"""Atomic per-shard snapshots bounding WAL replay.

A snapshot is one JSON document: the shard's identity (its pool
fingerprint plus the session :meth:`fingerprint` envelope) and the
streaming engine's :meth:`state_dict`.  Writes are atomic — temp file in
the same directory, flush, fsync, ``os.replace`` — so a crash mid-write
leaves the previous snapshot intact; a reader only ever sees a complete
document or none.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional, Union

from repro.faults import INJECTOR, InjectedIOError

FORMAT = 1


class SnapshotError(RuntimeError):
    """A snapshot exists but cannot be trusted for this shard."""


def write_snapshot(
    path: Union[str, Path],
    shard_fingerprint: str,
    envelope: dict,
    applied_keys: Optional[dict] = None,
) -> None:
    """Atomically persist ``envelope`` (a session snapshot envelope).

    ``applied_keys`` — the shard's idempotency-key memo — rides along in
    the document (checkpointing resets the WAL, which would otherwise
    forget which requests were already applied).  Absent in pre-1.7
    snapshots; readers treat a missing section as empty.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format": FORMAT,
        "shard": shard_fingerprint,
        "envelope": envelope,
    }
    if applied_keys:
        document["applied_keys"] = dict(applied_keys)
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    if INJECTOR.active:
        decision = INJECTOR.decide("snapshot.write", shard=shard_fingerprint)
        if decision is not None:
            if decision.action == "delay":
                time.sleep(decision.delay_s)
            elif decision.action == "corrupt":
                # a torn document that still replaces atomically — the next
                # load must reject it loudly, never restore half a state
                blob = blob[: max(1, len(blob) // 2)]
            else:
                raise InjectedIOError(
                    f"injected snapshot.write failure (shard {shard_fingerprint})"
                )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot_document(
    path: Union[str, Path], shard_fingerprint: Optional[str] = None
) -> Optional[dict]:
    """The full snapshot document, or None when no snapshot exists.

    Raises :class:`SnapshotError` on a malformed document or — when
    ``shard_fingerprint`` is given — on an identity mismatch: restoring a
    different shard's state would silently change cleaning behaviour.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise SnapshotError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != FORMAT:
        raise SnapshotError(f"{path} has unsupported snapshot format")
    if shard_fingerprint is not None and document.get("shard") != shard_fingerprint:
        raise SnapshotError(
            f"{path} belongs to shard {document.get('shard')!r}, "
            f"not {shard_fingerprint!r}"
        )
    envelope = document.get("envelope")
    if not isinstance(envelope, dict):
        raise SnapshotError(f"{path} has no snapshot envelope")
    return document


def load_snapshot(
    path: Union[str, Path], shard_fingerprint: Optional[str] = None
) -> Optional[dict]:
    """The stored envelope, or None when no snapshot exists (see above)."""
    document = load_snapshot_document(path, shard_fingerprint)
    return None if document is None else document["envelope"]
