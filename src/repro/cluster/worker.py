"""The cluster worker: a cleaning service with durable, recoverable shards.

Three pieces live here:

* :class:`ShardDurability` — the durability hooks a
  :class:`~repro.service.service.CleaningService` calls around its streaming
  shards: WAL append + fsync before every acknowledgement, periodic
  snapshots, and crash recovery (snapshot restore + WAL tail replay through
  the engine's exact-replay path) when a shard's engine is created.
* :class:`WorkerService` — a ``CleaningService`` wired to one durability
  layer that **eagerly** recovers every persisted shard at boot, so a
  ``kill -9``'d worker comes back already holding its streams.
* :class:`WorkerHTTPServer` — the service's HTTP front end plus the
  ``/cluster/*`` control routes (drain/handoff, shard inventory, stream
  introspection) and the heartbeat loop that registers the worker with the
  router.

Recovery invariant (the tentpole property, asserted by the tests): after a
crash, replaying the snapshot plus the WAL tail yields a shard whose masked
``report_signature`` — and cleaned table — are byte-identical to a worker
that never died.  This holds because the WAL records *applied* micro-batches
(coalescing decisions included) and
:meth:`~repro.streaming.cleaner.StreamingMLNClean.restore_state` rebuilds
every path-dependent accumulator the masked report can observe.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.faults import INJECTOR
from repro.obs import RECOVERY_REPLAYED_DELTAS, RECOVERY_RUNS, span
from repro.service.codec import (
    DeltaRequestSpec,
    decode_delta_routing,
    delta_routing_payload,
    report_signature,
)
from repro.service.errors import ShardDegradedError
from repro.service.http import ServiceHTTPServer, _error_payload
from repro.service.pool import Shard
from repro.service.service import CleaningService, DurabilityError, ServiceConfig
from repro.streaming.cleaner import StreamingMLNClean
from repro.streaming.delta import DeltaBatch
from repro.cluster.httpclient import http_json
from repro.cluster.snapshot import load_snapshot_document, write_snapshot
from repro.cluster.wal import DeltaLog, WalRecord

log = logging.getLogger("repro.cluster.worker")


class RecoveryError(RuntimeError):
    """Persisted shard state exists but cannot be replayed faithfully."""


@dataclass
class WorkerConfig:
    """Identity and durability knobs of one worker process."""

    #: stable name the router addresses this worker by (ring membership)
    worker_id: str
    #: root of the shared durable state; every worker of one cluster points
    #: at the same directory so any of them can recover any shard
    data_dir: Union[str, Path]
    #: engine ticks between snapshots (the WAL resets after each); higher
    #: values trade longer replay for fewer full-state writes
    snapshot_every: int = 8
    #: ``host:port`` of the router to heartbeat to (None = standalone)
    router: Optional[str] = None
    #: seconds between heartbeats
    heartbeat_interval: float = 1.0
    #: seconds a shard whose WAL failed sheds deltas before probing again
    degraded_retry_after: float = 1.0

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise ValueError("a worker needs a non-empty worker_id")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")


class ShardDurability:
    """Per-shard WAL + snapshot persistence behind the service's hook seam.

    Layout under ``data_dir``::

        shards/<fingerprint>/spec.json      routing identity (rebuilds the shard)
        shards/<fingerprint>/snapshot.json  engine state at the last checkpoint
        shards/<fingerprint>/wal.log        applied micro-batches since then

    The directory is keyed by the pool's shard fingerprint, so ownership can
    move between workers: whoever routes the shard next recovers it from
    here.  All methods run on the service's executor threads; per-shard
    serialization is inherited from the service (one worker task per shard),
    and the handle map has its own lock for the attach/detach edges.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        snapshot_every: int = 8,
        degraded_retry_after: float = 1.0,
    ):
        self.data_dir = Path(data_dir)
        self.snapshot_every = snapshot_every
        #: seconds a degraded shard sheds deltas before the next tick may
        #: probe the disk again (also the 503's ``Retry-After`` hint)
        self.degraded_retry_after = degraded_retry_after
        self._logs: "dict[str, DeltaLog]" = {}
        #: fingerprint → monotonic stamp of the WAL failure that degraded it
        self._degraded: "dict[str, float]" = {}
        self._lock = threading.Lock()

    def shard_dir(self, fingerprint: str) -> Path:
        return self.data_dir / "shards" / fingerprint

    # ------------------------------------------------------------------
    # the service's hook seam
    # ------------------------------------------------------------------
    def attach(
        self, shard: Shard, engine: StreamingMLNClean, spec: DeltaRequestSpec
    ) -> None:
        """Adopt a freshly created engine: persist identity, recover state.

        Called by the service right after a shard's streaming engine is
        created and before any delta is applied to it.  If durable state
        exists for this fingerprint the engine is rebuilt from it — snapshot
        restore first, then WAL tail replay through ``apply_batch`` —
        otherwise this marks a cold start and just opens the WAL.
        """
        fingerprint = shard.key.fingerprint
        directory = self.shard_dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        self._persist_spec(directory / "spec.json", spec)
        wal = DeltaLog(directory / "wal.log", name=fingerprint)
        with self._lock:
            self._logs[fingerprint] = wal
        replayed = 0
        source = "cold"
        with span("worker.recover", shard=shard.key.label, fingerprint=fingerprint) as rec:
            document = load_snapshot_document(directory / "snapshot.json", fingerprint)
            if document is not None:
                try:
                    state = shard.session.check_snapshot(document["envelope"])
                    engine.restore_state(state)
                except ValueError as exc:
                    raise RecoveryError(
                        f"shard {shard.key.label}: snapshot rejected: {exc}"
                    ) from exc
                # the snapshot carries the idempotency memo (the WAL it
                # bounded was reset); re-arm the duplicate filter with it
                for key, memo in (document.get("applied_keys") or {}).items():
                    shard.remember_key(key, memo)
                source = "snapshot"
            for record in wal.replay():
                if record.seq < engine.batches_applied:
                    # the snapshot already contains this tick (a crash after
                    # checkpoint but before the WAL reset): skip, don't re-apply
                    continue
                if record.seq > engine.batches_applied:
                    raise RecoveryError(
                        f"shard {shard.key.label}: WAL expects tick "
                        f"{engine.batches_applied} next but holds {record.seq} "
                        "(acknowledged history is missing)"
                    )
                try:
                    engine.apply_batch(DeltaBatch.from_json_list(record.deltas))
                except (KeyError, ValueError) as exc:
                    raise RecoveryError(
                        f"shard {shard.key.label}: WAL tick {record.seq} no "
                        f"longer applies: {exc}"
                    ) from exc
                for key in record.keys:
                    # the demuxed result died with the old process; the key
                    # still dedupes (retries get a duplicate acknowledgement)
                    shard.remember_key(key, None)
                replayed += len(record.deltas)
                source = "snapshot+wal" if source == "snapshot" else "wal"
            rec.set(source=source, replayed_deltas=replayed, ticks=engine.batches_applied)
        if replayed:
            RECOVERY_REPLAYED_DELTAS.inc(replayed)
        RECOVERY_RUNS.labels(source=source).inc()
        if source != "cold":
            log.info(
                "recovered shard %s from %s (%d deltas replayed, now at tick %d)",
                shard.key.label, source, replayed, engine.batches_applied,
            )

    def ensure_writable(self, shard: Shard) -> None:
        """Refuse deltas while the shard's durable store is degraded.

        Raises :class:`ShardDegradedError` (the front end's 503 +
        ``Retry-After``) within ``degraded_retry_after`` seconds of the WAL
        failure.  The first call after the window *clears* the mark — that
        tick becomes the probe: its engine re-attaches and its WAL append
        either succeeds (recovered) or re-enters degraded mode.
        """
        fingerprint = shard.key.fingerprint
        with self._lock:
            since = self._degraded.get(fingerprint)
            if since is None:
                return
            if time.monotonic() - since < self.degraded_retry_after:
                raise ShardDegradedError(fingerprint, self.degraded_retry_after)
            del self._degraded[fingerprint]
        log.info(
            "shard %s probing its durable store after degraded mode",
            fingerprint[:10],
        )

    def degraded_fingerprints(self) -> list:
        """Fingerprints currently shedding deltas (for ``/healthz``)."""
        with self._lock:
            return sorted(self._degraded)

    def _enter_degraded(self, shard: Shard) -> None:
        """A WAL write failed: shed this shard's deltas until a probe passes."""
        fingerprint = shard.key.fingerprint
        with self._lock:
            self._degraded[fingerprint] = time.monotonic()
            wal = self._logs.pop(fingerprint, None)
        if wal is not None:
            with contextlib.suppress(OSError):
                wal.close()
        log.warning(
            "shard %s entered durability=degraded (WAL write failed); "
            "shedding deltas for %.1fs",
            fingerprint[:10], self.degraded_retry_after,
        )

    def log_tick(self, shard: Shard, batch: DeltaBatch, report, keys=()) -> None:
        """Make one applied micro-batch durable *before* its jobs are acked."""
        wal = self._log_for(shard)
        try:
            wal.append(
                WalRecord(
                    seq=report.sequence,
                    deltas=batch.to_json_list(),
                    keys=list(keys),
                )
            )
        except OSError as exc:
            self._enter_degraded(shard)
            raise DurabilityError(
                f"shard {shard.key.label}: WAL append failed "
                f"({type(exc).__name__}: {exc}); shard is degraded"
            ) from exc
        if (report.sequence + 1) % self.snapshot_every == 0:
            try:
                self.checkpoint(shard)
            except OSError as exc:
                # the tick IS durable (its WAL frame fsynced); a failed
                # snapshot only means replay stays longer — log, don't shed
                log.warning(
                    "shard %s: checkpoint failed (%s: %s); WAL keeps growing "
                    "until one succeeds",
                    shard.key.label, type(exc).__name__, exc,
                )

    def checkpoint(self, shard: Shard) -> None:
        """Snapshot the shard's engine state and reset its WAL."""
        engine = shard.stream
        if engine is None:
            return
        fingerprint = shard.key.fingerprint
        envelope = shard.session.snapshot_envelope(engine.state_dict())
        write_snapshot(
            self.shard_dir(fingerprint) / "snapshot.json",
            fingerprint,
            envelope,
            applied_keys=shard.applied_keys,
        )
        with self._lock:
            wal = self._logs.get(fingerprint)
        if wal is not None:
            wal.reset()

    def detach(self, shard: Shard) -> None:
        """Forget a shard's open WAL handle (eviction / handoff)."""
        with self._lock:
            wal = self._logs.pop(shard.key.fingerprint, None)
        if wal is not None:
            wal.close()

    def close(self) -> None:
        with self._lock:
            logs, self._logs = list(self._logs.values()), {}
        for wal in logs:
            wal.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _log_for(self, shard: Shard) -> DeltaLog:
        with self._lock:
            wal = self._logs.get(shard.key.fingerprint)
        if wal is None:
            raise RuntimeError(
                f"shard {shard.key.label} has no attached WAL; "
                "log_tick before attach is a service-side bug"
            )
        return wal

    @staticmethod
    def _persist_spec(path: Path, spec: DeltaRequestSpec) -> None:
        """Write the shard's routing identity once (atomic, first writer wins)."""
        if path.exists():
            return
        try:
            payload = delta_routing_payload(spec)
        except ValueError:
            # an in-process spec with an inline config object is not
            # wire-expressible; the shard still gets WAL + snapshots, it just
            # cannot be eagerly recovered at boot (only lazily, on routing)
            return
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)


class WorkerService(CleaningService):
    """A cleaning service whose streaming shards are durable and recoverable."""

    def __init__(
        self,
        worker_config: WorkerConfig,
        config: Optional[ServiceConfig] = None,
    ):
        super().__init__(config)
        self.worker_config = worker_config
        self.durability = ShardDurability(
            worker_config.data_dir,
            snapshot_every=worker_config.snapshot_every,
            degraded_retry_after=worker_config.degraded_retry_after,
        )

    async def start(self) -> "WorkerService":
        await super().start()
        loop = asyncio.get_running_loop()
        recovered = await loop.run_in_executor(self._executor, self.recover_all)
        if recovered:
            log.info(
                "worker %s recovered %d shard(s) at boot",
                self.worker_config.worker_id, recovered,
            )
        return self

    async def stop(self) -> None:
        await super().stop()
        self.durability.close()

    def recover_all(self) -> int:
        """Rebuild every persisted shard before traffic arrives (boot path).

        Scans ``data_dir/shards/*/spec.json``, routes each identity back
        through the pool (rebuilding its warm session), creates the
        streaming engine and lets :meth:`ShardDurability.attach` replay the
        durable state into it.  Returns the number of shards recovered.
        """
        shards_root = self.durability.data_dir / "shards"
        if not shards_root.is_dir():
            return 0
        recovered = 0
        for spec_path in sorted(shards_root.glob("*/spec.json")):
            fingerprint = spec_path.parent.name
            spec = decode_delta_routing(
                json.loads(spec_path.read_text(encoding="utf-8"))
            )
            shard = self.pool.route(spec)
            if shard.key.fingerprint != fingerprint:
                raise RecoveryError(
                    f"{spec_path} routes to shard {shard.key.fingerprint}, not "
                    f"{fingerprint}; the persisted identity no longer matches"
                )
            if shard.stream is not None:
                continue
            engine = shard.stream_engine(self.pool.schema_for(spec))
            try:
                self.durability.attach(shard, engine, spec)
            except Exception:
                shard.stream = None
                raise
            recovered += 1
        return recovered

    def shard_fingerprints(self) -> list:
        """Fingerprints of the shards this worker currently holds."""
        return [s.key.fingerprint for s in self.pool.shards()]

    def healthz(self) -> dict:
        payload = super().healthz()
        payload["worker_id"] = self.worker_config.worker_id
        degraded = self.durability.degraded_fingerprints()
        if degraded:
            payload["degraded_shards"] = degraded
        return payload


class WorkerHTTPServer(ServiceHTTPServer):
    """The service front end plus ``/cluster/*`` control routes + heartbeat.

    Control routes (all JSON):

    * ``GET /cluster/info`` — worker id and full shard fingerprints (what
      the router's ownership gauge and rebalancer consume),
    * ``POST /cluster/drain`` ``{"fingerprint": ...}`` — drain one shard,
      checkpoint it and evict it (the handoff primitive; the next owner
      recovers it from the shared data dir),
    * ``GET /cluster/streams/<fingerprint>`` — the stream's masked report
      signature and cleaned table (recovery-equivalence assertions).
    """

    def __init__(
        self,
        service: WorkerService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ):
        super().__init__(service, host, port)
        self._heartbeat_task: Optional[asyncio.Task] = None

    @property
    def worker_config(self) -> WorkerConfig:
        return self.service.worker_config

    async def start(self) -> "WorkerHTTPServer":
        await super().start()
        if self.worker_config.router:
            self._heartbeat_task = asyncio.get_running_loop().create_task(
                self._heartbeat_loop(), name="worker-heartbeat"
            )
        return self

    async def stop(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._heartbeat_task
            self._heartbeat_task = None
        await super().stop()

    # ------------------------------------------------------------------
    # cluster routes
    # ------------------------------------------------------------------
    async def _dispatch_extra(self, method, path, body, headers):
        if path == "/cluster/info" and method == "GET":
            return 200, self._info(), {}
        if path == "/cluster/drain" and method == "POST":
            return await self._drain(body)
        if path.startswith("/cluster/streams/") and method == "GET":
            return await self._stream_state(path[len("/cluster/streams/"):])
        if path.startswith("/cluster/"):
            return 404, _error_payload("not_found", f"no route {method} {path}"), {}
        return None

    def _info(self) -> dict:
        # healthz first: its summary "shards" count must not clobber the
        # full fingerprint list the router's rebalancer consumes
        return {
            **self.service.healthz(),
            "worker_id": self.worker_config.worker_id,
            "host": self.host,
            "port": self.port,
            "shards": self.service.shard_fingerprints(),
        }

    async def _drain(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_payload("bad_json", f"not JSON: {exc}"), {}
        fingerprint = payload.get("fingerprint") if isinstance(payload, dict) else None
        if not isinstance(fingerprint, str) or not fingerprint:
            return 400, _error_payload("bad_request", "'fingerprint' is required"), {}
        released = await self.service.release_shard(fingerprint)
        return 200, {"released": released, "fingerprint": fingerprint}, {}

    async def _stream_state(self, fingerprint: str):
        shard = next(
            (
                s
                for s in self.service.pool.shards()
                if s.key.fingerprint == fingerprint
            ),
            None,
        )
        if shard is None or shard.stream is None:
            return 404, _error_payload(
                "unknown_stream", f"no live stream for shard {fingerprint!r}"
            ), {}
        engine = shard.stream
        loop = asyncio.get_running_loop()

        def build() -> dict:
            from repro.core.report import table_to_json_dict

            report = engine.report()
            return {
                "fingerprint": fingerprint,
                "shard": shard.key.label,
                "ticks": engine.batches_applied,
                "tuples": len(engine),
                "signature": report_signature(report),
                "cleaned": table_to_json_dict(engine.cleaned),
            }

        payload = await loop.run_in_executor(self.service._executor, build)
        return 200, payload, {}

    # ------------------------------------------------------------------
    # heartbeat
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        """Register with the router every ``heartbeat_interval`` seconds.

        This task must never die short of cancellation: a worker whose
        heartbeat loop crashed looks dead to the router and gets its shards
        rerouted even though it is healthy.  *Any* failure — connection
        errors, timeouts, but also a garbled router response blowing up the
        JSON decode — is logged (once per outage, not once per beat) and
        retried with a small backoff.
        """
        router_host, _, router_port = self.worker_config.router.rpartition(":")
        interval = self.worker_config.heartbeat_interval
        failures = 0
        while True:
            delay = interval
            try:
                if INJECTOR.active:
                    decision = INJECTOR.decide(
                        "worker.heartbeat", worker=self.worker_config.worker_id
                    )
                    if decision is not None:
                        if decision.action == "delay":
                            await asyncio.sleep(decision.delay_s)
                        else:
                            # stall/drop/fail: skip this beat entirely — the
                            # router must notice the silence, not this task
                            await asyncio.sleep(interval)
                            continue
                await http_json(
                    router_host or "127.0.0.1",
                    int(router_port),
                    "POST",
                    "/cluster/heartbeat",
                    payload=self._info(),
                    timeout=max(interval, 1.0),
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                # the router being briefly away is normal (rolling restarts);
                # keep beating with backoff, membership recovers on success
                failures += 1
                if failures == 1:
                    log.warning(
                        "worker %s heartbeat to %s failed (%s: %s); retrying",
                        self.worker_config.worker_id,
                        self.worker_config.router,
                        type(exc).__name__, exc,
                    )
                delay = min(interval * (2 ** min(failures - 1, 2)), interval * 4)
            else:
                if failures:
                    log.info(
                        "worker %s heartbeat recovered after %d failure(s)",
                        self.worker_config.worker_id, failures,
                    )
                failures = 0
            await asyncio.sleep(delay)


async def serve_worker(
    host: str,
    port: int,
    worker_config: WorkerConfig,
    service_config: Optional[ServiceConfig] = None,
    drain_timeout: float = 30.0,
) -> None:
    """Run one worker until SIGTERM/SIGINT, then drain, checkpoint and exit.

    Reuses the service's :func:`~repro.service.http.serve` loop — boot
    recovery, heartbeats and the ``/cluster/*`` routes come from the worker
    subclasses passed into it; graceful shutdown (drain + WAL flush + final
    snapshots) comes from the service's drain path.
    """
    from repro.service.http import serve

    service = WorkerService(worker_config, service_config)
    http = WorkerHTTPServer(service, host, port)
    await serve(
        host,
        port,
        service=service,
        http_server=http,
        drain_timeout=drain_timeout,
    )
