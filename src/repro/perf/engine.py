"""The shared fast-path distance engine.

Every stage of MLNClean bottoms out in pairwise string distances — AGP is
``O(|B| × |Ga| × |G − Ga|)`` and RSC's reliability score takes a min over all
γ-pairs of a group — and the same value pairs recur across blocks, groups,
micro-batches and partitions.  :class:`DistanceEngine` wraps any registered
:class:`~repro.distance.base.DistanceMetric` with

* a **symmetric pair-memo cache** with string interning and hit/miss
  statistics (a distance between immutable strings never changes, so cached
  results are exact by construction and caching cannot alter any cleaning
  decision),
* **algorithmic fast paths** for the edit-distance family: common
  prefix/suffix stripping, the length-difference lower bound, and a banded
  early-exit :meth:`bounded_distance` that abandons the matrix once the
  cutoff is provably exceeded,
* a cutoff-accumulating :meth:`values_distance` that short-circuits a tuple
  distance as soon as the per-attribute running sum exceeds the cutoff.

Contract of the bounded calls: ``bounded_distance(l, r, c)`` (and
``values_distance(..., cutoff=c)``) returns the **exact** distance whenever
it is ``≤ c``; otherwise it returns *some* value ``> c`` (a valid lower
bound).  Callers doing best-so-far searches therefore get bit-identical
results to exhaustive evaluation: candidates at or below the running best are
measured exactly (including ties), candidates that cannot win are skipped.

Statistics are strictly **engine-local** on the hot path: every counter
increment touches only ``self.stats``, so concurrent engines (the service's
shard executor threads) never interleave read-modify-write cycles on shared
counters.  The process-wide view of :func:`global_distance_stats` is
*derived* under a lock — the folded counters of retired engines plus the
live counters of every engine still alive (a weakref registry folds an
engine's stats in when it is garbage collected) — so the benchmark suite
can still report distance-call counts and cache hit rates per figure
without reaching into every engine instance.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, fields
from typing import Optional

from repro.distance.base import DistanceMetric
from repro.distance.fastpath import (
    bounded_levenshtein,
    strip_common_affixes,
    trivial_edit_distance,
)


@dataclass
class DistanceStats:
    """Counters of one engine (or of the whole process, for the global copy)."""

    #: pair-distance requests (exact and bounded, incl. those from
    #: :meth:`DistanceEngine.values_distance`)
    calls: int = 0
    #: requests answered from the exact-pair cache
    cache_hits: int = 0
    #: requests settled without the metric: equal strings or one side empty
    #: after affix stripping
    trivial: int = 0
    #: full runs of the wrapped metric's ``distance`` (the raw ``O(m·n)``
    #: evaluations the engine exists to avoid)
    raw_evaluations: int = 0
    #: bounded requests refused by the length-difference lower bound
    length_prunes: int = 0
    #: bounded requests abandoned by the banded early-exit search
    band_prunes: int = 0
    #: bounded requests refused by a cached lower bound
    lower_bound_hits: int = 0
    #: value-tuple distance requests
    value_calls: int = 0
    #: value-tuple requests short-circuited before the last attribute
    value_short_circuits: int = 0
    #: cache flushes forced by the ``max_entries`` bound
    cache_evictions: int = 0
    #: cache entries dropped by value invalidation (streaming eviction)
    invalidated_pairs: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of pair requests answered without any computation."""
        if self.calls == 0:
            return 0.0
        return self.cache_hits / self.calls

    def merge(self, other: "DistanceStats") -> "DistanceStats":
        merged = DistanceStats()
        for field in fields(DistanceStats):
            setattr(
                merged,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return merged

    def iadd(self, other: "DistanceStats") -> "DistanceStats":
        """In-place add (keeps the object identity the live registry holds)."""
        for field in fields(DistanceStats):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def zero(self) -> None:
        """In-place reset of every counter."""
        for field in fields(DistanceStats):
            setattr(self, field.name, 0)

    def diff(self, earlier: "DistanceStats") -> "DistanceStats":
        """The counter deltas since an ``earlier`` snapshot."""
        delta = DistanceStats()
        for field in fields(DistanceStats):
            setattr(
                delta,
                field.name,
                getattr(self, field.name) - getattr(earlier, field.name),
            )
        return delta

    def copy(self) -> "DistanceStats":
        return DistanceStats().merge(self)

    def as_dict(self) -> dict:
        out = {field.name: getattr(self, field.name) for field in fields(DistanceStats)}
        out["hit_rate"] = round(self.hit_rate, 4)
        return out


# ----------------------------------------------------------------------
# the derived process-wide accumulator
#
# Engines only ever touch their own ``self.stats`` (single-threaded by
# construction: one cleaning run / one shard uses one engine at a time), so
# the hot path needs no lock and no shared writes.  The global view is
# computed on demand under ``_ACCUM_LOCK``:
#
#     totals = retired + Σ(live engines) − reset offset
#
# where *retired* accumulates the stats of engines as they are garbage
# collected (the weakref callback fires while holding nothing else) and the
# *reset offset* is the snapshot taken by ``reset_global_distance_stats``
# — counters stay monotone underneath, resets are a subtraction.
# ----------------------------------------------------------------------
_ACCUM_LOCK = threading.Lock()
#: folded counters of engines that were garbage collected or reset
_RETIRED = DistanceStats()
#: snapshot subtracted from the raw totals (what "reset" means here)
_RESET_OFFSET = DistanceStats()
#: weakref(engine) → its (never rebound) stats object
_LIVE: "dict[weakref.ref, DistanceStats]" = {}


def _retire_engine(ref: "weakref.ref") -> None:
    """Weakref callback: fold a dying engine's counters into the retired base.

    Pops the registry entry and folds under one lock acquisition, so a
    concurrent :func:`global_distance_stats` never sees the engine twice or
    not at all.
    """
    with _ACCUM_LOCK:
        stats = _LIVE.pop(ref, None)
        if stats is not None:
            _RETIRED.iadd(stats)


def _register_engine(engine: "DistanceEngine") -> None:
    with _ACCUM_LOCK:
        _LIVE[weakref.ref(engine, _retire_engine)] = engine.stats


def _raw_totals() -> DistanceStats:
    """Retired + live counters; the caller holds ``_ACCUM_LOCK``."""
    totals = _RETIRED.copy()
    for stats in _LIVE.values():
        totals.iadd(stats)
    return totals


def global_distance_stats() -> DistanceStats:
    """A snapshot of the process-wide distance counters.

    Derived from engine-local counters under a lock (see the module
    docstring), so concurrent engines on different threads cannot lose
    updates — each one increments only its own stats object.
    """
    with _ACCUM_LOCK:
        return _raw_totals().diff(_RESET_OFFSET)


def reset_global_distance_stats() -> None:
    """Zero the process-wide *view* (test/benchmark isolation).

    Implemented as an offset: the underlying per-engine counters keep
    counting monotonically (live engines are not touched, so nothing races
    with in-flight work); only the baseline the snapshot subtracts moves.
    """
    with _ACCUM_LOCK:
        _RESET_OFFSET.zero()
        _RESET_OFFSET.iadd(_raw_totals())


class DistanceEngine:
    """Caches, prunes and early-exits the distances of one metric.

    One engine is shared by every stage of a cleaning run (batch pipeline,
    distributed driver, or the streaming engine, where it additionally
    persists across micro-batches).  All results are exact — the cache stores
    only exact distances, and bounded calls return exact values whenever the
    distance is within the cutoff — so enabling or disabling the engine's
    cache never changes a cleaning decision.
    """

    def __init__(
        self,
        metric: DistanceMetric,
        cache: bool = True,
        max_entries: Optional[int] = None,
        track_values: bool = False,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.metric = metric
        self.cache_enabled = cache
        self.max_entries = max_entries
        #: reference-count values so streaming eviction can invalidate
        #: (i.e. drop) exactly the cache entries of values that left the
        #: retained window
        self.track_values = track_values
        #: engine-local counters.  Never rebound: the process-wide registry
        #: holds this exact object, so replacing it would silently detach
        #: the engine from :func:`global_distance_stats` (mutate in place).
        self.stats = DistanceStats()
        self._exact: dict = {}
        self._lower: dict = {}
        self._interned: dict = {}
        self._refcounts: dict = {}
        self._pairs_by_value: dict = {}
        self._affix_safe = bool(getattr(metric, "affix_safe", False))
        self._banded = bool(getattr(metric, "supports_banded", False))
        _register_engine(self)

    @classmethod
    def from_config(cls, config, track_values: bool = False) -> "DistanceEngine":
        """An engine honouring an :class:`~repro.core.config.MLNCleanConfig`."""
        return cls(
            config.metric(),
            cache=config.distance_cache,
            max_entries=config.distance_cache_entries,
            track_values=track_values,
        )

    # ------------------------------------------------------------------
    # interning and cache plumbing
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The wrapped metric's registry name (duck-types as a metric)."""
        return self.metric.name

    def intern(self, value: str) -> str:
        """The canonical instance of ``value`` in this engine's pool."""
        return self._interned.setdefault(value, value)

    def intern_values(self, values: "Iterable[str]") -> "tuple[str, ...]":
        return tuple(self.intern(value) for value in values)

    def cache_size(self) -> int:
        return len(self._exact)

    def _pair_key(self, left: str, right: str):
        left = self._interned.setdefault(left, left)
        right = self._interned.setdefault(right, right)
        return (left, right) if left <= right else (right, left)

    def _flush_if_full(self) -> None:
        """Wholesale flush once exact + lower-bound entries hit the bound.

        Both dictionaries count toward ``max_entries`` — prune-heavy
        workloads populate the lower-bound side almost exclusively, and a
        bound that ignored it would not actually bound memory.
        """
        if (
            self.max_entries is not None
            and len(self._exact) + len(self._lower) >= self.max_entries
        ):
            self._exact.clear()
            self._lower.clear()
            self._pairs_by_value.clear()
            self.stats.cache_evictions += 1

    def _store_exact(self, key, value: float) -> None:
        self._flush_if_full()
        self._exact[key] = value
        self._lower.pop(key, None)
        if self.track_values:
            self._pairs_by_value.setdefault(key[0], set()).add(key)
            self._pairs_by_value.setdefault(key[1], set()).add(key)

    def _store_lower(self, key, bound: float) -> None:
        known = self._lower.get(key)
        if known is None or bound > known:
            if known is None:
                self._flush_if_full()
            self._lower[key] = bound
            if self.track_values:
                self._pairs_by_value.setdefault(key[0], set()).add(key)
                self._pairs_by_value.setdefault(key[1], set()).add(key)

    # ------------------------------------------------------------------
    # value lifetime (streaming windows)
    # ------------------------------------------------------------------
    def retain(self, values: "Iterable[str]") -> None:
        """Reference the values of a retained tuple (no-op unless tracking)."""
        if not self.track_values:
            return
        refcounts = self._refcounts
        for value in values:
            value = self.intern(value)
            refcounts[value] = refcounts.get(value, 0) + 1

    def release(self, values: "Iterable[str]") -> None:
        """Drop references; cache entries of dead values are invalidated.

        A value whose reference count reaches zero no longer appears in any
        retained tuple, so its cached pairs can never be asked for again —
        they are purged to keep the persistent streaming cache bounded by the
        live vocabulary instead of the all-time one.
        """
        if not self.track_values:
            return
        refcounts = self._refcounts
        for value in values:
            value = self.intern(value)
            count = refcounts.get(value)
            if count is None:
                continue
            if count > 1:
                refcounts[value] = count - 1
                continue
            del refcounts[value]
            self._interned.pop(value, None)
            for key in self._pairs_by_value.pop(value, ()):  # type: ignore[arg-type]
                if key in self._exact:
                    del self._exact[key]
                    self.stats.invalidated_pairs += 1
                self._lower.pop(key, None)
                partner = key[1] if key[0] is value else key[0]
                partner_pairs = self._pairs_by_value.get(partner)
                if partner_pairs is not None:
                    partner_pairs.discard(key)

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def distance(self, left: str, right: str) -> float:
        """Exact distance, served from the cache when possible."""
        self.stats.calls += 1
        if left == right:
            self.stats.trivial += 1
            return 0.0
        if not self.cache_enabled:
            return self._compute(left, right)
        key = self._pair_key(left, right)
        cached = self._exact.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = self._compute(left, right)
        self._store_exact(key, result)
        return result

    def _compute(self, left: str, right: str) -> float:
        """Run the metric, with affix stripping where it is distance-safe."""
        if self._affix_safe:
            left, right = strip_common_affixes(left, right)
            trivial = trivial_edit_distance(left, right)
            if trivial is not None:
                self.stats.trivial += 1
                return trivial
        self.stats.raw_evaluations += 1
        return self.metric.distance(left, right)

    def bounded_distance(self, left: str, right: str, cutoff: float) -> float:
        """Exact distance when it is ``≤ cutoff``; else some value ``> cutoff``.

        The not-exact return value is a true lower bound of the distance, so
        best-so-far searches can prune on it; it must not be used as a
        distance.
        """
        if cutoff == math.inf:
            return self.distance(left, right)
        self.stats.calls += 1
        if left == right:
            self.stats.trivial += 1
            return 0.0
        key = None
        if self.cache_enabled:
            key = self._pair_key(left, right)
            cached = self._exact.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
            bound = self._lower.get(key)
            if bound is not None and bound > cutoff:
                self.stats.lower_bound_hits += 1
                self.stats.cache_hits += 1
                return bound
        if self._affix_safe:
            stripped_left, stripped_right = strip_common_affixes(left, right)
            trivial = trivial_edit_distance(stripped_left, stripped_right)
            if trivial is not None:
                self.stats.trivial += 1
                if key is not None:
                    self._store_exact(key, trivial)
                return trivial
            length_gap = abs(len(stripped_left) - len(stripped_right))
            if length_gap > cutoff:
                self.stats.length_prunes += 1
                if key is not None:
                    self._store_lower(key, float(length_gap))
                return float(length_gap)
            if self._banded and cutoff >= 0.0:
                radius = int(cutoff)  # distances are integral: d <= cutoff iff d <= floor(cutoff)
                value, exact = bounded_levenshtein(
                    stripped_left, stripped_right, radius
                )
                if exact:
                    self.stats.raw_evaluations += 1
                    if key is not None:
                        self._store_exact(key, value)
                    return value
                self.stats.band_prunes += 1
                if key is not None:
                    self._store_lower(key, value)
                return value
        result = self._compute(left, right)
        if key is not None:
            self._store_exact(key, result)
        return result

    # ------------------------------------------------------------------
    # value tuples (pieces of data)
    # ------------------------------------------------------------------
    def values_distance(
        self,
        left: "Sequence[str]",
        right: "Sequence[str]",
        cutoff: Optional[float] = None,
    ) -> float:
        """Sum of per-position distances, optionally cutoff-accumulating.

        Without a cutoff this equals
        :meth:`repro.distance.base.DistanceMetric.values_distance` bit for
        bit (same per-pair values, same left-to-right summation order).  With
        a cutoff, the exact sum is returned whenever it is ``≤ cutoff``;
        otherwise the accumulation stops at the first attribute that pushes a
        lower bound of the sum past the cutoff and some value ``> cutoff``
        comes back.
        """
        if len(left) != len(right):
            raise ValueError("value tuples must have the same length")
        self.stats.value_calls += 1
        if cutoff is None or cutoff == math.inf:
            total = 0.0
            for left_value, right_value in zip(left, right):
                total += self.distance(left_value, right_value)
            return total
        total = 0.0
        last = len(left) - 1
        for position, (left_value, right_value) in enumerate(zip(left, right)):
            total += self.bounded_distance(left_value, right_value, cutoff - total)
            if total > cutoff:
                if position < last:
                    self.stats.value_short_circuits += 1
                return total
        return total

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def absorb_stats(self, stats: DistanceStats, mirror_global: bool = True) -> None:
        """Fold counters measured elsewhere (e.g. a worker process) in.

        Worker processes keep their own engines; their counters are shipped
        back with the results and folded into the driver's engine — which is
        all it takes for :func:`global_distance_stats` to see the forked
        work, because the global view is derived from engine-local counters.
        ``mirror_global`` is kept for API compatibility; the in-process
        fallback of the parallel path passes ``False`` together with empty
        stats objects (its counters already live in this engine), so the
        fold is a no-op there either way.
        """
        del mirror_global  # the derived global view makes the flag moot
        self.stats.iadd(stats)

    def reset_stats(self) -> None:
        """Zero the engine-local counters, preserving the global totals.

        The counters are folded into the retired base first, so the derived
        :func:`global_distance_stats` stays monotone across engine resets.
        """
        with _ACCUM_LOCK:
            _RETIRED.iadd(self.stats)
            self.stats.zero()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistanceEngine({self.metric.name!r}, cache={self.cache_enabled}, "
            f"entries={len(self._exact)}, hit_rate={self.stats.hit_rate:.3f})"
        )
