"""The shared fast-path distance engine.

Every stage of MLNClean bottoms out in pairwise string distances — AGP is
``O(|B| × |Ga| × |G − Ga|)`` and RSC's reliability score takes a min over all
γ-pairs of a group — and the same value pairs recur across blocks, groups,
micro-batches and partitions.  :class:`DistanceEngine` wraps any registered
:class:`~repro.distance.base.DistanceMetric` with

* a **symmetric pair-memo cache** with string interning and hit/miss
  statistics (a distance between immutable strings never changes, so cached
  results are exact by construction and caching cannot alter any cleaning
  decision),
* **algorithmic fast paths** for the edit-distance family: common
  prefix/suffix stripping, the length-difference lower bound, and a banded
  early-exit :meth:`bounded_distance` that abandons the matrix once the
  cutoff is provably exceeded,
* a cutoff-accumulating :meth:`values_distance` that short-circuits a tuple
  distance as soon as the per-attribute running sum exceeds the cutoff.

Contract of the bounded calls: ``bounded_distance(l, r, c)`` (and
``values_distance(..., cutoff=c)``) returns the **exact** distance whenever
it is ``≤ c``; otherwise it returns *some* value ``> c`` (a valid lower
bound).  Callers doing best-so-far searches therefore get bit-identical
results to exhaustive evaluation: candidates at or below the running best are
measured exactly (including ties), candidates that cannot win are skipped.

Statistics are strictly **engine-local** on the hot path: every counter
increment touches only ``self.stats``, so concurrent engines (the service's
shard executor threads) never interleave read-modify-write cycles on shared
counters.  The process-wide view of :func:`global_distance_stats` is
*derived* under a lock — the folded counters of retired engines plus the
live counters of every engine still alive (a weakref registry folds an
engine's stats in when it is garbage collected) — so the benchmark suite
can still report distance-call counts and cache hit rates per figure
without reaching into every engine instance.
"""

from __future__ import annotations

import math
import threading
import warnings
import weakref
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, fields
from typing import Optional

from repro.distance.base import DistanceMetric
from repro.distance.fastpath import (
    bounded_levenshtein,
    strip_common_affixes,
    trivial_edit_distance,
)
from repro.perf.kernel import HAVE_NUMPY, BatchLevenshteinKernel
from repro.perf.qgram import (
    QGramIndex,
    bound_from_shared,
    build_profile,
    lower_bound,
)

#: flush bound of the per-engine derived caches (value-tuple interning and
#: q-gram profiles); both are pure functions of their key, so a wholesale
#: flush can never change a result — it only costs recomputation
_DERIVED_CACHE_LIMIT = 1 << 16

#: smallest candidate batch worth shipping to the numpy kernel (below this
#: the per-call numpy overhead beats the scalar loop it replaces)
_KERNEL_MIN_BATCH = 2

#: candidates evaluated per kernel dispatch; the running cutoff re-tightens
#: between chunks, so a smaller chunk prunes more but dispatches more often
_KERNEL_CHUNK = 32

#: candidates in the first kernel dispatch of a scan that starts without a
#: cutoff: small, so the best-so-far limit is established before committing
#: a full-width chunk to exact evaluation (the candidates are visited in
#: lower-bound order, so the seed chunk almost always contains the winner)
_KERNEL_SEED_CHUNK = 4

_SCALAR_DEPRECATION_HINT = (
    "use the batch candidate-set API instead (DistanceEngine.nearest / "
    "pairwise / topk); see the README section 'Migrating to the batch "
    "distance API'"
)


@dataclass
class DistanceStats:
    """Counters of one engine (or of the whole process, for the global copy)."""

    #: pair-distance requests (exact and bounded, incl. those from
    #: :meth:`DistanceEngine.values_distance`)
    calls: int = 0
    #: requests answered from the exact-pair cache
    cache_hits: int = 0
    #: requests settled without the metric: equal strings or one side empty
    #: after affix stripping
    trivial: int = 0
    #: full runs of the wrapped metric's ``distance`` (the raw ``O(m·n)``
    #: evaluations the engine exists to avoid)
    raw_evaluations: int = 0
    #: bounded requests refused by the length-difference lower bound
    length_prunes: int = 0
    #: bounded requests abandoned by the banded early-exit search
    band_prunes: int = 0
    #: bounded requests refused by a cached lower bound
    lower_bound_hits: int = 0
    #: value-tuple distance requests
    value_calls: int = 0
    #: value-tuple requests short-circuited before the last attribute
    value_short_circuits: int = 0
    #: cache flushes forced by the ``max_entries`` bound
    cache_evictions: int = 0
    #: cache entries dropped by value invalidation (streaming eviction)
    invalidated_pairs: int = 0
    #: batch candidate-set queries (``nearest`` / ``pairwise`` / ``topk``)
    batch_queries: int = 0
    #: candidates considered by batch queries (before any filtering)
    qgram_candidates: int = 0
    #: candidates batch queries never evaluated exactly: q-gram lower bound
    #: above the running cutoff, or dropped by the approximation caps
    qgram_filtered: int = 0
    #: candidate chunks dispatched to the vectorized kernel
    kernel_batches: int = 0
    #: exact distances settled by the vectorized kernel (the batch analog of
    #: ``raw_evaluations``, which counts only pure-python runs of the
    #: wrapped metric's ``O(m·n)`` dynamic program)
    kernel_evaluations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of pair requests answered without any computation."""
        if self.calls == 0:
            return 0.0
        return self.cache_hits / self.calls

    @property
    def exact_evaluations(self) -> int:
        """Exact metric evaluations by either backend (scalar or kernel).

        The backend-neutral measure of distance work actually performed —
        use this when comparing *how much* a strategy evaluates, and the
        ``raw_evaluations`` / ``kernel_evaluations`` split when the scalar
        vs vectorized routing itself is under test.
        """
        return self.raw_evaluations + self.kernel_evaluations

    def merge(self, other: "DistanceStats") -> "DistanceStats":
        merged = DistanceStats()
        for field in fields(DistanceStats):
            setattr(
                merged,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return merged

    def iadd(self, other: "DistanceStats") -> "DistanceStats":
        """In-place add (keeps the object identity the live registry holds)."""
        for field in fields(DistanceStats):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def zero(self) -> None:
        """In-place reset of every counter."""
        for field in fields(DistanceStats):
            setattr(self, field.name, 0)

    def diff(self, earlier: "DistanceStats") -> "DistanceStats":
        """The counter deltas since an ``earlier`` snapshot."""
        delta = DistanceStats()
        for field in fields(DistanceStats):
            setattr(
                delta,
                field.name,
                getattr(self, field.name) - getattr(earlier, field.name),
            )
        return delta

    def copy(self) -> "DistanceStats":
        return DistanceStats().merge(self)

    def as_dict(self) -> dict:
        out = {field.name: getattr(self, field.name) for field in fields(DistanceStats)}
        out["hit_rate"] = round(self.hit_rate, 4)
        return out


# ----------------------------------------------------------------------
# the derived process-wide accumulator
#
# Engines only ever touch their own ``self.stats`` (single-threaded by
# construction: one cleaning run / one shard uses one engine at a time), so
# the hot path needs no lock and no shared writes.  The global view is
# computed on demand under ``_ACCUM_LOCK``:
#
#     totals = retired + Σ(live engines) − reset offset
#
# where *retired* accumulates the stats of engines as they are garbage
# collected (the weakref callback fires while holding nothing else) and the
# *reset offset* is the snapshot taken by ``reset_global_distance_stats``
# — counters stay monotone underneath, resets are a subtraction.
# ----------------------------------------------------------------------
_ACCUM_LOCK = threading.Lock()
#: folded counters of engines that were garbage collected or reset
_RETIRED = DistanceStats()
#: snapshot subtracted from the raw totals (what "reset" means here)
_RESET_OFFSET = DistanceStats()
#: weakref(engine) → its (never rebound) stats object
_LIVE: "dict[weakref.ref, DistanceStats]" = {}


def _retire_engine(ref: "weakref.ref") -> None:
    """Weakref callback: fold a dying engine's counters into the retired base.

    Pops the registry entry and folds under one lock acquisition, so a
    concurrent :func:`global_distance_stats` never sees the engine twice or
    not at all.
    """
    with _ACCUM_LOCK:
        stats = _LIVE.pop(ref, None)
        if stats is not None:
            _RETIRED.iadd(stats)


def _register_engine(engine: "DistanceEngine") -> None:
    with _ACCUM_LOCK:
        _LIVE[weakref.ref(engine, _retire_engine)] = engine.stats


def _raw_totals() -> DistanceStats:
    """Retired + live counters; the caller holds ``_ACCUM_LOCK``."""
    totals = _RETIRED.copy()
    for stats in _LIVE.values():
        totals.iadd(stats)
    return totals


def global_distance_stats() -> DistanceStats:
    """A snapshot of the process-wide distance counters.

    Derived from engine-local counters under a lock (see the module
    docstring), so concurrent engines on different threads cannot lose
    updates — each one increments only its own stats object.
    """
    with _ACCUM_LOCK:
        return _raw_totals().diff(_RESET_OFFSET)


def reset_global_distance_stats() -> None:
    """Zero the process-wide *view* (test/benchmark isolation).

    Implemented as an offset: the underlying per-engine counters keep
    counting monotonically (live engines are not touched, so nothing races
    with in-flight work); only the baseline the snapshot subtracts moves.
    """
    with _ACCUM_LOCK:
        _RESET_OFFSET.zero()
        _RESET_OFFSET.iadd(_raw_totals())


class DistanceEngine:
    """Caches, prunes and early-exits the distances of one metric.

    One engine is shared by every stage of a cleaning run (batch pipeline,
    distributed driver, or the streaming engine, where it additionally
    persists across micro-batches).  All results are exact — the cache stores
    only exact distances, and bounded calls return exact values whenever the
    distance is within the cutoff — so enabling or disabling the engine's
    cache never changes a cleaning decision.
    """

    def __init__(
        self,
        metric: DistanceMetric,
        cache: bool = True,
        max_entries: Optional[int] = None,
        track_values: bool = False,
        qgram_size: int = 2,
        pruning_topk: Optional[int] = None,
        max_candidates: Optional[int] = None,
        kernel: str = "python",
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        if qgram_size < 1:
            raise ValueError("qgram_size must be >= 1")
        if pruning_topk is not None and pruning_topk < 1:
            raise ValueError("pruning_topk must be >= 1 (or None for exact)")
        if max_candidates is not None and max_candidates < 1:
            raise ValueError("max_candidates must be >= 1 (or None for exact)")
        if kernel not in ("python", "numpy", "auto"):
            raise ValueError("kernel must be one of 'python', 'numpy', 'auto'")
        self.metric = metric
        self.cache_enabled = cache
        self.max_entries = max_entries
        self.qgram_size = qgram_size
        self.pruning_topk = pruning_topk
        self.max_candidates = max_candidates
        self.kernel_mode = kernel
        #: reference-count values so streaming eviction can invalidate
        #: (i.e. drop) exactly the cache entries of values that left the
        #: retained window
        self.track_values = track_values
        #: engine-local counters.  Never rebound: the process-wide registry
        #: holds this exact object, so replacing it would silently detach
        #: the engine from :func:`global_distance_stats` (mutate in place).
        self.stats = DistanceStats()
        self._exact: dict = {}
        self._lower: dict = {}
        self._interned: dict = {}
        self._interned_tuples: dict = {}
        self._qgram_profiles: dict = {}
        self._refcounts: dict = {}
        self._pairs_by_value: dict = {}
        self._scalar_warned: set = set()
        self._affix_safe = bool(getattr(metric, "affix_safe", False))
        self._banded = bool(getattr(metric, "supports_banded", False))
        #: bound-destroying edit operations per q-gram (``None`` disables the
        #: count filter for this metric — batch queries fall back to the
        #: plain ordered scan, which is still bit-identical)
        self._qgram_ops = getattr(metric, "qgram_edit_ops", None)
        self._kernel = None
        if kernel != "python" and self._banded:
            if HAVE_NUMPY:
                self._kernel = BatchLevenshteinKernel()
            elif kernel == "numpy":
                raise RuntimeError(
                    "distance_kernel='numpy' needs numpy; install the "
                    "optional extra: pip install repro[fast]"
                )
        _register_engine(self)

    @classmethod
    def from_config(cls, config, track_values: bool = False) -> "DistanceEngine":
        """An engine honouring an :class:`~repro.core.config.MLNCleanConfig`."""
        return cls(
            config.metric(),
            cache=config.distance_cache,
            max_entries=config.distance_cache_entries,
            track_values=track_values,
            qgram_size=getattr(config, "qgram_size", 2),
            pruning_topk=getattr(config, "pruning_topk", None),
            max_candidates=getattr(config, "max_candidates", None),
            kernel=getattr(config, "distance_kernel", "python"),
        )

    @property
    def supports_qgram(self) -> bool:
        """Whether the wrapped metric admits the q-gram count filter."""
        return self._qgram_ops is not None

    # ------------------------------------------------------------------
    # interning and cache plumbing
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The wrapped metric's registry name (duck-types as a metric)."""
        return self.metric.name

    def intern(self, value: str) -> str:
        """The canonical instance of ``value`` in this engine's pool."""
        return self._interned.setdefault(value, value)

    def intern_values(self, values: "Iterable[str]") -> "tuple[str, ...]":
        """The canonical ``tuple[str, ...]`` of a value sequence.

        Memoized per tuple content: repeated interning of the same γ values
        (every AGP probe, every RSC pair, every fusion signature) is one dict
        probe instead of a per-value re-intern — intern once, pass the tuple
        through.
        """
        values = tuple(values)
        canonical = self._interned_tuples.get(values)
        if canonical is None:
            if len(self._interned_tuples) >= _DERIVED_CACHE_LIMIT:
                self._interned_tuples.clear()
            canonical = tuple(self.intern(value) for value in values)
            self._interned_tuples[canonical] = canonical
            if values is not canonical:
                self._interned_tuples[values] = canonical
        return canonical

    def cache_size(self) -> int:
        return len(self._exact)

    def _pair_key(self, left: str, right: str):
        left = self._interned.setdefault(left, left)
        right = self._interned.setdefault(right, right)
        return (left, right) if left <= right else (right, left)

    @staticmethod
    def _exact_key(left: str, right: str):
        """Pair key for already-interned strings (no pool probes)."""
        return (left, right) if left <= right else (right, left)

    def _warn_scalar(self, method: str) -> None:
        if method in self._scalar_warned:
            return
        self._scalar_warned.add(method)
        warnings.warn(
            f"DistanceEngine.{method} with a cutoff is a deprecated scalar "
            f"entry point; {_SCALAR_DEPRECATION_HINT}",
            DeprecationWarning,
            stacklevel=3,
        )

    def _flush_if_full(self) -> None:
        """Wholesale flush once exact + lower-bound entries hit the bound.

        Both dictionaries count toward ``max_entries`` — prune-heavy
        workloads populate the lower-bound side almost exclusively, and a
        bound that ignored it would not actually bound memory.
        """
        if (
            self.max_entries is not None
            and len(self._exact) + len(self._lower) >= self.max_entries
        ):
            self._exact.clear()
            self._lower.clear()
            self._pairs_by_value.clear()
            self.stats.cache_evictions += 1

    def _store_exact(self, key, value: float) -> None:
        self._flush_if_full()
        self._exact[key] = value
        self._lower.pop(key, None)
        if self.track_values:
            self._pairs_by_value.setdefault(key[0], set()).add(key)
            self._pairs_by_value.setdefault(key[1], set()).add(key)

    def _store_lower(self, key, bound: float) -> None:
        known = self._lower.get(key)
        if known is None or bound > known:
            if known is None:
                self._flush_if_full()
            self._lower[key] = bound
            if self.track_values:
                self._pairs_by_value.setdefault(key[0], set()).add(key)
                self._pairs_by_value.setdefault(key[1], set()).add(key)

    # ------------------------------------------------------------------
    # value lifetime (streaming windows)
    # ------------------------------------------------------------------
    def retain(self, values: "Iterable[str]") -> None:
        """Reference the values of a retained tuple (no-op unless tracking)."""
        if not self.track_values:
            return
        refcounts = self._refcounts
        for value in values:
            value = self.intern(value)
            refcounts[value] = refcounts.get(value, 0) + 1

    def release(self, values: "Iterable[str]") -> None:
        """Drop references; cache entries of dead values are invalidated.

        A value whose reference count reaches zero no longer appears in any
        retained tuple, so its cached pairs can never be asked for again —
        they are purged to keep the persistent streaming cache bounded by the
        live vocabulary instead of the all-time one.
        """
        if not self.track_values:
            return
        refcounts = self._refcounts
        for value in values:
            value = self.intern(value)
            count = refcounts.get(value)
            if count is None:
                continue
            if count > 1:
                refcounts[value] = count - 1
                continue
            del refcounts[value]
            self._interned.pop(value, None)
            for key in self._pairs_by_value.pop(value, ()):  # type: ignore[arg-type]
                if key in self._exact:
                    del self._exact[key]
                    self.stats.invalidated_pairs += 1
                self._lower.pop(key, None)
                partner = key[1] if key[0] is value else key[0]
                partner_pairs = self._pairs_by_value.get(partner)
                if partner_pairs is not None:
                    partner_pairs.discard(key)

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def distance(self, left: str, right: str) -> float:
        """Exact distance, served from the cache when possible."""
        self.stats.calls += 1
        if left == right:
            self.stats.trivial += 1
            return 0.0
        if not self.cache_enabled:
            return self._compute(left, right)
        key = self._pair_key(left, right)
        cached = self._exact.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = self._compute(left, right)
        self._store_exact(key, result)
        return result

    def _distance_canonical(self, left: str, right: str) -> float:
        """:meth:`distance` for already-interned strings (batch hot path)."""
        self.stats.calls += 1
        if left == right:
            self.stats.trivial += 1
            return 0.0
        if not self.cache_enabled:
            return self._compute(left, right)
        key = self._exact_key(left, right)
        cached = self._exact.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = self._compute(left, right)
        self._store_exact(key, result)
        return result

    def _compute(self, left: str, right: str) -> float:
        """Run the metric, with affix stripping where it is distance-safe."""
        if self._affix_safe:
            left, right = strip_common_affixes(left, right)
            trivial = trivial_edit_distance(left, right)
            if trivial is not None:
                self.stats.trivial += 1
                return trivial
        self.stats.raw_evaluations += 1
        return self.metric.distance(left, right)

    def bounded_distance(self, left: str, right: str, cutoff: float) -> float:
        """Exact distance when it is ``≤ cutoff``; else some value ``> cutoff``.

        The not-exact return value is a true lower bound of the distance, so
        best-so-far searches can prune on it; it must not be used as a
        distance.

        .. deprecated:: 1.9
            Scalar best-so-far loops belong behind the batch candidate-set
            API (:meth:`nearest` / :meth:`pairwise` / :meth:`topk`), which
            adds q-gram pruning and kernel routing on top of the same
            exact-or-prune contract.  This shim stays for one release.
        """
        self._warn_scalar("bounded_distance")
        return self._bounded(left, right, cutoff, canonical=False)

    def _bounded(
        self, left: str, right: str, cutoff: float, canonical: bool
    ) -> float:
        """The bounded-distance body; ``canonical`` skips the intern pool."""
        if cutoff == math.inf:
            if canonical:
                return self._distance_canonical(left, right)
            return self.distance(left, right)
        self.stats.calls += 1
        if left == right:
            self.stats.trivial += 1
            return 0.0
        key = None
        if self.cache_enabled:
            key = (
                self._exact_key(left, right)
                if canonical
                else self._pair_key(left, right)
            )
            cached = self._exact.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
            bound = self._lower.get(key)
            if bound is not None and bound > cutoff:
                self.stats.lower_bound_hits += 1
                self.stats.cache_hits += 1
                return bound
        if self._affix_safe:
            stripped_left, stripped_right = strip_common_affixes(left, right)
            trivial = trivial_edit_distance(stripped_left, stripped_right)
            if trivial is not None:
                self.stats.trivial += 1
                if key is not None:
                    self._store_exact(key, trivial)
                return trivial
            length_gap = abs(len(stripped_left) - len(stripped_right))
            if length_gap > cutoff:
                self.stats.length_prunes += 1
                if key is not None:
                    self._store_lower(key, float(length_gap))
                return float(length_gap)
            if self._banded and cutoff >= 0.0:
                radius = int(cutoff)  # distances are integral: d <= cutoff iff d <= floor(cutoff)
                value, exact = bounded_levenshtein(
                    stripped_left, stripped_right, radius
                )
                if exact:
                    self.stats.raw_evaluations += 1
                    if key is not None:
                        self._store_exact(key, value)
                    return value
                self.stats.band_prunes += 1
                if key is not None:
                    self._store_lower(key, value)
                return value
        result = self._compute(left, right)
        if key is not None:
            self._store_exact(key, result)
        return result

    # ------------------------------------------------------------------
    # value tuples (pieces of data)
    # ------------------------------------------------------------------
    def values_distance(
        self,
        left: "Sequence[str]",
        right: "Sequence[str]",
        cutoff: Optional[float] = None,
    ) -> float:
        """Sum of per-position distances, optionally cutoff-accumulating.

        Without a cutoff this equals
        :meth:`repro.distance.base.DistanceMetric.values_distance` bit for
        bit (same per-pair values, same left-to-right summation order).  With
        a cutoff, the exact sum is returned whenever it is ``≤ cutoff``;
        otherwise the accumulation stops at the first attribute that pushes a
        lower bound of the sum past the cutoff and some value ``> cutoff``
        comes back.

        .. deprecated:: 1.9
            The *cutoff* form is a scalar best-so-far entry point; use the
            batch candidate-set API (:meth:`nearest` / :meth:`pairwise` /
            :meth:`topk`) instead.  The exact (no-cutoff) form stays.
        """
        if cutoff is not None and cutoff != math.inf:
            self._warn_scalar("values_distance")
        return self._values_distance(left, right, cutoff, canonical=False)

    def _values_distance(
        self,
        left: "Sequence[str]",
        right: "Sequence[str]",
        cutoff: Optional[float],
        canonical: bool,
    ) -> float:
        if len(left) != len(right):
            raise ValueError("value tuples must have the same length")
        self.stats.value_calls += 1
        if cutoff is None or cutoff == math.inf:
            pair = self._distance_canonical if canonical else self.distance
            total = 0.0
            for left_value, right_value in zip(left, right):
                total += pair(left_value, right_value)
            return total
        total = 0.0
        last = len(left) - 1
        for position, (left_value, right_value) in enumerate(zip(left, right)):
            total += self._bounded(left_value, right_value, cutoff - total, canonical)
            if total > cutoff:
                if position < last:
                    self.stats.value_short_circuits += 1
                return total
        return total

    def _values_bounded(
        self,
        left: "tuple[str, ...]",
        right: "tuple[str, ...]",
        cutoff: float,
    ) -> float:
        """Cutoff-accumulating tuple distance over interned tuples.

        This is the batch scan's inner evaluation: the tuples were interned
        once at candidate-set entry, so pair keys are built without per-value
        pool probes (the fix for the per-call re-interning the old scalar
        path paid on every cutoff accumulation).
        """
        return self._values_distance(left, right, cutoff, canonical=True)

    # ------------------------------------------------------------------
    # batch candidate-set API
    #
    # The batch-first surface of the engine: callers hand over a *candidate
    # set* instead of issuing scalar best-so-far calls, and the engine owns
    # the visit order (q-gram lower bounds ascending), the pruning (skip a
    # candidate only when its lower bound strictly exceeds the running
    # cutoff) and the evaluation backend (scalar fast path or the numpy
    # kernel).  With the default knobs every result is bit-identical to the
    # brute-force scalar loop: any candidate whose exact distance ties the
    # final best is always measured exactly, because the running cutoff never
    # drops below the final best and pruning is strict.  ``pruning_topk`` /
    # ``max_candidates`` opt into approximation by capping the candidates a
    # query may evaluate.
    # ------------------------------------------------------------------
    def _profile(self, values: "tuple[str, ...]"):
        """The (cached) positional q-gram profile of an interned tuple."""
        profile = self._qgram_profiles.get(values)
        if profile is None:
            if len(self._qgram_profiles) >= _DERIVED_CACHE_LIMIT:
                self._qgram_profiles.clear()
            profile = build_profile(values, self.qgram_size)
            self._qgram_profiles[values] = profile
        return profile

    def _candidate_order(
        self,
        query: "tuple[str, ...]",
        cands: "list[tuple[str, ...]]",
        index: "Optional[QGramIndex]",
    ) -> "list[tuple[float, int]]":
        """``(lower_bound, candidate_position)`` in evaluation order.

        With a metric that admits the count filter the list is sorted by
        ``(bound, position)`` ascending; otherwise bounds are all zero and
        the input order is kept (a plain ordered scan — still bit-identical).
        A block's :class:`~repro.perf.qgram.QGramIndex` answers the shared
        counts from its postings when supplied and built with the same ``q``;
        candidates missing from it (or any candidates, without an index) fall
        back to direct profile intersections.
        """
        ops = self._qgram_ops
        if ops is None:
            return [(0.0, position) for position in range(len(cands))]
        q = self.qgram_size
        if index is not None and index.q == q:
            query_profile = index.profile(query) or self._profile(query)
            shared = index.shared_counts(query_profile, set(cands))
            order = []
            for position, cand in enumerate(cands):
                cand_profile = index.profile(cand)
                if cand_profile is None:
                    bound = lower_bound(query_profile, self._profile(cand), q, ops)
                else:
                    bound = bound_from_shared(
                        query_profile, cand_profile, shared.get(cand, 0), q, ops
                    )
                order.append((bound, position))
        else:
            query_profile = self._profile(query)
            order = [
                (lower_bound(query_profile, self._profile(cand), q, ops), position)
                for position, cand in enumerate(cands)
            ]
        order.sort()
        return order

    def _scan_nearest(
        self,
        query: "tuple[str, ...]",
        cands: "list[tuple[str, ...]]",
        order: "list[tuple[float, int]]",
        cutoff: float,
    ) -> "tuple[Optional[int], float]":
        """Best-so-far scan of an ordered candidate list.

        Returns ``(best_position, best_distance)`` with the smallest-position
        tie-break; ``(None, inf)`` when nothing is within the cutoff.
        """
        stats = self.stats
        best_index: Optional[int] = None
        best = math.inf
        limit = cutoff
        use_kernel = self._kernel is not None and len(order) >= _KERNEL_MIN_BATCH
        total = len(order)
        position = 0
        while position < total:
            bound, candidate = order[position]
            if bound > limit:
                stats.qgram_filtered += total - position
                break
            if not use_kernel:
                position += 1
                value = self._values_bounded(query, cands[candidate], limit)
                if value <= limit and (
                    value < best
                    or (value == best and (best_index is None or candidate < best_index))
                ):
                    best = value
                    best_index = candidate
                    if best < limit:
                        limit = best
                continue
            chunk = []
            chunk_cap = _KERNEL_SEED_CHUNK if limit == math.inf else _KERNEL_CHUNK
            while position < total and len(chunk) < chunk_cap:
                bound, candidate = order[position]
                if bound > limit:
                    break
                chunk.append(candidate)
                position += 1
            totals = self._values_batch(query, [cands[c] for c in chunk], limit)
            for candidate, value in zip(chunk, totals):
                if value <= limit and (
                    value < best
                    or (value == best and (best_index is None or candidate < best_index))
                ):
                    best = value
                    best_index = candidate
                    if best < limit:
                        limit = best
        return best_index, best

    def _values_batch(
        self,
        query: "tuple[str, ...]",
        rights: "list[tuple[str, ...]]",
        limit: float,
    ) -> "list[float]":
        """Kernel-backed :meth:`_values_bounded` over a candidate chunk.

        Per candidate the return value honours the exact-or-prune contract
        against ``limit``: exact whenever it is ``≤ limit``, otherwise a true
        lower bound ``> limit``.  The pair cache is consulted before and fed
        after every kernel dispatch, so kernel results are indistinguishable
        from scalar ones to the rest of the engine.
        """
        stats = self.stats
        count = len(rights)
        stats.value_calls += count
        totals = [0.0] * count
        alive = list(range(count))
        positions = len(query)
        last = positions - 1
        cache_enabled = self.cache_enabled
        for attr in range(positions):
            query_value = query[attr]
            pending_slots: "list[int]" = []
            pending_rights: "list[str]" = []
            pending_cutoffs: "list[float]" = []
            survivors: "list[int]" = []
            for slot in alive:
                right_value = rights[slot][attr]
                stats.calls += 1
                if query_value == right_value:
                    stats.trivial += 1
                    survivors.append(slot)
                    continue
                remaining = limit - totals[slot]
                key = None
                if cache_enabled:
                    key = self._exact_key(query_value, right_value)
                    cached = self._exact.get(key)
                    if cached is not None:
                        stats.cache_hits += 1
                        totals[slot] += cached
                        if totals[slot] <= limit:
                            survivors.append(slot)
                        elif attr < last:
                            stats.value_short_circuits += 1
                        continue
                    bound = self._lower.get(key)
                    if bound is not None and bound > remaining:
                        stats.lower_bound_hits += 1
                        stats.cache_hits += 1
                        totals[slot] += bound
                        if attr < last:
                            stats.value_short_circuits += 1
                        continue
                length_gap = abs(len(query_value) - len(right_value))
                if length_gap > remaining:
                    stats.length_prunes += 1
                    if key is not None:
                        self._store_lower(key, float(length_gap))
                    totals[slot] += float(length_gap)
                    if attr < last:
                        stats.value_short_circuits += 1
                    continue
                pending_slots.append(slot)
                pending_rights.append(right_value)
                pending_cutoffs.append(remaining)
            if pending_slots:
                stats.kernel_batches += 1
                outcomes = self._kernel.batch_bounded(
                    query_value, pending_rights, pending_cutoffs
                )
                for slot, right_value, (value, exact) in zip(
                    pending_slots, pending_rights, outcomes
                ):
                    if cache_enabled:
                        key = self._exact_key(query_value, right_value)
                        if exact:
                            self._store_exact(key, value)
                        else:
                            self._store_lower(key, value)
                    if exact:
                        stats.kernel_evaluations += 1
                    else:
                        stats.band_prunes += 1
                    totals[slot] += value
                    if totals[slot] <= limit:
                        survivors.append(slot)
                    elif attr < last:
                        stats.value_short_circuits += 1
                survivors.sort()
            alive = survivors
            if not alive:
                break
        return totals

    def _capped_candidates(
        self, cands: "list[tuple[str, ...]]"
    ) -> "list[tuple[str, ...]]":
        """``max_candidates`` hard cap: first N candidates in input order."""
        if self.max_candidates is not None and len(cands) > self.max_candidates:
            self.stats.qgram_filtered += len(cands) - self.max_candidates
            return cands[: self.max_candidates]
        return cands

    def _capped_order(
        self, order: "list[tuple[float, int]]"
    ) -> "list[tuple[float, int]]":
        """``pruning_topk``: keep the k most promising candidates by bound."""
        if self.pruning_topk is not None and len(order) > self.pruning_topk:
            self.stats.qgram_filtered += len(order) - self.pruning_topk
            return order[: self.pruning_topk]
        return order

    def nearest(
        self,
        query: "Sequence[str]",
        candidates: "Sequence[Sequence[str]]",
        cutoff: float = math.inf,
        *,
        index: "Optional[QGramIndex]" = None,
    ) -> "tuple[Optional[int], float]":
        """The candidate nearest to ``query`` within ``cutoff``.

        Returns ``(position, distance)`` into the *candidates* sequence, ties
        broken toward the smallest position; ``(None, inf)`` when no
        candidate is within the cutoff.  Bit-identical to the brute-force
        scalar loop with the default knobs.
        """
        query = self.intern_values(query)
        cands = [self.intern_values(candidate) for candidate in candidates]
        self.stats.batch_queries += 1
        self.stats.qgram_candidates += len(cands)
        if not cands:
            return None, math.inf
        cands = self._capped_candidates(cands)
        order = self._capped_order(self._candidate_order(query, cands, index))
        return self._scan_nearest(query, cands, order, cutoff)

    def pairwise(
        self,
        values: "Sequence[Sequence[str]]",
        *,
        index: "Optional[QGramIndex]" = None,
    ) -> "list[tuple[Optional[int], float]]":
        """Per item: ``(position_of_nearest_other_item, min_distance)``.

        The all-pairs surface RSC-style scoring needs: for every item the
        exact minimum distance to any *other* item (``(None, inf)`` when
        there is only one).  Lower bounds are computed once per unordered
        pair; each item's scan then visits the others bounds-ascending with
        its own running minimum as the cutoff.
        """
        items = [self.intern_values(item) for item in values]
        count = len(items)
        self.stats.batch_queries += 1
        if count < 2:
            return [(None, math.inf)] * count
        self.stats.qgram_candidates += count * (count - 1)
        ops = self._qgram_ops
        bounds = None
        if ops is not None:
            q = self.qgram_size
            if index is not None and index.q == q:
                profiles = [index.profile(item) or self._profile(item) for item in items]
            else:
                profiles = [self._profile(item) for item in items]
            bounds = [[0.0] * count for _ in range(count)]
            for i in range(count):
                for j in range(i + 1, count):
                    if items[i] is items[j]:
                        continue
                    value = lower_bound(profiles[i], profiles[j], q, ops)
                    bounds[i][j] = value
                    bounds[j][i] = value
        results: "list[tuple[Optional[int], float]]" = []
        for i in range(count):
            others = [j for j in range(count) if j != i]
            if self.max_candidates is not None and len(others) > self.max_candidates:
                self.stats.qgram_filtered += len(others) - self.max_candidates
                others = others[: self.max_candidates]
            if bounds is None:
                order = [(0.0, j) for j in others]
            else:
                row = bounds[i]
                order = sorted((row[j], j) for j in others)
            order = self._capped_order(order)
            results.append(self._scan_nearest(items[i], items, order, math.inf))
        return results

    def topk(
        self,
        query: "Sequence[str]",
        candidates: "Sequence[Sequence[str]]",
        k: int,
        cutoff: float = math.inf,
        *,
        index: "Optional[QGramIndex]" = None,
    ) -> "list[tuple[int, float]]":
        """The ``k`` candidates nearest to ``query``, within ``cutoff``.

        Returns up to ``k`` ``(position, distance)`` pairs sorted by
        ``(distance, position)`` ascending; ties at the k-th distance are
        broken toward smaller positions.  Once ``k`` candidates are held the
        running cutoff tightens to the current k-th distance.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        query = self.intern_values(query)
        cands = [self.intern_values(candidate) for candidate in candidates]
        self.stats.batch_queries += 1
        self.stats.qgram_candidates += len(cands)
        if not cands:
            return []
        cands = self._capped_candidates(cands)
        order = self._capped_order(self._candidate_order(query, cands, index))
        selected: "list[tuple[float, int]]" = []
        limit = cutoff
        total = len(order)
        for position, (bound, candidate) in enumerate(order):
            if bound > limit:
                self.stats.qgram_filtered += total - position
                break
            value = self._values_bounded(query, cands[candidate], limit)
            if value > limit:
                continue
            selected.append((value, candidate))
            selected.sort()
            if len(selected) > k:
                selected.pop()
            if len(selected) == k and selected[-1][0] < limit:
                limit = selected[-1][0]
        return [(candidate, value) for value, candidate in selected]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def absorb_stats(self, stats: DistanceStats, mirror_global: bool = True) -> None:
        """Fold counters measured elsewhere (e.g. a worker process) in.

        Worker processes keep their own engines; their counters are shipped
        back with the results and folded into the driver's engine — which is
        all it takes for :func:`global_distance_stats` to see the forked
        work, because the global view is derived from engine-local counters.
        ``mirror_global`` is kept for API compatibility; the in-process
        fallback of the parallel path passes ``False`` together with empty
        stats objects (its counters already live in this engine), so the
        fold is a no-op there either way.
        """
        del mirror_global  # the derived global view makes the flag moot
        self.stats.iadd(stats)

    def reset_stats(self) -> None:
        """Zero the engine-local counters, preserving the global totals.

        The counters are folded into the retired base first, so the derived
        :func:`global_distance_stats` stays monotone across engine resets.
        """
        with _ACCUM_LOCK:
            _RETIRED.iadd(self.stats)
            self.stats.zero()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistanceEngine({self.metric.name!r}, cache={self.cache_enabled}, "
            f"entries={len(self._exact)}, hit_rate={self.stats.hit_rate:.3f})"
        )
