"""Process-parallel Stage I for the batch backend (opt-in ``parallelism=N``).

Stage I is embarrassingly parallel: AGP merges groups *within* one block and
RSC's weight learning normalises by the block's own support (the Eq.-4
prior), so no block ever reads another block's state.  This module fans the
blocks of one cleaning run out to worker processes, each running AGP followed
by RSC on its block with its own :class:`~repro.perf.DistanceEngine`, and
merges the mutated blocks and their outcomes back **in block order** through
the distributed driver's :func:`~repro.distributed.driver.merge_stage_outcomes`
— so the merged ``StageCounts``, merge/repair listings and the downstream
FSCR input are bit-identical to a serial run (caching never changes a
distance, and blocks are independent, so only wall-clock changes).

Worker engines cannot share a cache across process boundaries; their
counters are shipped back with the results and folded into the driver
engine, keeping the run's reported distance statistics complete.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional

from repro.core.agp import AbnormalGroupProcessor, AGPOutcome
from repro.core.config import MLNCleanConfig
from repro.core.index import Block
from repro.core.rsc import ReliabilityScoreCleaner, RSCOutcome
from repro.obs import span
from repro.perf.engine import DistanceEngine, DistanceStats

#: tid → attribute → clean value; the picklable stand-in for the
#: ``clean_lookup`` closure of instrumented runs
CleanValues = dict[int, dict[str, str]]


@dataclass
class BlockStageResult:
    """One block after Stage I, with its outcomes and engine counters."""

    block: Block
    agp: AGPOutcome
    rsc: RSCOutcome
    stats: DistanceStats


def _clean_block_with_engine(
    block: Block,
    config: MLNCleanConfig,
    clean_values: Optional[CleanValues],
    engine: DistanceEngine,
    own_stats: bool,
) -> BlockStageResult:
    """AGP then RSC on one block through ``engine``.

    ``own_stats=True`` means the engine belongs to this task alone (worker
    process) and its counters must travel back with the result; with a
    shared in-process engine the counters are already where they belong, so
    an empty stats object is returned to keep the later fold from double
    counting.
    """
    lookup = None
    if clean_values is not None:
        lookup = clean_values.__getitem__
    agp = AbnormalGroupProcessor(config, engine=engine)
    agp_outcome = agp.process_block(block, lookup)
    rsc = ReliabilityScoreCleaner(config, engine=engine)
    rsc_outcome = rsc.clean_block(block, lookup)
    stats = engine.stats if own_stats else DistanceStats()
    return BlockStageResult(block, agp_outcome, rsc_outcome, stats)


def _clean_one_block(
    payload: "tuple[Block, MLNCleanConfig, Optional[CleanValues]]",
) -> BlockStageResult:
    """Worker entry point: one block with its own engine (module-level for pickling)."""
    block, config, clean_values = payload
    engine = DistanceEngine.from_config(config)
    return _clean_block_with_engine(block, config, clean_values, engine, own_stats=True)


def clean_blocks_parallel(
    blocks: "list[Block]",
    config: MLNCleanConfig,
    clean_values: Optional[CleanValues],
    parallelism: int,
    engine: Optional[DistanceEngine] = None,
) -> "tuple[list[BlockStageResult], bool]":
    """Run Stage I on every block across ``parallelism`` worker processes.

    Returns ``(results, pooled)``: the results come back in input block order
    (``Pool.map`` preserves order), which is exactly the order the serial
    stages iterate, so downstream merges are deterministic; ``pooled`` tells
    whether worker processes actually ran (counters of in-process work have
    already reached the process-global stats).  With one block, one worker,
    or no usable process pool, the work degrades gracefully to in-process
    execution through the caller's shared ``engine`` — same results, same
    cross-block cache a serial run enjoys.
    """
    def run_in_process() -> "list[BlockStageResult]":
        shared = engine if engine is not None else DistanceEngine.from_config(config)
        return [
            _clean_block_with_engine(block, config, clean_values, shared, own_stats=False)
            for block in blocks
        ]

    workers = min(parallelism, len(blocks))
    if workers <= 1 or len(blocks) <= 1:
        return run_in_process(), False
    payloads = [(block, config, clean_values) for block in blocks]
    try:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with context.Pool(processes=workers) as pool:
            return pool.map(_clean_one_block, payloads), True
    except (OSError, ValueError):  # pragma: no cover - constrained sandboxes
        return run_in_process(), False


class ParallelStageOne:
    """The fused ``agp`` + ``rsc`` stage of a ``parallelism=N`` batch run.

    Registers its outcomes under the standard ``"agp"`` / ``"rsc"`` names so
    reports are indistinguishable from a serial run's; the wall-clock of both
    sub-stages lands in one ``stage1`` timing phase (they execute interleaved
    per block inside the workers and cannot be attributed separately).
    """

    name = "stage1"

    def __init__(self, config: MLNCleanConfig, parallelism: int):
        self.config = config
        self.parallelism = parallelism

    def run(self, context) -> None:
        clean_values: Optional[CleanValues] = None
        if context.clean_lookup is not None:
            clean_values = {
                tid: context.clean_lookup(tid) for tid in context.dirty.tids
            }
        # One driver-side span for the whole fan-out.  Fork-pool workers run
        # without a tracer (contextvars do not survive the fork, and spans
        # could not be shipped back affordably); the driver span records the
        # fan-out shape instead.
        with span(
            "stage1.parallel",
            blocks=len(context.blocks),
            parallelism=self.parallelism,
        ) as fan_span:
            results, pooled = clean_blocks_parallel(
                context.blocks,
                self.config,
                clean_values,
                self.parallelism,
                engine=context.engine,
            )
            fan_span.set(pooled=pooled)
        # Workers mutated pickled copies; adopt them in block order.
        context.blocks = [result.block for result in results]
        from repro.distributed.driver import merge_stage_outcomes

        agp_total, rsc_total = merge_stage_outcomes(
            (result.agp for result in results),
            (result.rsc for result in results),
        )
        context.outcomes["agp"] = agp_total
        context.outcomes["rsc"] = rsc_total
        if context.engine is not None:
            for result in results:
                context.engine.absorb_stats(result.stats, mirror_global=pooled)
