"""Performance subsystem: the shared distance engine and parallel Stage I.

:mod:`repro.perf.engine` provides the cached / pruned / early-exit
:class:`DistanceEngine` every stage runs its string distances through;
:mod:`repro.perf.parallel` fans independent Stage-I blocks out to worker
processes for the batch backend's opt-in ``parallelism=N`` mode.

``repro.perf.parallel`` is intentionally not imported here: it depends on the
core stage processors (which themselves build engines), so importing it from
the package root would be circular.  Import it explicitly where needed.
"""

from repro.perf.engine import (
    DistanceEngine,
    DistanceStats,
    global_distance_stats,
    reset_global_distance_stats,
)
from repro.perf.kernel import HAVE_NUMPY, BatchLevenshteinKernel
from repro.perf.qgram import QGramIndex, ValueProfile, build_profile
from repro.perf.stats import LatencyWindow

__all__ = [
    "BatchLevenshteinKernel",
    "DistanceEngine",
    "DistanceStats",
    "HAVE_NUMPY",
    "LatencyWindow",
    "QGramIndex",
    "ValueProfile",
    "build_profile",
    "global_distance_stats",
    "reset_global_distance_stats",
]
