"""Optional numpy batch kernel: banded Levenshtein over whole candidate sets.

The scalar fast path computes one ``O(m·n)`` dynamic program per pair in
Python.  This kernel stacks a query's surviving candidates into one int
matrix and advances all their DP rows together, so the per-row Python
overhead is paid once per query instead of once per pair:

* candidate strings are encoded as int arrays once and cached,
* the insertion dependency inside a row (``cur[j]`` needs ``cur[j-1]``) is
  resolved without a Python loop via the prefix-min identity
  ``cur[j] = j + min_{t<=j} (V[t] - t)`` (``numpy.minimum.accumulate``),
* the Ukkonen early exit is applied per candidate: the minimum of a DP row
  never decreases as rows advance, so a candidate whose row minimum exceeds
  its cutoff is settled with that minimum as a **lower bound** — the same
  exact-or-prune contract as :func:`repro.distance.fastpath.bounded_levenshtein`.

The kernel computes the *plain Levenshtein* distance bit-identically to the
registered metric (both count unit-cost insert/delete/substitute over the
same integral values), which is what lets :class:`repro.perf.engine.DistanceEngine`
route batch evaluations through it without changing any cleaning decision.

numpy is an optional extra (``pip install repro[fast]``): this module always
imports, :data:`HAVE_NUMPY` reports availability, and the engine falls back
to the pure-python scalar path when the kernel cannot be built.
"""

from __future__ import annotations

import math

try:  # pragma: no cover - exercised via HAVE_NUMPY on both kinds of hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: whether the optional numpy dependency is importable
HAVE_NUMPY = _np is not None

#: sentinel cost for DP cells outside a candidate's valid column range;
#: far above any real string distance, far below int32 overflow
_BIG = 1 << 20

#: flush bound of the per-kernel string-encoding cache
_ENCODE_CACHE_LIMIT = 1 << 16


class BatchLevenshteinKernel:
    """Vectorized banded Levenshtein across one query's candidate set."""

    def __init__(self):
        if _np is None:
            raise RuntimeError(
                "the numpy batch kernel needs numpy; install the optional "
                "extra: pip install repro[fast]"
            )
        self._encoded: dict = {}

    def _encode(self, value: str):
        cached = self._encoded.get(value)
        if cached is None:
            if len(self._encoded) >= _ENCODE_CACHE_LIMIT:
                self._encoded.clear()
            cached = _np.frombuffer(
                value.encode("utf-32-le"), dtype=_np.uint32
            ).astype(_np.int32)
            self._encoded[value] = cached
        return cached

    def batch_bounded(
        self,
        query: str,
        rights: "list[str]",
        cutoffs: "list[float]",
    ) -> "list[tuple[float, bool]]":
        """``(value, exact)`` per candidate, under per-candidate cutoffs.

        ``exact=True`` means ``value`` is the exact Levenshtein distance
        (always the case when it is ``<= cutoff``); otherwise ``value`` is a
        true lower bound that already exceeds the candidate's cutoff.
        """
        np = _np
        count = len(rights)
        query_codes = self._encode(query)
        m = len(query_codes)
        lens = np.fromiter((len(r) for r in rights), dtype=np.int64, count=count)
        width = int(lens.max()) if count else 0
        limits = np.fromiter(
            (
                _BIG if math.isinf(c) else int(math.floor(c)) if c >= 0 else -1
                for c in cutoffs
            ),
            dtype=np.int64,
            count=count,
        )

        if m == 0:
            # distance is the candidate length; always exact
            return [(float(n), True) for n in lens]

        codes = np.full((count, width), -1, dtype=np.int32)
        for row, value in enumerate(rights):
            if value:
                codes[row, : len(value)] = self._encode(value)

        columns = np.arange(width + 1, dtype=np.int32)
        valid = columns[None, :] <= lens[:, None]
        prev = np.where(valid, columns[None, :], np.int32(_BIG)).astype(np.int32)

        results = np.zeros(count, dtype=np.int64)
        exact = np.ones(count, dtype=bool)
        alive = np.ones(count, dtype=bool)

        current = np.empty((count, width + 1), dtype=np.int32)
        for i in range(1, m + 1):
            substitution = (codes != query_codes[i - 1]).astype(np.int32)
            current[:, 0] = i
            if width:
                current[:, 1:] = np.minimum(
                    prev[:, 1:] + 1, prev[:, :-1] + substitution
                )
            # resolve the in-row insertion chain: cur[j] = j + min_{t<=j}(cur[t] - t)
            np.subtract(current, columns[None, :], out=current)
            np.minimum.accumulate(current, axis=1, out=current)
            np.add(current, columns[None, :], out=current)
            np.copyto(current, _BIG, where=~valid)

            row_minimum = current.min(axis=1)
            newly_dead = alive & (row_minimum > limits)
            if newly_dead.any():
                # the row minimum never decreases as rows advance, so it is a
                # valid lower bound of the final distance — and it already
                # exceeds the candidate's cutoff, which settles the candidate
                results[newly_dead] = row_minimum[newly_dead]
                exact[newly_dead] = False
                alive &= ~newly_dead
                if not alive.any():
                    break
            prev, current = current, prev

        if alive.any():
            finals = prev[np.arange(count), lens]
            results[alive] = finals[alive]

        return [
            (float(results[index]), bool(exact[index])) for index in range(count)
        ]
