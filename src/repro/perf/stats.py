"""Lightweight runtime statistics for long-lived processes.

The cleaning *library* reports wall-clock per run (``TimingBreakdown``); a
cleaning *service* needs distributions over many runs — "what is the p95
request latency right now" — without keeping every sample forever.
:class:`LatencyWindow` is the standard fixed-size reservoir of the most
recent samples with percentile readout; :mod:`repro.service` records one
sample per completed job and surfaces the window on ``GET /stats`` next to
the process-global :func:`~repro.perf.engine.global_distance_stats`
counters.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional


class LatencyWindow:
    """Percentiles over the most recent ``maxlen`` duration samples.

    Appends are O(1); percentile readout sorts the retained window (bounded,
    so cheap).  The window deliberately keeps *recent* behaviour: a latency
    spike ages out after ``maxlen`` further samples instead of polluting a
    lifetime average.
    """

    def __init__(self, maxlen: int = 512):
        if maxlen < 1:
            raise ValueError("a latency window needs maxlen >= 1")
        self.maxlen = maxlen
        self._samples: deque = deque(maxlen=maxlen)
        self._count = 0

    def record(self, seconds: float) -> None:
        """Add one duration sample (in seconds)."""
        self._samples.append(float(seconds))
        self._count += 1

    @property
    def count(self) -> int:
        """Samples recorded over the window's lifetime (not just retained)."""
        return self._count

    def percentile(self, fraction: float) -> Optional[float]:
        """The ``fraction``-quantile (0..1) of the retained window.

        Nearest-rank on the sorted retained samples; ``None`` before the
        first sample.
        """
        if not self._samples:
            return None
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        ordered = sorted(self._samples)
        # nearest-rank: the ceil(f·n)-th smallest sample (1-indexed)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(0.95)

    def as_dict(self) -> dict:
        """JSON-safe summary (what ``GET /stats`` serves).

        ``count`` is lifetime; every other number describes the retained
        window only, so an old spike genuinely ages out of all of them.
        """

        def rounded(value: Optional[float]) -> Optional[float]:
            return round(value, 6) if value is not None else None

        retained = list(self._samples)
        mean = sum(retained) / len(retained) if retained else None
        return {
            "count": self._count,
            "window": len(retained),
            "p50_s": rounded(self.p50),
            "p95_s": rounded(self.p95),
            "mean_s": rounded(mean),
            "max_s": rounded(max(retained) if retained else None),
        }
