"""Q-gram candidate filtering for the batch distance API.

The count-filtering bound (Gravano et al., approximate string joins): two
strings within edit distance ``k`` share at least

    max(|x|, |y|) - q + 1 - k*q

positional ``q``-grams, because one edit operation can destroy at most ``q``
grams.  Rearranged, the number of shared grams ``S`` yields a lower bound of
the edit distance,

    ed(x, y) >= ceil((G - S) / q)      with G = max gram count of the pair,

which combines with the length-difference bound ``|len(x) - len(y)|``.  For
value *tuples* (the γs of the MLN index) the per-attribute bounds add up:
grams are tagged with their attribute position so grams of different
attributes never count as shared, and the aggregate bound

    values_distance(x, y) >= max(Σ_p |Δlen_p|, ceil((Σ_p G_p - Σ_p S_p) / q))

is a valid lower bound of the per-position sum (each summand bounds its
position's distance from below).

Metrics declare how many bound-destroying grams one edit operation is worth
via :attr:`repro.distance.base.DistanceMetric.qgram_edit_ops` — ``1`` for
plain Levenshtein, ``2`` for restricted Damerau (a transposition is two
substitutions to Levenshtein, whose bound is the one actually applied) and
``None`` for metrics without a valid gram bound (cosine, jaccard), which
disables filtering entirely.

Everything here returns **lower bounds only**; the exact-or-prune discipline
of :class:`repro.perf.engine.DistanceEngine` stays intact because a
candidate is only skipped when its bound strictly exceeds the running
cutoff — exactly the pairs whose exact distance could never win.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional


class ValueProfile:
    """The positional q-gram profile of one value tuple."""

    __slots__ = ("values", "grams", "lengths")

    def __init__(
        self,
        values: "tuple[str, ...]",
        grams: "dict[tuple[int, str], int]",
        lengths: "tuple[int, ...]",
    ):
        self.values = values
        self.grams = grams
        self.lengths = lengths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueProfile({self.values!r}, grams={len(self.grams)})"


def build_profile(values: "Sequence[str]", q: int) -> ValueProfile:
    """The positional q-gram profile of ``values``.

    Grams are keyed ``(position, gram)`` so attributes never share grams;
    strings shorter than ``q`` contribute no grams (their bound falls back
    to the length difference alone, which keeps it trivially valid).
    """
    grams: "dict[tuple[int, str], int]" = {}
    for position, value in enumerate(values):
        count = len(value) - q + 1
        for start in range(count):
            key = (position, value[start : start + q])
            grams[key] = grams.get(key, 0) + 1
    return ValueProfile(tuple(values), grams, tuple(len(v) for v in values))


def shared_grams(left: ValueProfile, right: ValueProfile) -> int:
    """Σ over grams of ``min(count_left, count_right)`` (positional)."""
    if len(right.grams) < len(left.grams):
        left, right = right, left
    other = right.grams
    shared = 0
    for key, count in left.grams.items():
        partner = other.get(key)
        if partner:
            shared += count if count < partner else partner
    return shared


def _length_and_gram_caps(
    left: ValueProfile, right: ValueProfile, q: int
) -> "tuple[int, int]":
    """``(Σ|Δlen_p|, Σ max-gram-count_p)`` of the pair."""
    length_bound = 0
    gram_cap = 0
    for len_left, len_right in zip(left.lengths, right.lengths):
        bigger = len_left if len_left >= len_right else len_right
        length_bound += bigger - (len_left + len_right - bigger)
        grams = bigger - q + 1
        if grams > 0:
            gram_cap += grams
    return length_bound, gram_cap


def bound_from_shared(
    left: ValueProfile,
    right: ValueProfile,
    shared: int,
    q: int,
    edit_ops: int,
) -> float:
    """The pair's lower bound given its shared-gram count."""
    length_bound, gram_cap = _length_and_gram_caps(left, right, q)
    bound = length_bound
    if gram_cap > shared:
        divisor = q * edit_ops
        gram_bound = (gram_cap - shared + divisor - 1) // divisor
        if gram_bound > bound:
            bound = gram_bound
    return float(bound)


def lower_bound(
    left: ValueProfile, right: ValueProfile, q: int, edit_ops: int
) -> float:
    """A lower bound of ``values_distance(left.values, right.values)``."""
    return bound_from_shared(left, right, shared_grams(left, right), q, edit_ops)


class QGramIndex:
    """A positional q-gram inverted index over the value tuples of one block.

    Built once at index time and maintained incrementally: the MLN index's
    delta hooks call :meth:`add` / :meth:`discard` as γs are created and
    destroyed, so a streaming run never rebuilds postings from scratch.

    Cleaning mutations (AGP merges, RSC rewrites) intentionally do **not**
    maintain the index — they bypass the block's tuple hooks — so postings
    may contain values whose γ is gone.  That staleness is harmless by
    construction: every query is restricted to an explicitly supplied live
    candidate set, and extra postings entries outside it are skipped.  No
    cleaning mutation ever *creates* values, so live candidates are always
    present.
    """

    __slots__ = ("q", "profiles", "postings", "_refs")

    def __init__(self, q: int):
        if q < 1:
            raise ValueError("qgram_size must be >= 1")
        self.q = q
        #: values tuple → its profile (one per distinct tuple, refcounted)
        self.profiles: "dict[tuple[str, ...], ValueProfile]" = {}
        #: (position, gram) → {values tuple: gram count}
        self.postings: "dict[tuple[int, str], dict[tuple[str, ...], int]]" = {}
        self._refs: "dict[tuple[str, ...], int]" = {}

    def __len__(self) -> int:
        return len(self.profiles)

    def add(self, values: "tuple[str, ...]") -> None:
        """Register one value tuple (refcounted: duplicate adds are cheap)."""
        count = self._refs.get(values)
        if count is not None:
            self._refs[values] = count + 1
            return
        self._refs[values] = 1
        profile = build_profile(values, self.q)
        self.profiles[values] = profile
        for key, gram_count in profile.grams.items():
            bucket = self.postings.get(key)
            if bucket is None:
                bucket = {}
                self.postings[key] = bucket
            bucket[values] = gram_count

    def discard(self, values: "tuple[str, ...]") -> None:
        """Drop one reference to a value tuple, unindexing the last one."""
        count = self._refs.get(values)
        if count is None:
            return
        if count > 1:
            self._refs[values] = count - 1
            return
        del self._refs[values]
        profile = self.profiles.pop(values)
        for key in profile.grams:
            bucket = self.postings.get(key)
            if bucket is not None:
                bucket.pop(values, None)
                if not bucket:
                    del self.postings[key]

    def profile(self, values: "tuple[str, ...]") -> Optional[ValueProfile]:
        return self.profiles.get(values)

    def shared_counts(
        self,
        query: ValueProfile,
        candidates: "set[tuple[str, ...]]",
    ) -> "dict[tuple[str, ...], int]":
        """Shared-gram counts of ``query`` against the given live candidates.

        Walks the postings of the query's grams only, so candidates sharing
        no gram with the query are never touched (they simply stay at an
        implicit count of zero).
        """
        shared: "dict[tuple[str, ...], int]" = {}
        postings = self.postings
        for key, count in query.grams.items():
            bucket = postings.get(key)
            if not bucket:
                continue
            for values, partner in bucket.items():
                if values in candidates:
                    step = count if count < partner else partner
                    shared[values] = shared.get(values, 0) + step
        return shared
