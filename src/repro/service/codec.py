"""The service's wire format: request specs, JSON codecs, report signatures.

Everything that crosses the HTTP boundary is decoded here into typed specs
(:class:`CleanRequestSpec`, :class:`DeltaRequestSpec`) before it reaches the
queue, so shard workers only ever see validated domain objects — a malformed
field answers ``400`` at the front door instead of crashing a worker.  The
same specs are also constructed directly (no JSON) by in-process callers
such as :class:`repro.service.cleaner.ServiceCleaner`.

The module also defines the **deterministic report signature** the
equivalence tests and the CI smoke driver compare: a
:class:`~repro.core.report.CleaningReport` minus its wall-clock surface.
Cleaning output (tables, stage counts, dedup listing, accuracy, backend) is
bit-reproducible; wall-clock timings and the perf drill-down under
``details`` are not, so :func:`report_signature_dict` masks exactly those
two keys and nothing else.  Two reports with equal signatures repaired the
data identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.constraints.rules import Rule
from repro.core.config import MLNCleanConfig
from repro.core.report import CleaningReport
from repro.dataset.table import Cell, Table
from repro.errors.groundtruth import ErrorType, GroundTruth, InjectedError
from repro.registry import unknown_name
from repro.service.errors import BadRequestError
from repro.session.session import load_rules, load_table
from repro.streaming.delta import DeltaBatch
from repro.streaming.window import SlidingWindow, TumblingWindow, WindowPolicy

#: window policies a delta request may ask for by name
WINDOW_KINDS = ("tumbling", "sliding")


# ----------------------------------------------------------------------
# request specs
# ----------------------------------------------------------------------
@dataclass
class CleanRequestSpec:
    """One decoded ``POST /clean`` request.

    Exactly one of ``workload`` (a registered workload name; the server
    builds the dirty instance with the given error profile) or ``table``
    (an inline dirty table; ``rules`` then required) must be set.
    """

    workload: Optional[str] = None
    tuples: Optional[int] = None
    error_rate: float = 0.05
    replacement_ratio: float = 0.5
    seed: int = 7
    error_seed: int = 42
    table: Optional[Table] = None
    rules: Optional[list[Rule]] = None
    ground_truth: Optional[GroundTruth] = None
    cleaner: str = "mlnclean"
    options: dict = field(default_factory=dict)
    config: Optional[MLNCleanConfig] = None
    config_overrides: dict = field(default_factory=dict)
    stages: Optional[list[str]] = None
    #: error-detector stack (wire specs: names / {"name", "options"} objects)
    detectors: Optional[list] = None
    #: include the full report JSON in the job result (signature always is)
    include_report: bool = True

    def validate(self) -> None:
        if (self.workload is None) == (self.table is None):
            raise BadRequestError(
                "a clean request needs exactly one of 'workload' (a "
                "registered workload name) or 'table' (inline records)"
            )
        if self.table is not None and not self.rules:
            raise BadRequestError(
                "an inline-table clean request needs 'rules' (rule strings)"
            )
        if self.cleaner.lower() == "service":
            raise BadRequestError(
                "the 'service' cleaner cannot run inside the service itself; "
                "pick the algorithm it should route to (e.g. 'mlnclean')"
            )


@dataclass
class DeltaRequestSpec:
    """One decoded ``POST /deltas`` request: deltas against a shard's stream.

    The stream's rules / schema / configuration come either from a
    registered ``workload`` or inline (``rules`` + ``schema``).  Requests
    with the same stream identity land on the same shard and are coalesced
    into one micro-batch per tick.
    """

    deltas: DeltaBatch = field(default_factory=DeltaBatch)
    workload: Optional[str] = None
    tuples: Optional[int] = None
    seed: int = 7
    rules: Optional[list[Rule]] = None
    schema: Optional[list[str]] = None
    config: Optional[MLNCleanConfig] = None
    config_overrides: dict = field(default_factory=dict)
    #: {"kind": "tumbling"|"sliding", "size": N} — part of the shard identity
    window: Optional[dict] = None
    #: error-detector stack — part of the shard identity (a scoped and an
    #: unscoped stream are different sessions)
    detectors: Optional[list] = None
    #: include the post-tick cleaned table in the job result
    include_table: bool = True
    #: client-generated request id for exactly-once application: a key the
    #: shard has already applied (in memory, in its WAL, or in a snapshot)
    #: is answered from the memo instead of re-applied, so retries after a
    #: lost ack cannot double-apply.  Not part of the shard identity.
    idempotency_key: Optional[str] = None

    #: delta streams run the incremental MLNClean engine only
    cleaner: str = "mlnclean"

    def validate(self) -> None:
        if (self.workload is None) == (self.rules is None):
            raise BadRequestError(
                "a delta request needs exactly one of 'workload' or inline "
                "'rules' (+ 'schema')"
            )
        if self.rules is not None and not self.schema:
            raise BadRequestError(
                "an inline-rules delta request needs 'schema' (attribute names)"
            )
        if not len(self.deltas):
            raise BadRequestError("a delta request needs at least one delta")
        if self.window is not None:
            build_window(self.window)  # shape-check up front


def normalize_window_spec(spec: Optional[dict]) -> Optional[dict]:
    """The canonical form of a window spec: lower-cased kind, int size.

    Shard identity hashes *this* form, so equivalent spellings
    (``"Tumbling"``/``"tumbling"``, ``"3"``/``3``) route to one shard
    instead of splitting a stream's state across two.
    """
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise BadRequestError("'window' must be an object with 'kind' and 'size'")
    kind = str(spec.get("kind", "")).lower()
    if kind not in WINDOW_KINDS:
        raise BadRequestError(unknown_name("window policy", kind, WINDOW_KINDS))
    try:
        size = int(spec["size"])
    except (KeyError, TypeError, ValueError):
        raise BadRequestError("'window' needs an integer 'size'") from None
    return {"kind": kind, "size": size}


def build_window(spec: Optional[dict]) -> Optional[WindowPolicy]:
    """Instantiate a window policy from its wire form (None = unbounded)."""
    normalized = normalize_window_spec(spec)
    if normalized is None:
        return None
    if normalized["kind"] == "tumbling":
        return TumblingWindow(normalized["size"])
    return SlidingWindow(normalized["size"])


# ----------------------------------------------------------------------
# JSON decoding
# ----------------------------------------------------------------------
def _require_dict(payload: object, what: str) -> dict:
    if not isinstance(payload, dict):
        raise BadRequestError(f"{what} must be a JSON object")
    return payload


def _number(data: dict, key: str, caster, default):
    """Coerce an optional numeric field, answering 400 (not 500) on junk."""
    raw = data.get(key, default)
    if raw is None:
        return None
    try:
        return caster(raw)
    except (TypeError, ValueError):
        raise BadRequestError(
            f"{key!r} must be a number, got {raw!r}"
        ) from None


def _decode_rules(payload: dict) -> Optional[list[Rule]]:
    raw = payload.get("rules")
    if raw is None:
        return None
    if not isinstance(raw, list) or not all(isinstance(r, str) for r in raw):
        raise BadRequestError("'rules' must be a list of rule strings")
    try:
        return load_rules(raw)
    except ValueError as exc:
        raise BadRequestError(f"unparseable rules: {exc}") from exc


def _decode_table(payload: dict) -> Optional[Table]:
    raw = payload.get("table")
    if raw is None:
        return None
    if not isinstance(raw, list) or not all(isinstance(r, dict) for r in raw):
        raise BadRequestError("'table' must be a list of {attribute: value} records")
    try:
        return load_table([{str(k): str(v) for k, v in r.items()} for r in raw])
    except (KeyError, ValueError) as exc:
        raise BadRequestError(f"unloadable table records: {exc}") from exc


def _decode_overrides(payload: dict) -> dict:
    raw = payload.get("config", {})
    overrides = dict(_require_dict(raw, "'config'")) if raw else {}
    if overrides:
        try:
            MLNCleanConfig(**overrides)
        except (TypeError, ValueError, KeyError) as exc:
            raise BadRequestError(f"bad config overrides: {exc}") from exc
    return overrides


def _decode_stages(data: dict):
    raw = data.get("stages")
    if raw is None:
        return None
    if not isinstance(raw, list) or not all(isinstance(s, str) for s in raw):
        raise BadRequestError("'stages' must be a list of stage names")
    from repro.core.stages import available_stages

    registered = available_stages()
    for name in raw:
        if name.lower() not in registered:
            raise BadRequestError(unknown_name("stage", name, registered))
    return list(raw)


def _decode_detectors(data: dict) -> Optional[list]:
    raw = data.get("detectors")
    if raw is None:
        return None
    if not isinstance(raw, list) or not all(
        isinstance(spec, (str, dict)) for spec in raw
    ):
        raise BadRequestError(
            "'detectors' must be a list of detector names or "
            '{"name": ..., "options": {...}} objects'
        )
    from repro.detect.base import validate_detector_specs

    try:
        validate_detector_specs(raw)
    except (TypeError, ValueError) as exc:
        raise BadRequestError(f"bad detector stack: {exc}") from exc
    return list(raw)


def decode_clean_request(payload: object) -> CleanRequestSpec:
    """``POST /clean`` body → validated :class:`CleanRequestSpec`."""
    data = _require_dict(payload, "the request body")
    spec = CleanRequestSpec(
        workload=data.get("workload"),
        tuples=_number(data, "tuples", int, None),
        error_rate=_number(data, "error_rate", float, 0.05),
        replacement_ratio=_number(data, "replacement_ratio", float, 0.5),
        seed=_number(data, "seed", int, 7),
        error_seed=_number(data, "error_seed", int, 42),
        table=_decode_table(data),
        rules=_decode_rules(data),
        ground_truth=ground_truth_from_json(data.get("ground_truth")),
        cleaner=str(data.get("cleaner", "mlnclean")),
        options=dict(_require_dict(data.get("options", {}), "'options'")),
        config_overrides=_decode_overrides(data),
        stages=_decode_stages(data),
        detectors=_decode_detectors(data),
        include_report=bool(data.get("include_report", True)),
    )
    spec.validate()
    return spec


def decode_delta_request(payload: object) -> DeltaRequestSpec:
    """``POST /deltas`` body → validated :class:`DeltaRequestSpec`."""
    data = _require_dict(payload, "the request body")
    raw_deltas = data.get("deltas")
    if not isinstance(raw_deltas, list):
        raise BadRequestError("'deltas' must be a list of op-tagged objects")
    try:
        deltas = DeltaBatch.from_json_list(raw_deltas)
    except ValueError as exc:
        raise BadRequestError(str(exc)) from exc
    schema = data.get("schema")
    if schema is not None and (
        not isinstance(schema, list) or not all(isinstance(a, str) for a in schema)
    ):
        raise BadRequestError("'schema' must be a list of attribute names")
    idempotency_key = data.get("idempotency_key")
    if idempotency_key is not None and (
        not isinstance(idempotency_key, str) or not idempotency_key
    ):
        raise BadRequestError("'idempotency_key' must be a non-empty string")
    spec = DeltaRequestSpec(
        deltas=deltas,
        workload=data.get("workload"),
        tuples=_number(data, "tuples", int, None),
        seed=_number(data, "seed", int, 7),
        rules=_decode_rules(data),
        schema=schema,
        config_overrides=_decode_overrides(data),
        window=data.get("window"),
        detectors=_decode_detectors(data),
        include_table=bool(data.get("include_table", True)),
        idempotency_key=idempotency_key,
    )
    spec.validate()
    return spec


def delta_routing_payload(spec: DeltaRequestSpec) -> dict:
    """The wire-shape *stream identity* of a delta spec, without its deltas.

    The cluster worker persists this next to each shard's WAL so a restart
    can rebuild the shard's session — rules, config overrides, window — and
    re-attach its durable state before any traffic arrives.  Round-trips
    through :func:`decode_delta_routing`.  Only wire-expressible specs are
    supported; an in-process spec carrying a full ``config`` object must
    route through ``config_overrides`` instead.
    """
    if spec.config is not None:
        raise ValueError(
            "delta specs with an inline MLNCleanConfig are not wire-expressible; "
            "use config_overrides"
        )
    payload: dict = {"seed": spec.seed}
    if spec.workload is not None:
        payload["workload"] = spec.workload
        if spec.tuples is not None:
            payload["tuples"] = spec.tuples
    else:
        from repro.constraints.parser import rules_to_strings

        payload["rules"] = rules_to_strings(spec.rules or [])
        payload["schema"] = list(spec.schema or [])
    if spec.config_overrides:
        payload["config"] = dict(spec.config_overrides)
    if spec.window is not None:
        payload["window"] = normalize_window_spec(spec.window)
    if spec.detectors is not None:
        if not all(isinstance(d, (str, dict)) for d in spec.detectors):
            raise ValueError(
                "delta specs with detector instances are not wire-expressible; "
                "use detector names or {'name': ..., 'options': ...} specs"
            )
        payload["detectors"] = [
            d if isinstance(d, str) else dict(d) for d in spec.detectors
        ]
    return payload


def decode_delta_routing(payload: object) -> DeltaRequestSpec:
    """A :func:`delta_routing_payload` document → a routable (empty) spec.

    The spec carries no deltas and skips delta validation — it exists so
    ``SessionPool.route`` can rebuild the shard it identifies.
    """
    data = _require_dict(payload, "the routing payload")
    schema = data.get("schema")
    if schema is not None and (
        not isinstance(schema, list) or not all(isinstance(a, str) for a in schema)
    ):
        raise BadRequestError("'schema' must be a list of attribute names")
    return DeltaRequestSpec(
        workload=data.get("workload"),
        tuples=_number(data, "tuples", int, None),
        seed=_number(data, "seed", int, 7),
        rules=_decode_rules(data),
        schema=schema,
        config_overrides=_decode_overrides(data),
        window=data.get("window"),
        detectors=_decode_detectors(data),
    )


# ----------------------------------------------------------------------
# ground-truth codec (inline instrumented requests)
# ----------------------------------------------------------------------
def ground_truth_to_json(ground_truth: Optional[GroundTruth]) -> Optional[list]:
    """An injected-error ledger as a JSON-safe list."""
    if ground_truth is None:
        return None
    return [
        {
            "tid": error.cell.tid,
            "attribute": error.cell.attribute,
            "clean": error.clean_value,
            "dirty": error.dirty_value,
            "type": error.error_type.value,
        }
        for error in ground_truth
    ]


def ground_truth_from_json(data: Optional[object]) -> Optional[GroundTruth]:
    """Rebuild a ledger from :func:`ground_truth_to_json` output."""
    if data is None:
        return None
    if not isinstance(data, list):
        raise BadRequestError("'ground_truth' must be a list of error objects")
    errors = []
    for item in data:
        entry = _require_dict(item, "each ground-truth error")
        try:
            errors.append(
                InjectedError(
                    cell=Cell(int(entry["tid"]), str(entry["attribute"])),
                    clean_value=str(entry["clean"]),
                    dirty_value=str(entry["dirty"]),
                    error_type=ErrorType(entry.get("type", "replacement")),
                )
            )
        except (KeyError, ValueError) as exc:
            raise BadRequestError(f"bad ground-truth entry {entry!r}: {exc}") from exc
    return GroundTruth(errors)


# ----------------------------------------------------------------------
# deterministic report signatures
# ----------------------------------------------------------------------
#: the wall-clock surface of a report JSON — everything else is reproducible
MASKED_REPORT_KEYS = ("timings", "details")


def canonical_json(value: object) -> str:
    """Canonical JSON: sorted keys, no whitespace — byte-comparable."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def report_signature_dict(report: Union[CleaningReport, dict]) -> dict:
    """The deterministic projection of a report's JSON form.

    Drops exactly :data:`MASKED_REPORT_KEYS` (wall-clock timings and the
    perf/backend drill-down, the only non-reproducible parts); the tables,
    stage counts, dedup listing, accuracy counters and backend name all
    remain, byte for byte.
    """
    data = report.to_json_dict() if isinstance(report, CleaningReport) else dict(report)
    return {key: value for key, value in data.items() if key not in MASKED_REPORT_KEYS}


def report_signature(report: Union[CleaningReport, dict]) -> str:
    """SHA-256 over the canonical JSON of the deterministic projection."""
    blob = canonical_json(report_signature_dict(report))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
