"""The service as a registered cleaner: route a request through the queue.

``with_cleaner("service")`` (or the ``service_replay`` experiment spec) runs
a normal :class:`~repro.session.backends.CleaningRequest` through a fresh
in-process :class:`~repro.service.service.CleaningService` — submission,
shard routing, executor hop and all — and returns the job's live report.
Since the whole point of the service layer is that it *changes nothing about
the answer*, this cleaner lets the declarative experiment grid assert
exactly that: a ``service`` cell must reproduce the ``mlnclean`` cell of the
same grid position bit for bit (modulo wall-clock).

Options: ``cleaner`` (the algorithm the service routes to, default
``"mlnclean"``) and its factory options, e.g.
``with_cleaner("service", cleaner="mlnclean", backend="streaming")``.
"""

from __future__ import annotations

import asyncio

from repro.core.report import CleaningReport
from repro.service.codec import CleanRequestSpec
from repro.service.service import CleaningService, ServiceConfig
from repro.session.backends import CleaningRequest
from repro.session.cleaners import register_cleaner


class ServiceCleaner:
    """Run requests through an in-process cleaning service (see module doc)."""

    name = "service"

    def __init__(self, cleaner: str = "mlnclean", workers: int = 2, **options):
        if cleaner.lower() == self.name:
            raise ValueError("the service cleaner cannot route to itself")
        # normalized like the registry itself, so callers comparing against
        # the routed-to algorithm (experiments/spec.py) match any spelling
        self.inner = cleaner.lower()
        self.options = dict(options)
        self.workers = workers

    def run(self, request: CleaningRequest) -> CleaningReport:
        spec = CleanRequestSpec(
            table=request.dirty,
            rules=list(request.rules),
            ground_truth=request.ground_truth,
            cleaner=self.inner,
            options=dict(self.options),
            config=request.config,
            stages=request.stages,
            detectors=request.detectors,
        )
        return asyncio.run(self._run_spec(spec))

    async def _run_spec(self, spec: CleanRequestSpec) -> CleaningReport:
        async with CleaningService(
            ServiceConfig(executor_workers=self.workers)
        ) as service:
            job = await service.submit(spec)
            await service.wait(job.id)
            if job.report is None:
                raise RuntimeError(f"service job failed: {job.error}")
            return job.report


register_cleaner("service", ServiceCleaner)
