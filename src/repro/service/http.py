"""The stdlib-only HTTP front end of the cleaning service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no dependency — speaking JSON on five routes:

* ``POST /clean``    — submit a cleaning request (``wait`` defaults true),
* ``POST /deltas``   — submit deltas against a shard's stream,
* ``GET /jobs/<id>`` — poll a job,
* ``GET /healthz``   — liveness,
* ``GET /stats``     — queue depth, latency percentiles, per-shard
  throughput, distance-cache counters,
* ``GET /metrics``   — the same signals in Prometheus text format
  (service-scoped instruments plus the process-wide registry).

Responses always carry ``Connection: close`` (one request per connection —
clients are expected to be many and short-lived, and it keeps the parser
honest).  Error mapping lives in :func:`_error_response`: malformed bodies
and unknown registry names answer structured ``400`` JSON (with the
:func:`~repro.registry.unknown_name` listing), a full queue answers ``503``
with ``Retry-After``, and only genuine bugs surface as ``500``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import threading
from typing import Optional

from repro.service.codec import decode_clean_request, decode_delta_request
from repro.service.errors import (
    BadRequestError,
    PoolExhaustedError,
    ServiceDrainingError,
    ServiceOverloadedError,
)
from repro.service.jobs import JobStatus
from repro.service.service import CleaningService, ServiceConfig

log = logging.getLogger("repro.service")

#: request bodies beyond this answer 413 (inline tables can be large, but
#: a bounded service must bound its inputs)
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _error_payload(error_type: str, message: str) -> dict:
    return {"error": {"type": error_type, "message": message}}


def _parse_deadline_header(headers: Optional[dict]) -> Optional[float]:
    """The request's ``X-Repro-Deadline`` budget in seconds, or None.

    A malformed budget must not fail an otherwise-valid request; like a
    malformed ``Retry-After``, it is treated as absent.
    """
    raw = (headers or {}).get("x-repro-deadline")
    if raw is None:
        return None
    try:
        return float(raw)
    except (TypeError, ValueError):
        return None


def _failure_status(error_kind: Optional[str]) -> int:
    """Map a failed job's ``error_kind`` to its HTTP status.

    ``bad_request`` is the client's fault (400), ``deadline`` means its
    budget ran out (504), ``unavailable`` is retryable shedding — degraded
    durability (503 + Retry-After); everything else, including quarantined
    ``poison`` jobs, is a server-side 500.
    """
    return {
        "bad_request": 400,
        "deadline": 504,
        "unavailable": 503,
    }.get(error_kind, 500)


class ServiceHTTPServer:
    """Serves one :class:`CleaningService` over HTTP on the running loop."""

    def __init__(
        self,
        service: CleaningService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "ServiceHTTPServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # port 0 asks the OS for an ephemeral port; reflect the real one
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("repro.service listening on http://%s:%d", self.host, self.port)
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, _error_payload("internal", "unhandled error")
        extra_headers: dict = {}
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                writer.close()
                return
            method, path, body, headers = parsed
            status, payload, extra_headers = await self._dispatch(
                method, path, body, headers
            )
        except asyncio.IncompleteReadError:
            writer.close()
            return
        except _PayloadTooLarge:
            status, payload = 413, _error_payload(
                "payload_too_large", f"request bodies are bounded at {MAX_BODY_BYTES} bytes"
            )
        except ValueError as exc:
            status, payload = 400, _error_payload("bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - connection isolation boundary
            log.exception("unhandled error serving a request")
            status, payload = 500, _error_payload(
                "internal", f"{type(exc).__name__}: {exc}"
            )
        try:
            await self._write_response(writer, status, payload, extra_headers)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) < 2:
            raise ValueError(f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ValueError("malformed Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise _PayloadTooLarge()
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, body, headers

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        extra_headers: Optional[dict] = None,
    ) -> None:
        # dict payloads are JSON; str payloads (the /metrics exposition)
        # go out as Prometheus text
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes, headers: Optional[dict] = None
    ):
        headers = headers or {}
        extra = await self._dispatch_extra(method, path.split("?", 1)[0], body, headers)
        if extra is not None:
            return extra
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return 200, self.service.healthz(), {}
        if path == "/stats" and method == "GET":
            return 200, self.service.stats(), {}
        if path == "/metrics" and method == "GET":
            return 200, self.service.metrics_text(), {}
        if path.startswith("/jobs/") and method == "GET":
            job = self.service.job(path[len("/jobs/"):])
            if job is None:
                return 404, _error_payload("unknown_job", f"no job at {path}"), {}
            return 200, {"job": job.as_json_dict()}, {}
        if path in ("/clean", "/deltas"):
            if method != "POST":
                return 405, _error_payload("method_not_allowed", f"{path} is POST-only"), {}
            return await self._submit(path, body, headers)
        return 404, _error_payload("not_found", f"no route {method} {path}"), {}

    async def _dispatch_extra(
        self, method: str, path: str, body: bytes, headers: dict
    ):
        """Subclass hook for additional routes (the cluster worker's
        ``/cluster/*`` endpoints); None means "not mine"."""
        return None

    async def _submit(self, path: str, body: bytes, headers: Optional[dict] = None):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_payload("bad_json", f"request body is not JSON: {exc}"), {}
        if not isinstance(payload, dict):
            return 400, _error_payload("bad_request", "the request body must be a JSON object"), {}
        wait = bool(payload.pop("wait", True))
        try:
            timeout = float(payload.pop("timeout", 300.0))
        except (TypeError, ValueError):
            return 400, _error_payload("bad_request", "'timeout' must be a number"), {}
        default_seed = self.service.config.default_seed
        if default_seed is not None and "seed" not in payload:
            payload["seed"] = default_seed
        request_id = (headers or {}).get("x-repro-request-id")
        budget = _parse_deadline_header(headers)
        if budget is not None and budget <= 0:
            return 504, _error_payload(
                "deadline_exceeded",
                "the request's deadline budget was already spent on arrival",
            ), {}
        try:
            if path == "/clean":
                spec = decode_clean_request(payload)
            else:
                spec = decode_delta_request(payload)
            job = await self.service.submit(
                spec, request_id=request_id, budget=budget
            )
        except BadRequestError as exc:
            return 400, _error_payload("bad_request", str(exc)), {}
        except KeyError as exc:
            # registry lookups raise KeyError carrying the unknown_name()
            # listing; surface it as a structured 400, never a traceback
            message = exc.args[0] if exc.args else str(exc)
            return 400, _error_payload("unknown_name", str(message)), {}
        except ServiceOverloadedError as exc:
            return 503, _error_payload("overloaded", str(exc)), {"Retry-After": "1"}
        except ServiceDrainingError as exc:
            return 503, _error_payload("draining", str(exc)), {"Retry-After": "1"}
        except PoolExhaustedError as exc:
            return 503, _error_payload("pool_exhausted", str(exc)), {"Retry-After": "1"}
        if wait:
            wait_timeout = timeout if budget is None else min(timeout, budget)
            try:
                await self.service.wait(job.id, wait_timeout)
            except asyncio.TimeoutError:
                if job.expired():
                    # nobody is waiting anymore; the job stays addressable
                    # via /jobs/<id> but this request reports its 504
                    return 504, {"job": job.as_json_dict(include_result=False)}, {}
                return 202, {"job": job.as_json_dict(include_result=False)}, {}
        if job.status is JobStatus.DONE:
            return 200, {"job": job.as_json_dict()}, {}
        if job.status is JobStatus.FAILED:
            # apply-time validation failures (e.g. a delta targeting an
            # unknown tuple) are the client's fault; 504/503 mark deadline
            # and shedding outcomes retryable clients understand; 500 stays
            # reserved for genuine bugs, per the errors.py taxonomy
            status = _failure_status(job.error_kind)
            extra = {"Retry-After": "1"} if status == 503 else {}
            return status, {"job": job.as_json_dict()}, extra
        return 202, {"job": job.as_json_dict(include_result=False)}, {}


class _PayloadTooLarge(Exception):
    pass


# ----------------------------------------------------------------------
# process entry points
# ----------------------------------------------------------------------
async def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    config: Optional[ServiceConfig] = None,
    service: Optional[CleaningService] = None,
    http_server: Optional[ServiceHTTPServer] = None,
    drain_timeout: float = 30.0,
) -> None:
    """Run a service + front end until SIGTERM/SIGINT, then drain and exit.

    Graceful shutdown: the first signal flips the service into draining
    (new submissions answer 503), queued jobs run to completion (bounded by
    ``drain_timeout``), shard state is checkpointed — the cluster worker's
    durability layer flushes its WALs and writes final snapshots here —
    and only then does the coroutine return, letting the process exit 0.
    A second signal skips the drain.  ``service`` / ``http_server`` let the
    cluster worker reuse this loop with its own subclasses.
    """
    service = service or CleaningService(config)
    await service.start()
    http = http_server or ServiceHTTPServer(service, host, port)
    await http.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
    try:
        await stop.wait()
        log.info("shutdown signal received; draining (%d pending)", service.pending)
        await service.drain(timeout=drain_timeout)
        log.info("drained; shutting down")
    finally:
        for signum in installed:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.remove_signal_handler(signum)
        await http.stop()
        await service.stop()


class ServiceServer:
    """A service + HTTP front end on a background thread (tests, examples).

    ``port=0`` binds an ephemeral port; the real one is available as
    ``server.port`` after :meth:`start` returns.  The wrapped
    :class:`CleaningService` is reachable as ``server.service`` for
    in-process assertions (e.g. comparing a shard's stream state).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServiceConfig] = None,
    ):
        self.host = host
        self.port = port
        self.config = config
        self.service: Optional[CleaningService] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("the service server did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("the service server failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        service = CleaningService(self.config)
        await service.start()
        http = ServiceHTTPServer(service, self.host, self.port)
        await http.start()
        self.port = http.port
        self.service = service
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await http.stop()
            await service.stop()
