"""Jobs: the unit of work the service queues, runs and reports on.

Every accepted request becomes a :class:`Job` with a stable id, a status
machine (``queued → running → done | failed``) and submit/start/finish
timestamps — the raw material of the ``/stats`` latency percentiles.  The
:class:`JobStore` keeps jobs addressable for ``GET /jobs/<id>`` and prunes
the oldest *finished* jobs beyond a retention bound so a long-lived server
does not grow without limit.

Jobs are created and mutated on the service's event loop only; the
``asyncio.Event`` lets any number of waiters (the ``wait=true`` HTTP path,
in-process callers) block until completion without polling.
"""

from __future__ import annotations

import asyncio
import enum
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.report import CleaningReport


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


#: statuses a job can no longer leave
FINISHED = (JobStatus.DONE, JobStatus.FAILED)


@dataclass
class Job:
    """One queued cleaning request and (eventually) its outcome."""

    id: str
    #: "clean" or "deltas"
    kind: str
    #: label of the shard the job was routed to
    shard: str
    status: JobStatus = JobStatus.QUEUED
    #: ``time.monotonic()`` stamps (latency math must survive clock jumps)
    submitted: float = field(default_factory=time.monotonic)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: JSON-safe result payload (what ``GET /jobs/<id>`` serves)
    result: Optional[dict] = None
    #: the live report, for in-process callers (never serialized)
    report: Optional[CleaningReport] = None
    error: Optional[str] = None
    #: who caused a failure: "bad_request" (the client's deltas/inputs) or
    #: "internal" (a genuine bug) — decides the front end's 400 vs 500
    error_kind: Optional[str] = None
    #: caller-supplied correlation id (the cluster router's request id),
    #: echoed back so spans stitch across processes
    request_id: Optional[str] = None
    #: absolute ``time.monotonic()`` deadline from the request's budget
    #: (``X-Repro-Deadline``); queued work past it is rejected with a 504
    #: instead of burning executor time nobody is waiting for
    deadline: Optional[float] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def expired(self) -> bool:
        """Whether the request's deadline has already passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    @property
    def duration(self) -> Optional[float]:
        """Submit-to-finish wall-clock seconds (None while unfinished)."""
        if self.finished is None:
            return None
        return self.finished - self.submitted

    def mark_running(self) -> None:
        self.status = JobStatus.RUNNING
        self.started = time.monotonic()

    def finish(self, result: dict, report: Optional[CleaningReport] = None) -> None:
        self.status = JobStatus.DONE
        self.result = result
        self.report = report
        self.finished = time.monotonic()
        self.done_event.set()

    def fail(self, error: str, kind: str = "internal") -> None:
        self.status = JobStatus.FAILED
        self.error = error
        self.error_kind = kind
        self.finished = time.monotonic()
        self.done_event.set()

    def as_json_dict(self, include_result: bool = True) -> dict:
        payload: dict = {
            "id": self.id,
            "kind": self.kind,
            "shard": self.shard,
            "status": self.status.value,
        }
        if self.duration is not None:
            payload["duration_s"] = round(self.duration, 6)
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.error is not None:
            payload["error"] = self.error
            payload["error_kind"] = self.error_kind or "internal"
        if include_result and self.result is not None:
            payload["result"] = self.result
        return payload


class JobStore:
    """Id-addressable job registry with bounded retention of finished jobs."""

    def __init__(self, retain_finished: int = 2048):
        if retain_finished < 1:
            raise ValueError("the job store needs retain_finished >= 1")
        self.retain_finished = retain_finished
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._counter = 0

    def create(self, kind: str, shard: str) -> Job:
        self._counter += 1
        job = Job(id=f"j{self._counter:06d}", kind=kind, shard=shard)
        self._jobs[job.id] = job
        self._prune()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def unfinished(self) -> list:
        """Jobs still queued or running (what a shutdown must fail)."""
        return [job for job in self._jobs.values() if job.status not in FINISHED]

    def counts(self) -> dict:
        """Jobs per status, plus the lifetime total."""
        counts = {status.value: 0 for status in JobStatus}
        for job in self._jobs.values():
            counts[job.status.value] += 1
        counts["total_submitted"] = self._counter
        return counts

    def __len__(self) -> int:
        return len(self._jobs)

    def _prune(self) -> None:
        """Drop the oldest finished jobs beyond the retention bound."""
        finished = [job.id for job in self._jobs.values() if job.status in FINISHED]
        for job_id in finished[: max(0, len(finished) - self.retain_finished)]:
            del self._jobs[job_id]
